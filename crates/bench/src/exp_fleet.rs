//! Fleet-management experiments: E17 prices the device-management
//! plane (`iiot-fleet`) — the paper's closing claim that industrial
//! IoT at scale is *fleet* operation, not single-network operation.
//!
//! Four questions, each one table:
//!
//! * **blast radius** — a poisoned build under a staged fleet campaign
//!   (canary network first) versus flat fleet-wide activation, across
//!   fleet sizes;
//! * **time-to-converge** — how long a staged campaign takes to walk
//!   the whole fleet as it grows (stage count, not fleet size, sets
//!   the clock — networks inside a wave roll in parallel), and what a
//!   per-network crash/wipe fault costs: flash resume absorbs the
//!   outage, a wipe stretches every stage by a full redownload;
//! * **twin convergence** — how far behind the cloud's CRDT twins run
//!   when half the fleet's backhaul partitions mid-campaign, and that
//!   they converge after the heal;
//! * **drift round trip** — a fleet-wide desired-config change:
//!   detection on the converged twin state, remediation through the
//!   CoAP downlink, and how a backhaul partition stretches (but never
//!   breaks) the loop.
//!
//! Each configuration point is one [`Trial`] on the worker pool;
//! tables are byte-identical for any `--jobs`.

use crate::runner::{Cell, Trial};
use crate::table::Table;
use crate::RunConfig;
use iiot_fleet::{run_fleet, FaultArm, FleetConfig, PartitionSpec};
use iiot_sim::{SimDuration, SimTime};

const SEED: u64 = 0xE17;

/// E17a over explicit fleet sizes.
pub fn e17_blast_with(rc: &RunConfig, sizes: &[u32]) -> Table {
    let trials: Vec<Trial> = sizes
        .iter()
        .flat_map(|&networks| {
            [
                ("staged (canary net)", true),
                ("flat (all networks)", false),
            ]
            .into_iter()
            .map(move |(name, staged)| {
                Trial::new(format!("e17/blast/{networks}/{name}"), SEED, move |seed| {
                    let cfg = FleetConfig {
                        networks,
                        staged,
                        poisoned: true,
                        ..FleetConfig::default()
                    };
                    let o = run_fleet(&cfg, seed);
                    let outcome = if f64::from(o.nodes_poisoned) / f64::from(o.fleet_nodes) < 0.5 {
                        "halted at canary net"
                    } else {
                        "fleet-wide"
                    };
                    vec![vec![
                        Cell::int(f64::from(networks)),
                        Cell::label(name),
                        Cell::int(f64::from(o.networks_activated)),
                        Cell::int(f64::from(o.nodes_poisoned)),
                        Cell::pct(f64::from(o.nodes_poisoned) / f64::from(o.fleet_nodes)),
                        Cell::label(outcome),
                    ]]
                })
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E17a: poisoned build blast radius — staged fleet campaign (canary network first) vs flat fleet-wide activation",
        &["networks", "rollout", "nets activated", "poisoned nodes", "% of fleet", "outcome"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E17a production axis: 4, 16 and 32 networks.
pub fn e17_blast(rc: &RunConfig) -> Table {
    e17_blast_with(rc, &[4, 16, 32])
}

/// E17b over explicit fleet sizes and fault arms.
pub fn e17_converge_with(rc: &RunConfig, sizes: &[u32], faults: &[FaultArm]) -> Table {
    let trials: Vec<Trial> = sizes
        .iter()
        .flat_map(|&networks| {
            faults.iter().map(move |&fault| {
                Trial::new(
                    format!("e17/converge/{networks}/{}", fault.name()),
                    SEED,
                    move |seed| {
                        let cfg = FleetConfig {
                            networks,
                            fault,
                            ..FleetConfig::default()
                        };
                        let o = run_fleet(&cfg, seed);
                        vec![vec![
                            Cell::int(f64::from(networks)),
                            Cell::int(f64::from(o.fleet_nodes)),
                            Cell::label(fault.name()),
                            Cell::f1(o.done_at_s),
                            Cell::pct(o.coverage),
                        ]]
                    },
                )
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E17b: staged fleet campaign time-to-converge vs fleet size, with a crash/wipe fault per network during the rollout",
        &["networks", "fleet nodes", "fault", "fleet done (s)", "coverage"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E17b production axis: 4, 16 and 32 networks x none/crash/wipe.
pub fn e17_converge(rc: &RunConfig) -> Table {
    e17_converge_with(
        rc,
        &[4, 16, 32],
        &[FaultArm::None, FaultArm::Crash, FaultArm::Wipe],
    )
}

/// E17c over an explicit fleet size and partition window.
pub fn e17_twins_with(rc: &RunConfig, networks: u32, part_from_s: u64, part_until_s: u64) -> Table {
    let trials: Vec<Trial> = [("backhaul up", false), ("half fleet partitioned", true)]
        .into_iter()
        .map(|(name, partitioned)| {
            Trial::new(format!("e17/twins/{name}"), SEED, move |seed| {
                let partition = partitioned.then(|| PartitionSpec {
                    from: SimTime::from_secs(part_from_s),
                    until: SimTime::from_secs(part_until_s),
                    networks: (0..networks / 2).collect(),
                });
                let cfg = FleetConfig {
                    networks,
                    staged: false,
                    partition,
                    ..FleetConfig::default()
                };
                let o = run_fleet(&cfg, seed);
                let half = (networks / 2) as usize;
                let mean = |s: &[f64]| {
                    if s.is_empty() {
                        0.0
                    } else {
                        s.iter().sum::<f64>() / s.len() as f64
                    }
                };
                vec![vec![
                    Cell::label(name),
                    Cell::f1(o.done_at_s),
                    Cell::f1(mean(&o.twin_lag_s[half..])),
                    Cell::f1(mean(&o.twin_lag_s[..half])),
                    Cell::int(o.cloud_twins as f64),
                    Cell::int(o.twin_events as f64),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E17c: CRDT twin convergence lag — half the fleet's backhaul partitioned mid-campaign, cloud catches up at the heal",
        &[
            "arm",
            "fleet done (s)",
            "twin lag clean nets (s)",
            "twin lag part. nets (s)",
            "cloud twins",
            "twin writes",
        ],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E17c production point: 8 networks, partition open [5 s, 160 s).
///
/// The window opens at the activation tick — before any node finishes
/// its download — so every partitioned network's twin reports queue at
/// the gateway replica and only reach the cloud at the heal. A later
/// window would miss the campaign entirely (flat activation converges
/// in seconds) and measure zero lag on both arms.
pub fn e17_twins(rc: &RunConfig) -> Table {
    e17_twins_with(rc, 8, 5, 160)
}

/// E17d over an explicit fleet size and partition window.
pub fn e17_drift_with(rc: &RunConfig, networks: u32, part_from_s: u64, part_until_s: u64) -> Table {
    let trials: Vec<Trial> = [("backhaul up", false), ("half fleet partitioned", true)]
        .into_iter()
        .map(|(name, partitioned)| {
            Trial::new(format!("e17/drift/{name}"), SEED, move |seed| {
                let partition = partitioned.then(|| PartitionSpec {
                    from: SimTime::from_secs(part_from_s),
                    until: SimTime::from_secs(part_until_s),
                    networks: (0..networks / 2).collect(),
                });
                let cfg = FleetConfig {
                    networks,
                    partition,
                    desired_change: Some((SimTime::from_secs(60), 10.0)),
                    horizon: SimDuration::from_secs(900),
                    ..FleetConfig::default()
                };
                let o = run_fleet(&cfg, seed);
                vec![vec![
                    Cell::label(name),
                    Cell::int(f64::from(o.drift_detected)),
                    Cell::int(f64::from(o.remediations_ok)),
                    Cell::int(f64::from(o.remediations_failed)),
                    Cell::f1(o.drift_cleared_at_s),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E17d: config drift round trip — fleet-wide desired change, detection on converged twins, CoAP remediation push",
        &["arm", "drifted devices", "remediations ok", "failed", "drift cleared (s)"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E17d production point: 4 networks, partition open [50 s, 200 s).
pub fn e17_drift(rc: &RunConfig) -> Table {
    e17_drift_with(rc, 4, 50, 200)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    fn rc(jobs: usize) -> RunConfig {
        RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        }
    }

    fn num(t: &Table, row: usize, col: usize) -> f64 {
        t.rows()[row][col].parse().expect("numeric cell")
    }

    #[test]
    fn e17a_staged_bounds_the_blast_radius() {
        let t = e17_blast_with(&rc(1), &[4]);
        assert_eq!(t.rows().len(), 2);
        let staged = num(&t, 0, 3);
        let flat = num(&t, 1, 3);
        assert!(
            staged < flat,
            "staged must poison fewer nodes ({staged} vs {flat})"
        );
    }

    #[test]
    fn e17b_wipe_costs_a_redownload_but_resume_is_free() {
        let t = e17_converge_with(
            &rc(1),
            &[4],
            &[FaultArm::None, FaultArm::Crash, FaultArm::Wipe],
        );
        let none = num(&t, 0, 3);
        let crash = num(&t, 1, 3);
        let wipe = num(&t, 2, 3);
        assert!(crash <= none + 10.0, "flash resume absorbs the outage");
        assert!(wipe > none, "a wiped victim stretches the campaign");
        for row in 0..3 {
            assert_eq!(t.rows()[row][4], "100.0%", "every arm converges");
        }
    }

    #[test]
    fn e17_tables_are_jobs_invariant() {
        let a = e17_twins_with(&rc(1), 4, 5, 90);
        let b = e17_twins_with(&rc(2), 4, 5, 90);
        assert_eq!(a.rows(), b.rows());
        let a = e17_drift_with(&rc(1), 2, 30, 90);
        let b = e17_drift_with(&rc(2), 2, 30, 90);
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn e17c_partition_shows_up_as_twin_lag() {
        let t = e17_twins_with(&rc(2), 4, 5, 90);
        // Row 0 = backhaul up, row 1 = half fleet partitioned. Clean
        // networks stay near-live on both arms; partitioned networks
        // only converge at the heal, so their lag dominates.
        let clean_arm_lag = num(&t, 0, 3);
        let part_arm_lag = num(&t, 1, 3);
        assert!(
            part_arm_lag > clean_arm_lag + 30.0,
            "partitioned nets must lag well past the clean baseline \
             ({part_arm_lag} vs {clean_arm_lag})"
        );
        assert_eq!(num(&t, 0, 4), num(&t, 1, 4), "cloud converges on both arms");
    }

    #[test]
    fn e17d_partition_stretches_but_never_breaks_the_loop() {
        // The partition window must already be open when the desired
        // change lands at t=60 s, or remediation sneaks out before it.
        let t = e17_drift_with(&rc(2), 2, 30, 150);
        let clean_cleared = num(&t, 0, 4);
        let part_cleared = num(&t, 1, 4);
        assert!(part_cleared > clean_cleared, "partition delays clearing");
        assert!(num(&t, 1, 2) > 0.0, "remediation completes after the heal");
    }
}
