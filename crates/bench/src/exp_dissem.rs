//! Bulk-dissemination experiments: E14 prices over-the-air
//! reprogramming, the maintainability mechanism §V-D of the paper
//! leans on.
//!
//! Three questions, each one table:
//!
//! * **completion scaling** — how long a firmware image takes to reach
//!   every node and what it costs in energy, across network sizes and
//!   MAC disciplines (CSMA vs duty-cycled LPL vs pipelined TDMA over a
//!   `tree_edges` schedule);
//! * **resume vs restart** — the flash [`PageStore`](iiot_dissem::PageStore)
//!   lets a crash-recovered node resume mid-image; E14b compares it
//!   against a full reimage ([`StateLoss::Full`]) on the same fault;
//! * **staged vs flat rollout** — a poisoned build under a canary-first
//!   [`RolloutPlan`] versus
//!   enable-everyone; the blast radius is the number of nodes that
//!   downloaded (and rejected) the bad image.
//!
//! Each configuration point is one [`Trial`] on the worker pool;
//! tables are byte-identical for any `--jobs`.

use crate::runner::{Cell, Trial};
use crate::table::Table;
use crate::RunConfig;
use iiot_dependability::fault::{Fault, FaultPlan};
use iiot_dissem::image::Image;
use iiot_dissem::node::{DissemConfig, DissemNode};
use iiot_dissem::rollout::{self, RolloutPlan};
use iiot_dissem::BlockInjector;
use iiot_mac::csma::{CsmaConfig, CsmaMac};
use iiot_mac::lpl::{LplConfig, LplMac};
use iiot_mac::tdma::{TdmaConfig, TdmaMac, TdmaSchedule};
use iiot_mac::Mac;
use iiot_routing::trickle::TrickleConfig;
use iiot_sim::prelude::*;

/// The MAC arm of a dissemination campaign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MacArm {
    Csma,
    Lpl,
    Tdma,
}

impl MacArm {
    fn name(self) -> &'static str {
        match self {
            MacArm::Csma => "csma",
            MacArm::Lpl => "lpl",
            MacArm::Tdma => "tdma",
        }
    }
}

/// First-hop parent tree of a `cols x rows` grid: west neighbour if
/// any, else north — a spanning tree rooted at node 0 whose edges are
/// all one grid hop.
fn grid_parents(cols: usize, rows: usize) -> Vec<Option<NodeId>> {
    (0..rows)
        .flat_map(|r| {
            (0..cols).map(move |c| {
                if c > 0 {
                    Some(NodeId((r * cols + c - 1) as u32))
                } else if r > 0 {
                    Some(NodeId(((r - 1) * cols + c) as u32))
                } else {
                    None
                }
            })
        })
        .collect()
}

fn tree_peers(parents: &[Option<NodeId>], i: usize) -> Vec<NodeId> {
    let me = NodeId(i as u32);
    let mut peers = Vec::new();
    if let Some(p) = parents[i] {
        peers.push(p);
    }
    peers.extend(
        (0..parents.len())
            .filter(|&c| parents[c] == Some(me))
            .map(|c| NodeId(c as u32)),
    );
    peers
}

/// Outcome of one dissemination campaign.
struct Campaign {
    /// Simulated time at which the slowest node finished (cap if not
    /// everyone did).
    completion_s: f64,
    /// Fraction of wireless nodes holding a verified image at the end.
    coverage: f64,
    /// Mean per-node radio energy over the campaign window, mJ.
    energy_mj: f64,
    /// Total DATA chunk transmissions.
    data_tx: f64,
}

/// Runs one image through a grid under one MAC, polling in 5 s slices
/// until every node completes or `cap_s` elapses.
fn campaign<M: Mac>(mut w: Sim, ids: &[NodeId], img: &Image, cap_s: u64) -> Campaign {
    let gw = ids[0];
    let img2 = img.clone();
    w.schedule_at(SimTime::from_secs(1), gw, move |w| {
        w.with_ctx(gw, move |p, ctx| {
            p.as_any_mut()
                .downcast_mut::<DissemNode<M>>()
                .expect("dissem node")
                .install(ctx, &img2);
        });
    });
    let mut done_at = 0u64;
    loop {
        w.run_for(SimDuration::from_secs(5));
        done_at += 5;
        let all = ids
            .iter()
            .all(|&id| w.proto::<DissemNode<M>>(id).complete_ok());
        if all || done_at >= cap_s {
            break;
        }
    }
    let complete: Vec<_> = ids
        .iter()
        .filter_map(|&id| w.proto::<DissemNode<M>>(id).complete_at())
        .collect();
    let completion_s = complete.iter().map(|t| t.as_secs_f64()).fold(0.0, f64::max);
    let coverage = complete.len() as f64 / ids.len() as f64;
    let model = *w.energy_model();
    let energy_mj = ids
        .iter()
        .map(|&id| w.energy(id).energy_mj(&model))
        .sum::<f64>()
        / ids.len() as f64;
    Campaign {
        completion_s: if coverage == 1.0 {
            completion_s
        } else {
            cap_s as f64
        },
        coverage,
        energy_mj,
        data_tx: w.stats().node_total("dissem_data_tx"),
    }
}

/// Builds the world + nodes for one arm and runs the campaign.
fn run_arm(arm: MacArm, cols: usize, rows: usize, img: &Image, seed: u64, cap_s: u64) -> Campaign {
    let topo = Topology::grid(cols, rows, 20.0);
    let ids: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
    match arm {
        MacArm::Csma => {
            let w = SimBuilder::new()
                .seed(seed)
                .nodes(topo, |_| {
                    Box::new(DissemNode::new(
                        CsmaMac::new(CsmaConfig::default()),
                        DissemConfig::default(),
                    )) as Box<dyn Proto>
                })
                .build();
            campaign::<CsmaMac>(w, &ids, img, cap_s)
        }
        MacArm::Lpl => {
            // LPL broadcasts cost a full wake-interval preamble: shorten
            // the wake interval for the reprogramming window and slow the
            // control plane down to match the strobe-bound data path.
            let w = SimBuilder::new()
                .seed(seed)
                .nodes(topo, |_| {
                    Box::new(DissemNode::new(
                        LplMac::new(LplConfig {
                            wake_interval: SimDuration::from_millis(256),
                            ..LplConfig::default()
                        }),
                        DissemConfig {
                            trickle: TrickleConfig {
                                imin: SimDuration::from_secs(1),
                                doublings: 6,
                                k: 1,
                            },
                            req_backoff: SimDuration::from_millis(500),
                            ..DissemConfig::default()
                        },
                    )) as Box<dyn Proto>
                })
                .build();
            campaign::<LplMac>(w, &ids, img, cap_s)
        }
        MacArm::Tdma => {
            let parents = grid_parents(cols, rows);
            let sched = TdmaSchedule::tree_edges(&parents, SimDuration::from_millis(10));
            let frame = sched.frame_len();
            let w = SimBuilder::new()
                .seed(seed)
                .nodes(topo, move |i| {
                    Box::new(DissemNode::new(
                        TdmaMac::new(TdmaConfig::default(), sched.clone()),
                        DissemConfig {
                            trickle: TrickleConfig {
                                imin: frame * 2,
                                doublings: 6,
                                k: 1,
                            },
                            unicast_data: true,
                            adv_peers: Some(tree_peers(&parents, i)),
                            req_backoff: frame / 2,
                            ..DissemConfig::default()
                        },
                    )) as Box<dyn Proto>
                })
                .build();
            campaign::<TdmaMac>(w, &ids, img, cap_s)
        }
    }
}

/// A 960-byte image in 3 pages of 8 chunks of 40 bytes.
fn e14_image(version: u32, len: usize) -> Image {
    Image::build(
        version,
        (0..len).map(|i| (i * 13 % 256) as u8).collect(),
        40,
        8,
    )
}

/// E14a over explicit grid sides and a time cap (test-sized variants
/// shrink both).
pub fn e14_completion_with(rc: &RunConfig, sides: &[usize], cap_s: u64) -> Table {
    let trials: Vec<Trial> = sides
        .iter()
        .flat_map(|&side| {
            [MacArm::Csma, MacArm::Lpl, MacArm::Tdma]
                .into_iter()
                .map(move |arm| {
                    Trial::new(
                        format!("e14/completion/{}x{side}/{}", side, arm.name()),
                        0xE14,
                        move |seed| {
                            let img = e14_image(1, 960);
                            let c = run_arm(arm, side, side, &img, seed, cap_s);
                            vec![vec![
                                Cell::int((side * side) as f64),
                                Cell::label(arm.name()),
                                Cell::f1(c.completion_s),
                                Cell::pct(c.coverage),
                                Cell::f1(c.energy_mj),
                                Cell::int(c.data_tx),
                            ]]
                        },
                    )
                })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E14: image dissemination vs network size (960 B image, 3 pages, 20 m grid), CSMA vs LPL vs TDMA tree schedule",
        &["nodes", "mac", "completion (s)", "coverage", "energy (mJ/node)", "data tx"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E14a production axis: 4x4, 5x5 and 6x6 grids.
pub fn e14_completion(rc: &RunConfig) -> Table {
    e14_completion_with(rc, &[4, 5, 6], 1800)
}

/// E14b over an explicit grid side, image size and crash schedule.
pub fn e14_resume_with(
    rc: &RunConfig,
    side: usize,
    img_len: usize,
    crash_s: u64,
    cap_s: u64,
) -> Table {
    let trials: Vec<Trial> = [
        ("resume (flash kept)", StateLoss::Ram),
        ("restart (wiped)", StateLoss::Full),
    ]
    .into_iter()
    .map(|(name, loss)| {
        Trial::new(format!("e14/resume/{name}"), 0xE14, move |seed| {
            let img = e14_image(2, img_len);
            let victim = NodeId((side * side - 1) as u32);
            let down = SimDuration::from_secs(5);
            let topo = Topology::grid(side, side, 20.0);
            let ids: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
            let mut w = SimBuilder::new()
                .seed(seed)
                .nodes(topo, |_| {
                    Box::new(DissemNode::new(
                        CsmaMac::new(CsmaConfig::default()),
                        DissemConfig::default(),
                    )) as Box<dyn Proto>
                })
                .build();
            let gw = ids[0];
            let img2 = img.clone();
            w.schedule_at(SimTime::from_secs(1), gw, move |w| {
                w.with_ctx(gw, move |p, ctx| {
                    p.as_any_mut()
                        .downcast_mut::<DissemNode<CsmaMac>>()
                        .expect("dissem node")
                        .install(ctx, &img2);
                });
            });
            let mut plan = FaultPlan::new();
            plan.push(Fault::CrashRecover {
                node: victim,
                at: SimTime::from_secs(crash_s),
                down_for: down,
            });
            plan.apply_with_state_loss(w.world_mut(), loss);
            // Sample the victim's flash just before it comes back.
            w.run_until(SimTime::from_secs(crash_s) + down - SimDuration::from_millis(1));
            let kept = w.proto::<DissemNode<CsmaMac>>(victim).store().have_pages();
            let mut t = crash_s + 5;
            loop {
                w.run_for(SimDuration::from_secs(5));
                t += 5;
                let all = ids
                    .iter()
                    .all(|&id| w.proto::<DissemNode<CsmaMac>>(id).complete_ok());
                if all || t >= cap_s {
                    break;
                }
            }
            let at = |id: NodeId| {
                w.proto::<DissemNode<CsmaMac>>(id)
                    .complete_at()
                    .map_or(cap_s as f64, |t| t.as_secs_f64())
            };
            let network = ids.iter().map(|&id| at(id)).fold(0.0, f64::max);
            let coverage = ids
                .iter()
                .filter(|&&id| w.proto::<DissemNode<CsmaMac>>(id).complete_ok())
                .count() as f64
                / ids.len() as f64;
            vec![vec![
                Cell::label(name),
                Cell::int(kept as f64),
                Cell::f1(at(victim)),
                Cell::f1(network),
                Cell::pct(coverage),
            ]]
        })
    })
    .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E14b: crash mid-download at the far corner (CSMA grid, 5 s outage) — flash resume vs full reimage",
        &["recovery", "pages kept", "victim done (s)", "network done (s)", "coverage"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E14b production point: 7x7 grid, 5120 B image (16 pages), crash at
/// 6 s into the campaign — mid-download at the far corner.
pub fn e14_resume(rc: &RunConfig) -> Table {
    e14_resume_with(rc, 7, 5120, 6, 600)
}

/// E14c over an explicit grid side and cap.
pub fn e14_rollout_with(rc: &RunConfig, side: usize, cap_s: u64) -> Table {
    let trials: Vec<Trial> = [("staged (canary)", true), ("flat (all at once)", false)]
        .into_iter()
        .map(|(name, staged)| {
            Trial::new(format!("e14/rollout/{name}"), 0xE14, move |seed| {
                let img = e14_image(3, 960).poisoned();
                let topo = Topology::grid(side, side, 20.0);
                let ids: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
                let gw = ids[0];
                let inj_img = img.clone();
                let mut w = SimBuilder::new()
                    .seed(seed)
                    .nodes(topo, |_| {
                        Box::new(DissemNode::new(
                            CsmaMac::new(CsmaConfig::default()),
                            DissemConfig {
                                enabled: false,
                                ..DissemConfig::default()
                            },
                        )) as Box<dyn Proto>
                    })
                    .nodes(
                        std::iter::once(Pos::new(-100.0, -100.0)).collect::<Topology>(),
                        move |_| Box::new(BlockInjector::new(gw, &inj_img, 64)),
                    )
                    .build();
                // Wireless cohorts by tree depth from the gateway:
                // disabled nodes relay nothing, so waves must grow
                // outward for the image to reach them at all.
                let parents = grid_parents(side, side);
                let depth_of = |i: usize| {
                    let mut d = 0;
                    let mut j = i;
                    while let Some(p) = parents[j] {
                        j = p.index();
                        d += 1;
                    }
                    d
                };
                let max_d = (0..ids.len()).map(depth_of).max().unwrap_or(0);
                let rings: Vec<Vec<NodeId>> = (1..=max_d)
                    .map(|d| {
                        (0..ids.len())
                            .filter(|&i| depth_of(i) == d)
                            .map(|i| ids[i])
                            .collect()
                    })
                    .collect();
                let plan = if staged {
                    RolloutPlan::new(rings, SimDuration::from_secs(10))
                } else {
                    RolloutPlan::flat(ids[1..].to_vec(), SimDuration::from_secs(10))
                };
                // The gateway itself (cohort zero of any rollout) is
                // always enabled: it holds the trusted image.
                rollout::drive::<CsmaMac>(w.world_mut(), ids[0], plan, SimTime::from_secs(2));
                w.run_for(SimDuration::from_secs(cap_s));
                let poisoned = ids
                    .iter()
                    .filter(|&&id| w.proto::<DissemNode<CsmaMac>>(id).poisoned())
                    .count();
                // The fleet under rollout: everyone but the (trusted)
                // gateway.
                let fleet = (ids.len() - 1) as f64;
                let outcome = if poisoned as f64 / fleet < 0.5 {
                    "halted at canary"
                } else {
                    "fleet-wide"
                };
                vec![vec![
                    Cell::label(name),
                    Cell::int(poisoned as f64),
                    Cell::pct(poisoned as f64 / fleet),
                    Cell::label(outcome),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E14c: poisoned image blast radius — staged canary-first rollout vs flat activation (CSMA grid, CoAP-injected build)",
        &["rollout", "poisoned nodes", "% of fleet", "outcome"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E14c production point: 7x7 grid.
pub fn e14_rollout(rc: &RunConfig) -> Table {
    e14_rollout_with(rc, 7, 600)
}
