//! Interoperability and overhead experiments: E1 (the Fig. 1 layering,
//! end to end), E10 (security-level overheads) and E12 (gateway
//! integration throughput and fidelity).

use crate::table::{f1, f3, pct, Table};
use iiot_coap::{CoapEndpoint, CoapEvent, EndpointConfig};
use iiot_core::{Deployment, Historian, LayeredSystem, MacChoice, Rule, Scorecard};
use iiot_crdt::ReplicaId;
use iiot_gateway::gatt::{uuid, CharMap, GattAdapter, GattDevice};
use iiot_gateway::modbus::{ModbusAdapter, ModbusDevice, RegisterMap};
use iiot_gateway::tlv::{TlvAdapter, TlvSensor};
use iiot_gateway::{Gateway, Unit};
use iiot_security::{protect, unprotect, CostModel, Key, ReplayGuard, SecLevel};
use iiot_sim::{SimDuration, SimTime, Topology};
use std::time::Instant;

fn demo_gateway() -> Gateway {
    let mut gw = Gateway::new(ReplicaId(1));
    let mut plc = ModbusDevice::new(1, 8);
    plc.set_register(0, 923);
    gw.add_adapter(Box::new(ModbusAdapter::new(
        "plc-1",
        plc,
        vec![
            RegisterMap {
                addr: 0,
                point: "plant/boiler/temp".into(),
                unit: Unit::Celsius,
                scale: 0.1,
                offset: 0.0,
                writable: false,
            },
            RegisterMap {
                addr: 1,
                point: "plant/boiler/valve".into(),
                unit: Unit::Percent,
                scale: 1.0,
                offset: 0.0,
                writable: true,
            },
        ],
    )));
    let mut tag = GattDevice::new();
    tag.add_characteristic(0x10, uuid::TEMPERATURE, vec![0, 0]);
    tag.set_temperature(0x10, 21.4);
    gw.add_adapter(Box::new(GattAdapter::new(
        "ble-tag-1",
        tag,
        vec![CharMap {
            handle: 0x10,
            point: "plant/office/temp".into(),
        }],
    )));
    let mote = TlvSensor::new(7).secure(Key(*b"plant-ntwrk-key!"), SecLevel::EncMic64);
    gw.add_adapter(Box::new(TlvAdapter::new("mote-7", mote, "plant/yard")));
    gw
}

/// E1: the Fig. 1 architecture, end to end — a wireless deployment plus
/// a legacy gateway feeding the application-logic and storage tiers,
/// with the cross-layer flow counted at every boundary.
pub fn e1_layering() -> Table {
    // Wireless sensing tier.
    let mut d = Deployment::builder(Topology::grid(4, 3, 20.0))
        .mac(MacChoice::Csma)
        .seed(0xE1)
        .traffic(SimDuration::from_secs(10), 8, SimDuration::from_secs(20))
        .build();
    d.run_for(SimDuration::from_secs(120));
    let wireless = d.report();

    // Legacy tier + upper layers.
    let rules = vec![Rule {
        name: "boiler-overheat".into(),
        input: "plant/boiler/temp".into(),
        above: true,
        threshold: 90.0,
        output: "plant/boiler/valve".into(),
        command: 0.0,
    }];
    let mut sys = LayeredSystem::new(demo_gateway(), rules, Historian::new(10_000));
    let mut through = 0usize;
    for cycle in 0..10u64 {
        through += sys.cycle(cycle * 1_000_000);
    }
    let card = Scorecard::from_deployment(&d).with_gateway(&sys.sensing);

    let mut t = Table::new(
        "E1: Fig. 1 cross-layer flow (wireless grid + 3-protocol gateway, 10 cycles)",
        &["boundary", "value"],
    );
    t.row(vec![
        "sensing->app: wireless readings delivered".into(),
        format!("{} ({})", wireless.delivered, pct(wireless.delivery_ratio)),
    ]);
    t.row(vec![
        "sensing->app: gateway measurements".into(),
        through.to_string(),
    ]);
    t.row(vec![
        "app: rules fired (actuations)".into(),
        sys.actuations().len().to_string(),
    ]);
    t.row(vec![
        "app->storage: historian points".into(),
        sys.historian.points().count().to_string(),
    ]);
    t.row(vec![
        "scorecard: protocols integrated".into(),
        card.interoperability.protocols.to_string(),
    ]);
    t.row(vec![
        "scorecard: p95 collection latency (s)".into(),
        f3(card.scalability.latency_p95_s),
    ]);
    t
}

/// E10: the cost ladder of the 802.15.4-style security levels — bytes,
/// CPU time (model and measured), energy and goodput.
///
/// Paper claim (§V-E): secure modes are specified "yet hardly
/// implemented", because every level costs bytes, cycles and energy on
/// microcontroller-class devices.
pub fn e10_security_overhead() -> Table {
    let model = CostModel::default();
    let key = Key(*b"network-key-0001");
    let payload = vec![0xAB; 40];
    let bitrate = 250_000u64;
    let mut t = Table::new(
        "E10: per-frame security overhead (40-byte payload, 16 MHz MCU, 250 kbit/s radio)",
        &[
            "level",
            "extra bytes",
            "airtime +us",
            "cpu us (model)",
            "wall ns (measured)",
            "energy uJ",
            "goodput",
        ],
    );
    for level in SecLevel::ALL {
        // Measure the real software implementation (protect+unprotect).
        let iters = 2000u32;
        let t0 = Instant::now();
        let mut sink = 0u8;
        for i in 0..iters {
            let mut guard = ReplayGuard::new();
            let frame = protect(&key, level, 7, i + 1, &payload);
            sink ^= frame[frame.len() - 1];
            let out = unprotect(&key, SecLevel::None, 7, &frame, &mut guard).expect("ok");
            sink ^= out.first().copied().unwrap_or(0);
        }
        let wall_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(sink);

        t.row(vec![
            format!("{level:?}"),
            model.extra_bytes(level).to_string(),
            f1(model.extra_airtime_us(level, bitrate)),
            f1(model.cpu_time_us(level, payload.len())),
            f1(wall_ns),
            f3(model.cpu_energy_uj(level, payload.len())),
            pct(model.goodput(level, payload.len(), 17)),
        ]);
    }
    t
}

/// E12: gateway integration — normalization throughput, value fidelity
/// across the three southbound protocols, and the CoAP northbound
/// round trip.
pub fn e12_interop() -> Table {
    let mut t = Table::new(
        "E12: gateway integration (modbus-rtu + ble-gatt + 154-tlv)",
        &["metric", "value"],
    );

    // Fidelity: engineering values survive protocol translation.
    let mut gw = demo_gateway();
    gw.poll_all(0);
    let checks = [
        ("plant/boiler/temp", 92.3),
        ("plant/office/temp", 21.4),
        ("plant/yard/temp", 20.0),
    ];
    let exact = checks
        .iter()
        .filter(|(p, v)| {
            gw.last(p)
                .map(|m| (m.value - v).abs() < 0.05)
                .unwrap_or(false)
        })
        .count();
    t.row(vec![
        "fidelity: points within 0.05 engineering units".into(),
        format!("{exact}/{}", checks.len()),
    ]);

    // Throughput: wall-clock normalization rate.
    let iters = 3000u64;
    let t0 = Instant::now();
    let mut total = 0usize;
    for i in 0..iters {
        total += gw.poll_all(i);
    }
    let secs = t0.elapsed().as_secs_f64();
    t.row(vec![
        "throughput: measurements/s through the bridge".into(),
        format!("{:.0}", total as f64 / secs),
    ]);
    t.row(vec![
        "measurements processed".into(),
        gw.measurements_processed().to_string(),
    ]);

    // Northbound CoAP round trip against the live cache.
    let mut client: CoapEndpoint<u64> = CoapEndpoint::new(EndpointConfig::default(), 3);
    client.get(0, "plant/boiler/temp", SimTime::ZERO);
    for (_, dgram) in client.take_outbox() {
        gw.coap_mut().handle_datagram(1, &dgram, SimTime::ZERO);
    }
    for (_, dgram) in gw.coap_mut().take_outbox() {
        client.handle_datagram(0, &dgram, SimTime::ZERO);
    }
    let ok = matches!(
        client.take_events().first(),
        Some(CoapEvent::Response { code, .. }) if code.is_success()
    );
    t.row(vec![
        "northbound CoAP GET".into(),
        if ok {
            "2.05 Content".into()
        } else {
            "FAILED".into()
        },
    ]);
    t
}
