//! Cloud-tier experiments: E16 load-tests the `iiot-cloud` northbound
//! platform with 10^5–10^6 deterministic synthetic device sessions.
//!
//! Four questions, each one table:
//!
//! * **ingest scaling** — throughput, p50/p99 queue latency and shed
//!   rate as the session count grows past the drain capacity of a
//!   fixed pipeline configuration (the cloud-tier analogue of E5's
//!   network-size scaling);
//! * **tenant fairness** — a noisy-neighbor tenant reporting up to
//!   64× faster than everyone else, under per-tenant queues vs one
//!   shared queue (E6's interference story, moved up the stack): how
//!   far can the noisy tenant push a quiet tenant's p99 and shed rate?
//! * **overload & shed policy** — utilization swept through 1.0 with
//!   both [`ShedPolicy`] arms: what saturates, what sheds, and what
//!   latency the survivors see;
//! * **gateway bridge** — a real [`Gateway`](iiot_gateway::Gateway)
//!   with Modbus/GATT/TLV
//!   adapters feeding the pipeline through
//!   [`CloudUplink`](iiot_gateway::CloudUplink), and a downlink
//!   command written back through the gateway's CoAP surface.
//!
//! All reported quantities are virtual-time statistics — pure
//! functions of `(plan, config, seed)` — so every table is
//! byte-identical at any `--jobs`, like the rest of the suite. Wall
//! clock is measured only by the `perf` binary's cloud points
//! ([`cloud_matrix`]) and reported as informational timing.

use crate::runner::{Cell, Trial};
use crate::table::Table;
use crate::RunConfig;
use iiot_cloud::{
    metrics, DeviceRegistry, IngestConfig, IngestPipeline, Isolation, SessionGen, SessionPlan,
    ShedPolicy, TenantId,
};
use iiot_security::Key;
use iiot_sim::obs::{Event, EventKind, Histogram, SpanId};
use iiot_sim::{seed, NodeId, SimDuration, SimTime};

/// Tenants in every synthetic fleet.
const TENANTS: u16 = 4;
/// E16's base seed (experiment id, like `0xE14` for dissemination).
const SEED: u64 = 0xE16;

/// A registry with `TENANTS` tenants of `devices` devices each, keys
/// derived from `seed_val`.
fn fleet(devices: u32, seed_val: u64) -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    for i in 0..TENANTS {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed::derive(seed_val, i as u64).to_le_bytes());
        key[8..].copy_from_slice(&seed::derive(seed_val ^ 0xA5, i as u64).to_le_bytes());
        let t = reg.create_tenant(&format!("tenant-{i}"), Key(key));
        reg.register_fleet(t, devices);
    }
    reg
}

/// Drives one full load-generation run: sessions in, drain ticks
/// between arrivals, everything drained at the end. Returns the
/// pipeline for metric extraction.
fn run_fleet(
    devices: u32,
    plan: SessionPlan,
    config: IngestConfig,
    seed_val: u64,
) -> IngestPipeline {
    let reg = fleet(devices, seed_val);
    let mut gen = SessionGen::new(&reg, plan, seed_val);
    let mut pipe = IngestPipeline::new(reg, config);
    pipe.set_recorder(iiot_sim::obs::scope_capture(seed_val));
    while let Some(msg) = gen.next_msg(pipe.registry()) {
        pipe.drain_until(msg.t);
        pipe.offer(msg);
    }
    pipe.drain_remaining();
    drop(pipe.take_recorder());
    pipe
}

/// Fleet-wide latency distribution: every tenant's histogram merged.
fn merged_latency(pipe: &IngestPipeline) -> Histogram {
    let mut h = Histogram::new();
    for (_, st) in pipe.stats() {
        h.merge(&st.latency_us);
    }
    h
}

/// The standard drain configuration's capacity in messages per
/// virtual second: `queues × drain_batch / tick`.
fn capacity_per_sec(config: &IngestConfig, queues: u64) -> f64 {
    let per_tick = queues as f64 * config.drain_batch as f64;
    per_tick / (config.tick.as_micros() as f64 / 1e6)
}

// ---------------------------------------------------------------- E16a

/// E16a over an explicit per-tenant device axis: ingest scaling at
/// fixed capacity. Total sessions per point = `4 × devices`.
pub fn e16_ingest_with(rc: &RunConfig, devices_axis: &[u32]) -> Table {
    let config = IngestConfig::default();
    let cap = capacity_per_sec(&config, TENANTS as u64);
    let trials: Vec<Trial> = devices_axis
        .iter()
        .map(|&devices| {
            Trial::new(
                format!("e16/ingest/{}", devices * TENANTS as u32),
                SEED,
                move |s| {
                    let pipe = run_fleet(devices, SessionPlan::default(), config, s);
                    let (offered, accepted, shed, drained) = pipe.totals();
                    assert_eq!(accepted, drained, "drain must account for every admission");
                    let lat = merged_latency(&pipe);
                    let fairness = metrics::service_fairness(&metrics::summarize(&pipe));
                    // Mean offered rate over the run's horizon.
                    let horizon_s = pipe.now().as_micros() as f64 / 1e6;
                    let rho = offered as f64 / horizon_s / cap;
                    vec![vec![
                        Cell::int((devices * TENANTS as u32) as f64),
                        Cell::int(offered as f64),
                        Cell::f3(rho),
                        Cell::pct(accepted as f64 / offered as f64),
                        Cell::pct(shed as f64 / offered as f64),
                        Cell::f1(lat.quantile(0.5) / 1000.0),
                        Cell::f1(lat.quantile(0.99) / 1000.0),
                        Cell::f3(fairness),
                    ]]
                },
            )
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E16a: cloud ingest scaling at fixed drain capacity (4 tenants, 4 msgs/session, 1 s interval)",
        &[
            "sessions", "msgs", "utilization", "accepted", "shed",
            "p50 (ms)", "p99 (ms)", "fairness",
        ],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E16a production axis: 25k, 100k and 250k device sessions (100k–1M
/// messages) through one fixed pipeline.
pub fn e16_ingest(rc: &RunConfig) -> Table {
    e16_ingest_with(rc, &[6_250, 25_000, 62_500])
}

// ---------------------------------------------------------------- E16b

/// One fairness observation: the quiet tenants' worst-case experience
/// next to a noisy neighbor.
struct FairnessPoint {
    quiet_p99_ms: f64,
    quiet_shed_pct: f64,
    /// Quiet tenants' sheds by cause: (auth, rate limit, queue full).
    quiet_shed_causes: (u64, u64, u64),
    noisy_accept_pct: f64,
    fairness: f64,
}

fn fairness_point(devices: u32, multiplier: u32, isolation: Isolation, s: u64) -> FairnessPoint {
    // Long-lived sessions (32 msgs each): the noisy tenant's burst must
    // outlast what the shared buffer can absorb before the damage to
    // the quiet tenants becomes visible.
    let plan = SessionPlan {
        msgs_per_device: 32,
        noisy: Some((TenantId(0), multiplier)),
        ..SessionPlan::default()
    };
    // Both arms get identical aggregate drain capacity and buffer:
    // 4 queues × (cap, batch) vs 1 shared queue × 4·(cap, batch).
    let config = match isolation {
        Isolation::PerTenant => IngestConfig {
            shards: TENANTS as usize,
            queue_cap: 1024,
            drain_batch: 256,
            isolation,
            ..IngestConfig::default()
        },
        Isolation::Shared => IngestConfig {
            shards: 1,
            queue_cap: 4 * 1024,
            drain_batch: 4 * 256,
            isolation,
            ..IngestConfig::default()
        },
    };
    let pipe = run_fleet(devices, plan, config, s);
    let summaries = metrics::summarize(&pipe);
    let quiet: Vec<_> = summaries
        .iter()
        .filter(|x| x.tenant != TenantId(0))
        .collect();
    let noisy = summaries
        .iter()
        .find(|x| x.tenant == TenantId(0))
        .expect("noisy tenant");
    FairnessPoint {
        quiet_p99_ms: quiet.iter().map(|x| x.p99_us).max().unwrap_or(0) as f64 / 1000.0,
        quiet_shed_pct: {
            let (shed, offered) = quiet
                .iter()
                .fold((0u64, 0u64), |(s, o), x| (s + x.shed, o + x.offered));
            shed as f64 / offered.max(1) as f64
        },
        quiet_shed_causes: quiet.iter().fold((0, 0, 0), |(a, r, f), x| {
            (a + x.shed_auth, r + x.shed_ratelimit, f + x.shed_full)
        }),
        noisy_accept_pct: noisy.accepted as f64 / noisy.offered.max(1) as f64,
        fairness: metrics::service_fairness(&summaries),
    }
}

/// E16b over explicit noisy-rate multipliers and fleet size: per-tenant
/// isolation vs a shared queue under a noisy neighbor.
pub fn e16_fairness_with(rc: &RunConfig, multipliers: &[u32], devices: u32) -> Table {
    let trials: Vec<Trial> = multipliers
        .iter()
        .flat_map(|&m| {
            [
                (Isolation::PerTenant, "per-tenant"),
                (Isolation::Shared, "shared"),
            ]
            .into_iter()
            .map(move |(iso, name)| {
                Trial::new(format!("e16/fairness/x{m}/{name}"), SEED, move |s| {
                    let p = fairness_point(devices, m, iso, s);
                    let (auth, ratelimit, full) = p.quiet_shed_causes;
                    vec![vec![
                        Cell::label(format!("{m}x")),
                        Cell::label(name),
                        Cell::f1(p.quiet_p99_ms),
                        Cell::pct(p.quiet_shed_pct),
                        Cell::pct(p.noisy_accept_pct),
                        Cell::f3(p.fairness),
                        Cell::label(format!("{auth}/{ratelimit}/{full}")),
                    ]]
                })
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E16b: noisy-neighbor fairness — per-tenant queues vs one shared queue (equal aggregate capacity)",
        &[
            "noisy rate", "isolation", "quiet p99 (ms)", "quiet shed",
            "noisy accepted", "fairness", "quiet sheds a/r/f",
        ],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E16b production axis: noisy tenant at 1–64× the quiet rate, 8k
/// sessions.
pub fn e16_fairness(rc: &RunConfig) -> Table {
    e16_fairness_with(rc, &[1, 4, 16, 64], 2_000)
}

// ---------------------------------------------------------------- E16c

/// E16c over explicit target utilizations: overload behavior of both
/// shed policies around and past saturation.
pub fn e16_overload_with(rc: &RunConfig, rhos: &[f64], devices: u32) -> Table {
    let config = IngestConfig::default();
    let cap = capacity_per_sec(&config, TENANTS as u64);
    let trials: Vec<Trial> = rhos
        .iter()
        .flat_map(|&rho| {
            [
                (ShedPolicy::RejectNew, "reject-new"),
                (ShedPolicy::DropOldest, "drop-oldest"),
            ]
            .into_iter()
            .map(move |(policy, name)| {
                Trial::new(format!("e16/overload/rho{rho:.1}/{name}"), SEED, move |s| {
                    let sessions = (devices * TENANTS as u32) as f64;
                    // Hit the target utilization by compressing the
                    // reporting interval, not growing the fleet:
                    // rate = sessions / interval, rho = rate / cap.
                    let interval_us = (sessions / (rho * cap) * 1e6) as u64;
                    // Long-lived sessions (16 msgs each) so the
                    // overload is sustained well past what the
                    // queue buffer can absorb.
                    let plan = SessionPlan {
                        msgs_per_device: 16,
                        interval: SimDuration::from_micros(interval_us.max(1)),
                        jitter: SimDuration::from_micros((interval_us / 5).max(1)),
                        ..SessionPlan::default()
                    };
                    let pipe = run_fleet(devices, plan, IngestConfig { policy, ..config }, s);
                    let (offered, accepted, shed, _) = pipe.totals();
                    let lat = merged_latency(&pipe);
                    let max_depth = pipe.stats().map(|(_, st)| st.max_depth).max().unwrap_or(0);
                    assert!(
                        max_depth as usize <= config.queue_cap,
                        "bounded queue exceeded its cap"
                    );
                    vec![vec![
                        Cell::f1(rho),
                        Cell::label(name),
                        Cell::pct(accepted as f64 / offered as f64),
                        Cell::pct(shed as f64 / offered as f64),
                        Cell::f1(lat.quantile(0.5) / 1000.0),
                        Cell::f1(lat.quantile(0.99) / 1000.0),
                        Cell::int(max_depth as f64),
                    ]]
                })
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E16c: overload and shed policy (10k sessions, utilization swept by interval compression, queue cap 1024)",
        &[
            "utilization", "policy", "accepted", "shed", "p50 (ms)", "p99 (ms)", "max depth",
        ],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E16c production axis: utilization 0.5 → 2.0.
pub fn e16_overload(rc: &RunConfig) -> Table {
    e16_overload_with(rc, &[0.5, 0.9, 1.2, 2.0], 2_500)
}

// ---------------------------------------------------------------- E16d

/// E16d: the full northbound stack — southbound adapters → gateway →
/// [`CloudUplink`](iiot_gateway::CloudUplink) → registry-checked
/// ingest → a downlink command through the gateway's CoAP surface and
/// back out to the Modbus actuator.
pub fn e16_bridge(rc: &RunConfig) -> Table {
    use iiot_cloud::{Command, CommandRouter, UplinkMsg};
    use iiot_crdt::ReplicaId;
    use iiot_gateway::gatt::{uuid, CharMap, GattAdapter, GattDevice};
    use iiot_gateway::modbus::{ModbusAdapter, ModbusDevice, RegisterMap};
    use iiot_gateway::tlv::{TlvAdapter, TlvSensor};
    use iiot_gateway::{CloudUplink, Gateway, Unit};

    fn plant_gateway() -> Gateway {
        let mut gw = Gateway::new(ReplicaId(1));
        let mut plc = ModbusDevice::new(1, 8);
        plc.set_register(0, 805);
        plc.set_register(1, 700);
        gw.add_adapter(Box::new(ModbusAdapter::new(
            "plc-1",
            plc,
            vec![
                RegisterMap {
                    addr: 0,
                    point: "plant/boiler/temp".into(),
                    unit: Unit::Celsius,
                    scale: 0.1,
                    offset: 0.0,
                    writable: false,
                },
                RegisterMap {
                    addr: 1,
                    point: "plant/boiler/setpoint".into(),
                    unit: Unit::Celsius,
                    scale: 0.1,
                    offset: 0.0,
                    writable: true,
                },
            ],
        )));
        let mut tag = GattDevice::new();
        tag.add_characteristic(0x10, uuid::TEMPERATURE, vec![0, 0]);
        tag.set_temperature(0x10, 21.25);
        gw.add_adapter(Box::new(GattAdapter::new(
            "tag-1",
            tag,
            vec![CharMap {
                handle: 0x10,
                point: "plant/floor/ambient".into(),
            }],
        )));
        let mut mote = TlvSensor::new(7);
        mote.set_readings(18.5, 55.0, 2900);
        gw.add_adapter(Box::new(TlvAdapter::new("mote-7", mote, "plant/yard")));
        gw
    }

    let trials = vec![Trial::new("e16/bridge", SEED, |s| {
        const POLLS: u64 = 50;
        let mut gw = plant_gateway();
        let tenant = TenantId(0);
        let uplink = CloudUplink::new(&gw, tenant.0, "plant/");
        // One registry device per gateway point, mapped on first sight
        // (poll order is deterministic).
        let mut point_dev: std::collections::BTreeMap<String, u32> =
            std::collections::BTreeMap::new();
        let mut pipe = IngestPipeline::new(fleet(16, s), IngestConfig::default());
        pipe.set_recorder(iiot_sim::obs::scope_capture(s));

        for i in 0..POLLS {
            let now_us = i * 100_000;
            gw.poll_all(now_us);
            for rec in uplink.drain() {
                let next = point_dev.len() as u32;
                let device = *point_dev.entry(rec.point.clone()).or_insert(next);
                let msg = UplinkMsg {
                    tenant,
                    device,
                    token: pipe.registry().token(tenant, device).unwrap_or(0),
                    value: rec.value,
                    t: SimTime::from_micros(rec.timestamp_us),
                };
                pipe.drain_until(msg.t);
                pipe.offer(msg);
            }
        }
        pipe.drain_remaining();

        // Downlink: a tenant-issued setpoint write, routed through the
        // gateway's CoAP server and applied at its next poll.
        let mut router = CommandRouter::new(16, s);
        router.submit(Command {
            tenant,
            point: "plant/boiler/setpoint".into(),
            value: 65.0,
        });
        let now = SimTime::from_micros(POLLS * 100_000);
        let outcomes = router.flush(gw.coap_mut(), now);
        let ok = outcomes.iter().filter(|o| o.ok).count();
        if let Some(mut rec) = pipe.take_recorder() {
            for o in &outcomes {
                rec.record(&Event {
                    t: now,
                    node: NodeId(0),
                    span: SpanId::NONE,
                    kind: EventKind::CloudCommand {
                        tenant: o.tenant.0 as u32,
                        ok: o.ok,
                    },
                });
            }
        }
        gw.poll_all(now.as_micros() + 100_000);
        let setpoint = gw
            .last("plant/boiler/setpoint")
            .map(|m| m.value)
            .unwrap_or(f64::NAN);

        let (offered, accepted, _, _) = pipe.totals();
        vec![vec![
            Cell::int(POLLS as f64),
            Cell::int(offered as f64),
            Cell::pct(accepted as f64 / offered.max(1) as f64),
            Cell::int(ok as f64),
            Cell::f1(setpoint),
        ]]
    })];
    let out = rc.runner.run(trials, rc.trials);
    let mut t = Table::new(
        "E16d: gateway -> cloud bridge round trip (Modbus/GATT/TLV southbound, CoAP downlink command)",
        &["polls", "uplinks", "accepted", "commands ok", "setpoint after"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

// ------------------------------------------------------- perf harness

/// One cloud load point for `BENCH_perf.json`: the deterministic block
/// is a pure function of the workload (virtual-time statistics); wall
/// clock and derived throughput are informational timing.
#[derive(Clone, Debug)]
pub struct CloudPoint {
    /// Simulated device sessions.
    pub sessions: u64,
    /// Tenants sharing the pipeline.
    pub tenants: u16,
    /// Drain shards.
    pub shards: usize,
    /// Messages offered.
    pub msgs: u64,
    /// Messages admitted past auth + backpressure.
    pub accepted: u64,
    /// Messages shed.
    pub shed: u64,
    /// Median virtual-time queue latency, µs (rounded).
    pub p50_us: u64,
    /// p99 virtual-time queue latency, µs (rounded).
    pub p99_us: u64,
    /// Jain service fairness × 1000, rounded (kept integral so the
    /// deterministic block contains no floats).
    pub fairness_milli: u64,
    /// Wall-clock time of the whole run, µs.
    pub wall_us: u128,
    /// `"threaded"` or `"serial"` drain.
    pub mode: &'static str,
}

impl CloudPoint {
    /// Offered messages per wall-clock second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / (self.wall_us.max(1) as f64 / 1e6)
    }
}

/// Runs the ingest-scaling workload once per device count and measures
/// it: virtual-time statistics in the deterministic block, wall clock
/// in timing. `threaded` picks the drain mode (both produce identical
/// deterministic blocks — that is the point of the contract).
pub fn cloud_matrix(devices_axis: &[u32], threaded: bool) -> Vec<CloudPoint> {
    devices_axis
        .iter()
        .map(|&devices| {
            let config = IngestConfig {
                threaded,
                ..IngestConfig::default()
            };
            let started = std::time::Instant::now();
            let pipe = run_fleet(devices, SessionPlan::default(), config, SEED);
            let wall_us = started.elapsed().as_micros();
            let (offered, accepted, shed, _) = pipe.totals();
            let lat = merged_latency(&pipe);
            let fairness = metrics::service_fairness(&metrics::summarize(&pipe));
            CloudPoint {
                sessions: devices as u64 * TENANTS as u64,
                tenants: TENANTS,
                shards: config.shards,
                msgs: offered,
                accepted,
                shed,
                p50_us: lat.quantile(0.5).round() as u64,
                p99_us: lat.quantile(0.99).round() as u64,
                fairness_milli: (fairness * 1000.0).round() as u64,
                wall_us,
                mode: if threaded { "threaded" } else { "serial" },
            }
        })
        .collect()
}

/// Renders cloud points as the table the `perf` binary prints next to
/// the index and scaling matrices.
pub fn cloud_table(points: &[CloudPoint]) -> Table {
    let mut t = Table::new(
        "PERF: cloud ingest scaling (multi-tenant pipeline, sharded drain)",
        &[
            "sessions", "shards", "mode", "msgs", "shed", "p50 (ms)", "p99 (ms)", "fairness",
            "Mmsg/s",
        ],
    );
    for p in points {
        t.row(vec![
            p.sessions.to_string(),
            p.shards.to_string(),
            p.mode.to_string(),
            p.msgs.to_string(),
            p.shed.to_string(),
            format!("{:.3}", p.p50_us as f64 / 1e3),
            format!("{:.3}", p.p99_us as f64 / 1e3),
            format!("{:.3}", p.fairness_milli as f64 / 1e3),
            format!("{:.2}", p.msgs_per_sec() / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    fn rc(jobs: usize) -> RunConfig {
        RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        }
    }

    #[test]
    fn ingest_tables_are_jobs_invariant() {
        let a = e16_ingest_with(&rc(1), &[50, 150]);
        let b = e16_ingest_with(&rc(4), &[50, 150]);
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn fairness_shared_queue_hurts_the_quiet_tenants_more() {
        // 2000 devices at 64x saturates the shared queue (the noisy
        // tenant alone offers ~116k msg/s against 102.4k msg/s of
        // aggregate capacity), so the arms genuinely diverge here.
        let point = |iso| fairness_point(2_000, 64, iso, SEED);
        let iso = point(Isolation::PerTenant);
        let shared = point(Isolation::Shared);
        // Isolation bounds the quiet tenants' damage: no shed, and p99
        // capped by one queue's drain time (cap/batch + 1 ticks = 50ms).
        assert_eq!(
            iso.quiet_shed_pct, 0.0,
            "isolated quiet tenants must not shed"
        );
        assert!(
            iso.quiet_p99_ms <= 50.0,
            "isolated quiet p99 {} > 50ms",
            iso.quiet_p99_ms
        );
        // The shared queue passes the noisy burst through to everyone.
        assert!(
            shared.quiet_p99_ms > 2.0 * iso.quiet_p99_ms,
            "shared quiet p99 {} must exceed isolated {}",
            shared.quiet_p99_ms,
            iso.quiet_p99_ms
        );
        assert!(
            shared.quiet_shed_pct > 0.0,
            "shared queue must shed quiet traffic"
        );
        // Per-cause breakdown: with no admission control configured and
        // valid credentials throughout, every quiet-tenant shed must be
        // attributed to queue backpressure — the summaries' cause
        // columns account for the loss exactly.
        let (auth, ratelimit, full) = shared.quiet_shed_causes;
        assert_eq!(
            auth, 0,
            "fairness plan uses valid tokens; no auth sheds expected"
        );
        assert_eq!(
            ratelimit, 0,
            "no admission control attached; no rate-limit sheds"
        );
        assert!(full > 0, "quiet-tenant loss must show up as shed_full");
        assert_eq!(
            iso.quiet_shed_causes,
            (0, 0, 0),
            "isolated quiet tenants shed nothing"
        );
        // The service-ratio Jain index is *higher* for the shared queue:
        // FIFO "equalizes" by degrading every tenant together, while
        // isolation concentrates loss on the offender. Fairness to the
        // quiet tenants is read from the p99/shed columns, not this one.
        assert!(
            shared.fairness >= iso.fairness,
            "shared FIFO equalizes service ratios ({} < {})",
            shared.fairness,
            iso.fairness
        );
        assert!(
            shared.noisy_accept_pct > iso.noisy_accept_pct,
            "shared queue must let the offender through at the quiet tenants' expense"
        );
    }

    #[test]
    fn overload_sheds_past_saturation_but_never_below() {
        let t = e16_overload_with(&rc(2), &[0.5, 2.0], 250);
        // rows: [rho, policy, accepted, shed, p50, p99, max_depth]
        let shed_pct = |row: &Vec<String>| {
            row[3]
                .trim_end_matches('%')
                .parse::<f64>()
                .expect("shed cell")
        };
        let rows = t.rows();
        assert_eq!(rows.len(), 4);
        assert!(
            shed_pct(&rows[0]) < 1.0,
            "rho 0.5 must not shed: {:?}",
            rows[0]
        );
        assert!(
            shed_pct(&rows[3]) > 20.0,
            "rho 2.0 must shed hard: {:?}",
            rows[3]
        );
    }

    #[test]
    fn cloud_matrix_deterministic_blocks_are_mode_invariant() {
        let a = cloud_matrix(&[100, 300], true);
        let b = cloud_matrix(&[100, 300], false);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (
                    x.sessions,
                    x.msgs,
                    x.accepted,
                    x.shed,
                    x.p50_us,
                    x.p99_us,
                    x.fairness_milli
                ),
                (
                    y.sessions,
                    y.msgs,
                    y.accepted,
                    y.shed,
                    y.p50_us,
                    y.p99_us,
                    y.fairness_milli
                ),
                "threaded and serial cloud runs must agree exactly"
            );
        }
    }

    #[test]
    fn bridge_round_trip_applies_the_downlink_command() {
        let t = e16_bridge(&rc(1));
        let rows = t.rows();
        assert_eq!(rows.len(), 1);
        // [polls, uplinks, accepted, commands ok, setpoint after]
        assert_eq!(rows[0][3], "1", "command must ack: {:?}", rows[0]);
        assert_eq!(rows[0][4], "65.0", "setpoint must apply: {:?}", rows[0]);
    }
}
