//! Parallel deterministic trial execution.
//!
//! Every experiment in this harness is a set of *trials* — independent
//! `(configuration, seed)` simulation runs whose outputs become table
//! rows. Trials share nothing, so they parallelize embarrassingly; the
//! only thing that must not change with the worker count is the
//! *output*. The [`Runner`] guarantees that by construction:
//!
//! * each trial's seed is fixed before anything runs (derived from the
//!   experiment's master seed via [`iiot_sim::seed`], never from
//!   execution order);
//! * workers pull trials from a shared queue, but results are collected
//!   by submission index, so the assembled tables are byte-identical
//!   whether `--jobs` is 1 or 64;
//! * replicated runs (`--trials N`) aggregate numeric cells across
//!   replicas positionally (mean and p95), with replica seeds split
//!   from the trial seed.
//!
//! Wall-clock time is recorded per trial (summed over its replicas), so
//! the harness can report where the time went.

use crate::table::{f1, f3, pct};
use iiot_sim::seed::replica_seeds;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How a [`Cell::Value`] renders in a table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// One decimal place (`table::f1`).
    F1,
    /// Three decimal places (`table::f3`).
    F3,
    /// Percentage with one decimal (`table::pct`).
    Pct,
    /// Integer count (renders the mean with one decimal when
    /// aggregated over replicas).
    Int,
}

impl Unit {
    fn format(self, v: f64) -> String {
        match self {
            Unit::F1 => f1(v),
            Unit::F3 => f3(v),
            Unit::Pct => pct(v),
            Unit::Int => format!("{}", v.round() as i64),
        }
    }

    fn format_mean(self, v: f64) -> String {
        match self {
            Unit::Int => f1(v),
            u => u.format(v),
        }
    }
}

/// One cell of a trial's metric rows: either a fixed label (config
/// names, axis values) or a measured number with its display unit.
/// Labels must agree across replicas of a trial; values aggregate.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// Fixed text, identical across replicas.
    Label(String),
    /// A measurement and how to format it.
    Value(f64, Unit),
}

impl Cell {
    /// A fixed-text cell.
    pub fn label(s: impl Into<String>) -> Self {
        Cell::Label(s.into())
    }

    /// A one-decimal value.
    pub fn f1(v: f64) -> Self {
        Cell::Value(v, Unit::F1)
    }

    /// A three-decimal value.
    pub fn f3(v: f64) -> Self {
        Cell::Value(v, Unit::F3)
    }

    /// A ratio rendered as a percentage.
    pub fn pct(v: f64) -> Self {
        Cell::Value(v, Unit::Pct)
    }

    /// An integer count.
    pub fn int(v: f64) -> Self {
        Cell::Value(v, Unit::Int)
    }
}

/// The metric rows one trial produces (cells, not yet formatted).
pub type MetricRows = Vec<Vec<Cell>>;

/// One schedulable unit: a label, the trial's base seed, and the
/// simulation closure. The closure receives the seed to run with —
/// the base seed itself, or a replica seed split from it — and must be
/// a pure function of that seed.
pub struct Trial {
    label: String,
    seed: u64,
    run: Box<dyn Fn(u64) -> MetricRows + Send + Sync>,
}

impl Trial {
    /// Creates a trial. `run` is called once per replica with the seed
    /// to simulate under.
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        run: impl Fn(u64) -> MetricRows + Send + Sync + 'static,
    ) -> Self {
        Trial {
            label: label.into(),
            seed,
            run: Box::new(run),
        }
    }

    /// The trial's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The trial's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A completed trial: formatted rows (aggregated over replicas) plus
/// bookkeeping.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// The trial's label.
    pub label: String,
    /// The trial's base seed.
    pub seed: u64,
    /// Formatted rows, ready to append to a [`Table`](crate::Table).
    pub rows: Vec<Vec<String>>,
    /// Busy wall-clock time, summed over the trial's replicas.
    pub wall: Duration,
    /// How many replicas were aggregated.
    pub replicas: u32,
}

/// Fans trials out over a scoped worker pool and collects results in
/// deterministic submission order.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    jobs: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::sequential()
    }
}

impl Runner {
    /// A runner with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// A single-worker runner: trials run one after another on one
    /// thread, in submission order.
    pub fn sequential() -> Self {
        Runner::new(1)
    }

    /// A runner with one worker per available core.
    pub fn available_parallelism() -> Self {
        Runner::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every trial `replicas` times and returns one aggregated
    /// outcome per trial, in the order the trials were passed in.
    ///
    /// Replica seeds are split from each trial's base seed with
    /// [`iiot_sim::seed::replica_seeds`], so the work plan is fixed
    /// before any worker starts; the output is independent of the
    /// worker count and of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if a trial's replicas disagree on row shape or label
    /// cells (a trial closure that is not a pure function of its seed),
    /// or if a trial closure panics.
    pub fn run(&self, trials: Vec<Trial>, replicas: u32) -> Vec<TrialOutcome> {
        let replicas = replicas.max(1);
        // Section ids are allocated here, in submission order, before
        // any worker runs: trace scope keys depend only on the call
        // sequence, never on scheduling.
        let section = iiot_sim::obs::begin_section();
        // The full work plan, fixed up front: one job per (trial,
        // replica), each with its pre-derived seed.
        let jobs: Vec<(usize, u32, u64)> = trials
            .iter()
            .enumerate()
            .flat_map(|(t, trial)| {
                replica_seeds(trial.seed, replicas)
                    .into_iter()
                    .enumerate()
                    .map(move |(r, seed)| (t, r as u32, seed))
            })
            .collect();

        let next = AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::unbounded();
        let trials_ref: &[Trial] = &trials;
        let jobs_ref: &[(usize, u32, u64)] = &jobs;
        let workers = self.jobs.min(jobs.len().max(1));
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move |_| {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(t, r, seed)) = jobs_ref.get(i) else {
                            break;
                        };
                        let started = Instant::now();
                        // Tag the worker thread so any worlds the trial
                        // builds record into the trace sink under a
                        // deterministic (section, trial, replica) key.
                        if iiot_sim::obs::tracing_enabled() {
                            iiot_sim::obs::set_scope(section, t as u32, r, trials_ref[t].label());
                        }
                        let rows = (trials_ref[t].run)(seed);
                        iiot_sim::obs::clear_scope();
                        tx.send((t, r, rows, started.elapsed()))
                            .expect("collector alive");
                    }
                });
            }
            drop(tx);
            // Collect by (trial, replica) index: arrival order is
            // scheduling-dependent, the slots are not.
            let mut slots: Vec<Vec<Option<(MetricRows, Duration)>>> = (0..trials.len())
                .map(|_| (0..replicas as usize).map(|_| None).collect())
                .collect();
            for (t, r, rows, wall) in rx.iter() {
                slots[t][r as usize] = Some((rows, wall));
            }
            slots
        })
        .expect("worker panicked")
        .into_iter()
        .zip(&trials)
        .map(|(reps, trial)| {
            let reps: Vec<(MetricRows, Duration)> =
                reps.into_iter().map(|r| r.expect("job ran")).collect();
            aggregate(trial, reps)
        })
        .collect()
    }
}

/// Folds a trial's replicas into one formatted outcome.
fn aggregate(trial: &Trial, reps: Vec<(MetricRows, Duration)>) -> TrialOutcome {
    let replicas = reps.len() as u32;
    let wall = reps.iter().map(|(_, w)| *w).sum();
    let first = &reps[0].0;
    let rows = first
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(|(j, cell)| match cell {
                    Cell::Label(s) => {
                        for (other, _) in &reps[1..] {
                            assert_eq!(
                                Some(cell),
                                other.get(i).and_then(|r| r.get(j)),
                                "trial '{}': label cell differs across replicas",
                                trial.label
                            );
                        }
                        s.clone()
                    }
                    Cell::Value(_, unit) => {
                        let vals: Vec<f64> = reps
                            .iter()
                            .map(|(rows, _)| match rows.get(i).and_then(|r| r.get(j)) {
                                Some(Cell::Value(v, u)) if u == unit => *v,
                                other => panic!(
                                    "trial '{}': replica value cell mismatch at \
                                     ({i},{j}): {other:?}",
                                    trial.label
                                ),
                            })
                            .collect();
                        if replicas == 1 {
                            unit.format(vals[0])
                        } else {
                            let s = iiot_sim::trace::summarize(&vals);
                            format!("{} (p95 {})", unit.format_mean(s.mean), unit.format(s.p95))
                        }
                    }
                })
                .collect()
        })
        .collect();
    TrialOutcome {
        label: trial.label.clone(),
        seed: trial.seed,
        rows,
        wall,
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trials(n: usize) -> Vec<Trial> {
        (0..n)
            .map(|i| {
                Trial::new(format!("t{i}"), 100 + i as u64, move |seed| {
                    vec![vec![
                        Cell::label(format!("t{i}")),
                        Cell::Value(seed as f64, Unit::F1),
                    ]]
                })
            })
            .collect()
    }

    #[test]
    fn order_is_submission_order_regardless_of_jobs() {
        let seq = Runner::new(1).run(toy_trials(9), 1);
        let par = Runner::new(4).run(toy_trials(9), 1);
        assert_eq!(seq.len(), 9);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn single_replica_formats_plainly() {
        let out = Runner::sequential().run(toy_trials(1), 1);
        assert_eq!(out[0].rows, vec![vec!["t0".to_string(), "100.0".into()]]);
        assert_eq!(out[0].replicas, 1);
    }

    #[test]
    fn replicas_aggregate_mean_and_p95() {
        // Value = seed, seeds = [10, derive(10,1), derive(10,2)]: the
        // aggregate must be the mean/p95 of exactly those, independent
        // of jobs.
        let mk = || {
            vec![Trial::new("x", 10, |seed| {
                vec![vec![Cell::Value((seed % 7) as f64, Unit::F1)]]
            })]
        };
        let a = Runner::new(1).run(mk(), 3);
        let b = Runner::new(3).run(mk(), 3);
        assert_eq!(a[0].rows, b[0].rows);
        assert_eq!(a[0].replicas, 3);
        assert!(a[0].rows[0][0].contains("(p95 "), "{:?}", a[0].rows);
    }

    #[test]
    #[should_panic(expected = "label cell differs")]
    fn impure_labels_are_caught() {
        let t = Trial::new("bad", 1, |seed| vec![vec![Cell::label(format!("{seed}"))]]);
        Runner::sequential().run(vec![t], 2);
    }

    #[test]
    fn more_jobs_than_trials_is_fine() {
        let out = Runner::new(64).run(toy_trials(2), 1);
        assert_eq!(out.len(), 2);
    }
}
