//! Scalability experiments: E2 (latency vs. hops per MAC), E3 (border-
//! router funneling vs. in-network aggregation), E5 (size scaling,
//! centralized vs. decentralized) and E6 (administrative scalability).
//!
//! The sweeps here are the harness's hot spots, so each configuration
//! point becomes one [`Trial`] fanned out over the [`RunConfig`]'s
//! worker pool; tables are assembled from outcomes in submission order
//! and are byte-identical for any worker count.

use crate::runner::{Cell, Trial};
use crate::table::Table;
use crate::RunConfig;
use iiot_aggregate::tree::{AggConfig, AggregationNode, Mode};
use iiot_core::{Deployment, MacChoice};
use iiot_mac::coex::{ChannelPlan, TenantId};
use iiot_mac::csma::CsmaMac;
use iiot_mac::driver::MacDriver;
use iiot_routing::dodag::Traffic;
use iiot_routing::statictree::{StaticCollection, StaticConfig};
use iiot_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// E2: end-to-end collection latency by hop distance, per MAC.
///
/// Paper claim (§IV-B): with duty-cycled MACs "a packet may take
/// seconds to be transmitted over few wireless hops", while synchronous
/// coordination (TDMA) minimizes latency; always-on CSMA is the
/// baseline that buys latency with energy.
pub fn e2_latency_vs_hops(rc: &RunConfig) -> Table {
    e2_latency_vs_hops_with(rc, 460)
}

/// E2 core, parameterized over simulated length so the determinism and
/// golden tests can run a cheap sweep; [`e2_latency_vs_hops`] passes
/// the full experiment horizon.
pub fn e2_latency_vs_hops_with(rc: &RunConfig, secs: u64) -> Table {
    let macs = [
        ("csma", MacChoice::Csma),
        ("lpl-512ms", MacChoice::Lpl(SimDuration::from_millis(512))),
        (
            "rimac-512ms",
            MacChoice::Rimac(SimDuration::from_millis(512)),
        ),
        ("tdma-20ms", MacChoice::Tdma(SimDuration::from_millis(20))),
    ];
    let buckets = [2u32, 4, 8, 12];

    // One trial per MAC, returning a single row: the per-bucket mean
    // latencies followed by the duty cycle. The table below transposes
    // those rows into per-bucket rows with one column per MAC.
    let trials: Vec<Trial> = macs
        .iter()
        .map(|&(name, mac)| {
            Trial::new(format!("e2/{name}"), 0xE2, move |seed| {
                let mut d = Deployment::builder(Topology::line(13, 20.0))
                    .mac(mac)
                    .seed(seed)
                    .traffic(SimDuration::from_secs(30), 10, SimDuration::from_secs(60))
                    .build();
                d.run_for(SimDuration::from_secs(secs));
                let lats = d.world.stats().samples("collect_latency_s").to_vec();
                let hops = d.world.stats().samples("collect_hops").to_vec();
                let mean_for = |h: u32| -> f64 {
                    let vals: Vec<f64> = lats
                        .iter()
                        .zip(&hops)
                        .filter(|(_, &hh)| hh as u32 == h)
                        .map(|(&l, _)| l)
                        .collect();
                    if vals.is_empty() {
                        f64::NAN
                    } else {
                        vals.iter().sum::<f64>() / vals.len() as f64
                    }
                };
                let mut row: Vec<Cell> = buckets.iter().map(|&h| Cell::f3(mean_for(h))).collect();
                row.push(Cell::pct(d.report().mean_duty_cycle));
                vec![row]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E2: mean collection latency (s) vs hop distance, per MAC",
        &["hops", "csma", "lpl-512ms", "rimac-512ms", "tdma-20ms"],
    );
    for (i, h) in buckets.iter().enumerate() {
        t.row(
            std::iter::once(h.to_string())
                .chain(out.iter().map(|o| o.rows[0][i].clone()))
                .collect(),
        );
    }
    t.row(
        std::iter::once("duty".to_string())
            .chain(out.iter().map(|o| o.rows[0][buckets.len()].clone()))
            .collect(),
    );
    t
}

fn run_agg(mode: Mode, epoch_ms: u32, rounds: u16, n: usize, seed: u64) -> Sim {
    let parents: Vec<Option<NodeId>> = (0..n)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some(NodeId(i as u32 - 1))
            }
        })
        .collect();
    let cfg = AggConfig::new(parents, mode, epoch_ms, rounds);
    let mut w = SimBuilder::new()
        .seed(seed)
        .nodes(Topology::line(n, 20.0), move |_| {
            Box::new(AggregationNode::new(CsmaMac::default(), cfg.clone())) as Box<dyn Proto>
        })
        .build();
    let horizon = 2_000 + epoch_ms as u64 * (rounds as u64 + 2);
    w.run_for(SimDuration::from_millis(horizon));
    w
}

/// E3: per-node load vs. distance from the border router, raw
/// forwarding vs. in-network aggregation.
///
/// Paper claim (§IV-B): nodes near border routers carry a heavy load;
/// in-network aggregation alleviates it.
pub fn e3_funneling(rc: &RunConfig) -> Table {
    let n = 8;
    let rounds = 8u16;

    // One trial per mode; each returns one row per non-root node with
    // that mode's message count and radio-tx time. The table zips the
    // two outcomes into per-node rows.
    let trials: Vec<Trial> = [("raw", Mode::Raw), ("agg", Mode::Aggregate)]
        .into_iter()
        .map(|(name, mode)| {
            Trial::new(format!("e3/{name}"), 0xE3, move |seed| {
                let counter = if mode == Mode::Raw {
                    "raw_tx"
                } else {
                    "agg_tx"
                };
                let mut w = run_agg(mode, 5_000, rounds, n, seed);
                (1..n)
                    .map(|i| {
                        let id = NodeId(i as u32);
                        vec![
                            Cell::f1(w.stats().get_node(id, counter)),
                            Cell::f3(w.energy(id).tx.as_secs_f64() * 1e3),
                        ]
                    })
                    .collect()
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E3: per-node transmissions and radio-tx time over 8 epochs (line of 8), raw vs aggregate",
        &[
            "node (hops from root)",
            "raw msgs",
            "agg msgs",
            "raw tx ms",
            "agg tx ms",
        ],
    );
    for i in 1..n {
        let (raw, agg) = (&out[0].rows[i - 1], &out[1].rows[i - 1]);
        t.row(vec![
            format!("n{i} ({i})"),
            raw[0].clone(),
            agg[0].clone(),
            raw[1].clone(),
            agg[1].clone(),
        ]);
    }
    t
}

/// E3 ablation: aggregation epoch length vs. root-adjacent load and
/// result freshness.
pub fn e3_epoch_ablation(rc: &RunConfig) -> Table {
    let trials: Vec<Trial> = [5u32, 10, 20]
        .into_iter()
        .map(|epoch_s| {
            Trial::new(format!("e3a/epoch{epoch_s}"), 0xE3A, move |seed| {
                let rounds = (60 / epoch_s) as u16;
                let mut w = run_agg(Mode::Aggregate, epoch_s * 1000, rounds, 8, seed);
                vec![vec![
                    Cell::label(epoch_s.to_string()),
                    Cell::label(rounds.to_string()),
                    Cell::f1(w.stats().get_node(NodeId(1), "agg_tx")),
                    Cell::f3(w.energy(NodeId(1)).tx.as_secs_f64() * 1e3),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E3-ablation: epoch length vs root-adjacent load (aggregate mode, line of 8, 60 s)",
        &["epoch (s)", "epochs run", "n1 msgs", "n1 tx ms"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E5 core, parameterized over grid sides and sim length so the
/// determinism tests can run a cheap sweep; [`e5_size_scaling`] passes
/// the full experiment axis.
pub fn e5_size_scaling_with(rc: &RunConfig, sides: &[usize], secs: u64) -> Table {
    let trials: Vec<Trial> = sides
        .iter()
        .map(|&side| {
            Trial::new(format!("e5/{side}x{side}"), 0xE5, move |seed| {
                let n = side * side;
                // Decentralized: self-organizing DODAG over CSMA.
                let mut d = Deployment::builder(Topology::grid(side, side, 20.0))
                    .mac(MacChoice::Csma)
                    .seed(seed)
                    .traffic(SimDuration::from_secs(30), 10, SimDuration::from_secs(60))
                    .build();
                d.run_for(SimDuration::from_secs(secs));
                let r = d.report();
                let dio_rate =
                    d.world.stats().node_total("dio_tx") / n as f64 / (secs as f64 / 60.0);

                // Centralized: everyone unicasts straight to the sink.
                let parents: Vec<Option<NodeId>> = (0..n)
                    .map(|i| if i == 0 { None } else { Some(NodeId(0)) })
                    .collect();
                let mut cfg = StaticConfig::new(parents);
                cfg.traffic = Some(Traffic {
                    period: SimDuration::from_secs(30),
                    payload_len: 10,
                    start_after: SimDuration::from_secs(60),
                });
                let mut w = SimBuilder::new()
                    .seed(seed)
                    .nodes(Topology::grid(side, side, 20.0), move |_| {
                        Box::new(StaticCollection::new(CsmaMac::default(), cfg.clone()))
                            as Box<dyn Proto>
                    })
                    .build();
                w.run_for(SimDuration::from_secs(secs));
                let gen = w.stats().node_total("data_origin");
                let del = w.stats().get("data_rx_root");

                vec![vec![
                    Cell::label(n.to_string()),
                    Cell::pct(r.delivery_ratio),
                    Cell::f3(r.latency.p95),
                    Cell::f1(dio_rate),
                    Cell::pct(if gen == 0.0 { 1.0 } else { del / gen }),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E5: delivery vs deployment size (20 m grid), decentralized DODAG vs direct-to-sink",
        &[
            "nodes",
            "dodag delivery",
            "dodag lat p95 (s)",
            "dio/node/min",
            "direct delivery",
        ],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E5: size scalability — delivery as the deployment grows, for the
/// decentralized DODAG vs. a "direct to the sink" centralized design.
///
/// Paper claim (§IV-A): systems must tolerate orders-of-magnitude
/// growth; scaling usually forces decentralized designs.
pub fn e5_size_scaling(rc: &RunConfig) -> Table {
    e5_size_scaling_with(rc, &[3, 5, 8, 12, 17], 400)
}

/// E2 ablation: the LPL wake interval is the §IV-B energy/latency knob.
pub fn e2_wake_ablation(rc: &RunConfig) -> Table {
    let trials: Vec<Trial> = [128u64, 256, 512, 1024]
        .into_iter()
        .map(|wake_ms| {
            Trial::new(format!("e2a/wake{wake_ms}"), 0xE2A, move |seed| {
                let mut d = Deployment::builder(Topology::line(7, 20.0))
                    .mac(MacChoice::Lpl(SimDuration::from_millis(wake_ms)))
                    .seed(seed)
                    .traffic(SimDuration::from_secs(30), 10, SimDuration::from_secs(60))
                    .build();
                d.run_for(SimDuration::from_secs(360));
                let r = d.report();
                vec![vec![
                    Cell::label(wake_ms.to_string()),
                    Cell::pct(r.delivery_ratio),
                    Cell::f3(r.latency.mean),
                    Cell::pct(r.mean_duty_cycle),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E2-ablation: LPL wake interval vs latency and duty cycle (7-node line, 300 s)",
        &["wake (ms)", "delivery", "mean latency (s)", "duty cycle"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E11 ablation: the Trickle redundancy constant `k` trades control
/// overhead against repair responsiveness (DESIGN.md §3).
pub fn e11_trickle_ablation(rc: &RunConfig) -> Table {
    use iiot_routing::dodag::DodagConfig;
    let trials: Vec<Trial> = [1u32, 3, 10]
        .into_iter()
        .map(|k| {
            Trial::new(format!("e11a/k{k}"), 0xE11A, move |seed| {
                let mut cfg = DodagConfig::default();
                cfg.trickle.k = k;
                let mut d = Deployment::builder(Topology::grid(5, 5, 20.0))
                    .mac(MacChoice::Csma)
                    .seed(seed)
                    .routing(cfg)
                    .traffic(SimDuration::from_secs(20), 10, SimDuration::from_secs(40))
                    .build();
                // The churn plan splits its own stream from the trial
                // seed so replicas vary the fault schedule too.
                let mut rng = SmallRng::seed_from_u64(iiot_sim::seed::derive(seed, k as u64));
                let plan = iiot_dependability::FaultPlan::random_churn(
                    &mut rng,
                    &d.nodes[1..],
                    SimDuration::from_secs(200),
                    SimDuration::from_secs(20),
                    SimTime::ZERO,
                    SimTime::from_secs(350),
                    &[],
                );
                plan.apply(&mut d.world);
                let secs = 400u64;
                d.run_for(SimDuration::from_secs(secs));
                let r = d.report();
                let dio_rate = d.world.stats().node_total("dio_tx") / 25.0 / (secs as f64 / 60.0);
                vec![vec![
                    Cell::label(k.to_string()),
                    Cell::f1(dio_rate),
                    Cell::pct(r.delivery_ratio),
                    Cell::f1(d.world.stats().node_total("parent_switch")),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E11-ablation: trickle k vs control overhead and delivery under churn (5x5 grid, 400 s, MTBF 200 s)",
        &["k", "dio/node/min", "delivery", "parent switches"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// Shared E6 engine: `tenants` co-located clusters under a channel
/// plan; returns (intra-tenant delivered, expected).
fn run_tenants(plan: ChannelPlan, tenants: usize, seed: u64) -> (usize, usize) {
    let per_tenant = 6usize;
    let frames = 600u64;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0E);
    let mut b = SimBuilder::new().seed(seed);
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut next_id = 0u32;
    for _ in 0..tenants {
        let topo = Topology::clustered(1, per_tenant, 60.0, 60.0, 8.0, &mut rng);
        let batch: Vec<NodeId> = (0..topo.len())
            .map(|i| NodeId(next_id + i as u32))
            .collect();
        next_id += topo.len() as u32;
        b = b.nodes(topo, |_| Box::new(MacDriver::new(CsmaMac::default())));
        groups.push(batch);
    }
    let mut w = b.build();
    // Channel plan: re-tune every 1 s epoch (static plans are
    // constant; hopping changes channels).
    for (t, batch) in groups.iter().enumerate() {
        for &node in batch {
            for epoch in 0..40u64 {
                let ch = plan.channel_for(TenantId(t as u16), epoch);
                w.schedule_at(SimTime::from_millis(epoch * 1000 + 1), node, move |w2| {
                    w2.with_ctx(node, |_p, ctx| {
                        let _ = ctx.set_channel(ch);
                    });
                });
            }
        }
    }
    for batch in &groups {
        for (k, &node) in batch.iter().enumerate() {
            for s in 1..frames {
                let at = SimTime::from_millis(s * 25 + k as u64 * 7 + 10);
                w.proto_mut::<MacDriver<CsmaMac>>(node).push_send(
                    at,
                    Dst::Broadcast,
                    9,
                    vec![k as u8; 40],
                );
            }
        }
    }
    w.run_for(SimDuration::from_secs(25));
    let mut intra = 0usize;
    let mut expected = 0usize;
    for batch in &groups {
        intra += batch
            .iter()
            .map(|&n| {
                w.proto::<MacDriver<CsmaMac>>(n)
                    .delivered
                    .iter()
                    .filter(|d| batch.contains(&d.src))
                    .count()
            })
            .sum::<usize>();
        expected += batch.len() * (frames as usize - 1) * (batch.len() - 1);
    }
    (intra, expected)
}

/// E6: administrative scalability — intra-tenant delivery as the number
/// of co-located tenant networks grows, per channel plan.
///
/// Paper claim (§IV-C): co-located systems of different owners "will
/// likely compete for resources, notably wireless communication
/// channels".
pub fn e6_admin_scaling(rc: &RunConfig) -> Table {
    let plans = [
        ("shared", ChannelPlan::Shared { channel: 11 }),
        (
            "per-tenant",
            ChannelPlan::PerTenant {
                base: 11,
                num_channels: 16,
            },
        ),
        (
            "hopping",
            ChannelPlan::Hopping {
                base: 11,
                num_channels: 16,
            },
        ),
    ];
    let tenant_axis = [1usize, 2, 3, 4];

    // One trial per (tenant count, plan); the table regroups the flat
    // outcome list into one row per tenant count.
    let trials: Vec<Trial> = tenant_axis
        .iter()
        .flat_map(|&tenants| {
            plans.iter().map(move |&(name, plan)| {
                Trial::new(format!("e6/t{tenants}/{name}"), 0xE6, move |seed| {
                    let (got, want) = run_tenants(plan, tenants, seed);
                    vec![vec![Cell::pct(got as f64 / want.max(1) as f64)]]
                })
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E6: intra-tenant delivery vs co-located tenants (saturating broadcast load)",
        &[
            "tenants",
            "shared channel",
            "per-tenant channels",
            "hopping (16ch)",
        ],
    );
    for (i, tenants) in tenant_axis.iter().enumerate() {
        let base = i * plans.len();
        t.row(
            std::iter::once(tenants.to_string())
                .chain((0..plans.len()).map(|p| out[base + p].rows[0][0].clone()))
                .collect(),
        );
    }
    t
}
