//! Scalability experiments: E2 (latency vs. hops per MAC), E3 (border-
//! router funneling vs. in-network aggregation), E5 (size scaling,
//! centralized vs. decentralized) and E6 (administrative scalability).

use crate::table::{f1, f3, pct, Table};
use iiot_aggregate::tree::{AggConfig, AggregationNode, Mode};
use iiot_core::{Deployment, MacChoice};
use iiot_mac::coex::{ChannelPlan, TenantId};
use iiot_mac::csma::CsmaMac;
use iiot_mac::driver::MacDriver;
use iiot_routing::dodag::Traffic;
use iiot_routing::statictree::{StaticCollection, StaticConfig};
use iiot_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// E2: end-to-end collection latency by hop distance, per MAC.
///
/// Paper claim (§IV-B): with duty-cycled MACs "a packet may take
/// seconds to be transmitted over few wireless hops", while synchronous
/// coordination (TDMA) minimizes latency; always-on CSMA is the
/// baseline that buys latency with energy.
pub fn e2_latency_vs_hops() -> Table {
    let macs = [
        MacChoice::Csma,
        MacChoice::Lpl(SimDuration::from_millis(512)),
        MacChoice::Rimac(SimDuration::from_millis(512)),
        MacChoice::Tdma(SimDuration::from_millis(20)),
    ];
    let buckets = [2u32, 4, 8, 12];
    let mut per_mac: Vec<Vec<f64>> = Vec::new();
    let mut duty: Vec<f64> = Vec::new();

    for mac in macs {
        let mut d = Deployment::builder(Topology::line(13, 20.0))
            .mac(mac)
            .seed(0xE2)
            .traffic(SimDuration::from_secs(30), 10, SimDuration::from_secs(60))
            .build();
        d.run_for(SimDuration::from_secs(460));
        let lats = d.world.stats().samples("collect_latency_s").to_vec();
        let hops = d.world.stats().samples("collect_hops").to_vec();
        let mean_for = |h: u32| -> f64 {
            let vals: Vec<f64> = lats
                .iter()
                .zip(&hops)
                .filter(|(_, &hh)| hh as u32 == h)
                .map(|(&l, _)| l)
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        per_mac.push(buckets.iter().map(|&h| mean_for(h)).collect());
        duty.push(d.report().mean_duty_cycle);
    }

    let mut t = Table::new(
        "E2: mean collection latency (s) vs hop distance, per MAC",
        &["hops", "csma", "lpl-512ms", "rimac-512ms", "tdma-20ms"],
    );
    for (i, h) in buckets.iter().enumerate() {
        t.row(vec![
            h.to_string(),
            f3(per_mac[0][i]),
            f3(per_mac[1][i]),
            f3(per_mac[2][i]),
            f3(per_mac[3][i]),
        ]);
    }
    t.row(vec![
        "duty".into(),
        pct(duty[0]),
        pct(duty[1]),
        pct(duty[2]),
        pct(duty[3]),
    ]);
    t
}

fn run_agg(mode: Mode, epoch_ms: u32, rounds: u16, n: usize, seed: u64) -> World {
    let parents: Vec<Option<NodeId>> = (0..n)
        .map(|i| if i == 0 { None } else { Some(NodeId(i as u32 - 1)) })
        .collect();
    let mut wc = WorldConfig::default();
    wc.seed = seed;
    let mut w = World::new(wc);
    let cfg = AggConfig::new(parents, mode, epoch_ms, rounds);
    w.add_nodes(&Topology::line(n, 20.0), move |_| {
        Box::new(AggregationNode::new(CsmaMac::default(), cfg.clone())) as Box<dyn Proto>
    });
    let horizon = 2_000 + epoch_ms as u64 * (rounds as u64 + 2);
    w.run_for(SimDuration::from_millis(horizon));
    w
}

/// E3: per-node load vs. distance from the border router, raw
/// forwarding vs. in-network aggregation.
///
/// Paper claim (§IV-B): nodes near border routers carry a heavy load;
/// in-network aggregation alleviates it.
pub fn e3_funneling() -> Table {
    let n = 8;
    let rounds = 8u16;
    let wr = run_agg(Mode::Raw, 5_000, rounds, n, 0xE3);
    let wa = run_agg(Mode::Aggregate, 5_000, rounds, n, 0xE3);

    let mut t = Table::new(
        "E3: per-node transmissions and radio-tx time over 8 epochs (line of 8), raw vs aggregate",
        &["node (hops from root)", "raw msgs", "agg msgs", "raw tx ms", "agg tx ms"],
    );
    for i in 1..n {
        let id = NodeId(i as u32);
        let raw_msgs =
            wr.stats().get_node(id, "raw_tx");
        let agg_msgs = wa.stats().get_node(id, "agg_tx");
        let raw_tx_ms = wr.energy(id).tx.as_secs_f64() * 1e3;
        let agg_tx_ms = wa.energy(id).tx.as_secs_f64() * 1e3;
        t.row(vec![
            format!("n{i} ({i})"),
            f1(raw_msgs),
            f1(agg_msgs),
            f3(raw_tx_ms),
            f3(agg_tx_ms),
        ]);
    }
    t
}

/// E3 ablation: aggregation epoch length vs. root-adjacent load and
/// result freshness.
pub fn e3_epoch_ablation() -> Table {
    let mut t = Table::new(
        "E3-ablation: epoch length vs root-adjacent load (aggregate mode, line of 8, 60 s)",
        &["epoch (s)", "epochs run", "n1 msgs", "n1 tx ms"],
    );
    for epoch_s in [5u32, 10, 20] {
        let rounds = (60 / epoch_s) as u16;
        let w = run_agg(Mode::Aggregate, epoch_s * 1000, rounds, 8, 0xE3A);
        t.row(vec![
            epoch_s.to_string(),
            rounds.to_string(),
            f1(w.stats().get_node(NodeId(1), "agg_tx")),
            f3(w.energy(NodeId(1)).tx.as_secs_f64() * 1e3),
        ]);
    }
    t
}

/// E5: size scalability — delivery as the deployment grows, for the
/// decentralized DODAG vs. a "direct to the sink" centralized design.
///
/// Paper claim (§IV-A): systems must tolerate orders-of-magnitude
/// growth; scaling usually forces decentralized designs.
pub fn e5_size_scaling() -> Table {
    let mut t = Table::new(
        "E5: delivery vs deployment size (20 m grid), decentralized DODAG vs direct-to-sink",
        &[
            "nodes",
            "dodag delivery",
            "dodag lat p95 (s)",
            "dio/node/min",
            "direct delivery",
        ],
    );
    for side in [3usize, 5, 8, 12, 17] {
        let n = side * side;
        let secs = 400u64;
        // Decentralized: self-organizing DODAG over CSMA.
        let mut d = Deployment::builder(Topology::grid(side, side, 20.0))
            .mac(MacChoice::Csma)
            .seed(0xE5)
            .traffic(SimDuration::from_secs(30), 10, SimDuration::from_secs(60))
            .build();
        d.run_for(SimDuration::from_secs(secs));
        let r = d.report();
        let dio_rate = d.world.stats().node_total("dio_tx")
            / n as f64
            / (secs as f64 / 60.0);

        // Centralized: everyone unicasts straight to the sink.
        let mut wc = WorldConfig::default();
        wc.seed = 0xE5;
        let mut w = World::new(wc);
        let parents: Vec<Option<NodeId>> = (0..n)
            .map(|i| if i == 0 { None } else { Some(NodeId(0)) })
            .collect();
        let mut cfg = StaticConfig::new(parents);
        cfg.traffic = Some(Traffic {
            period: SimDuration::from_secs(30),
            payload_len: 10,
            start_after: SimDuration::from_secs(60),
        });
        let ids = w.add_nodes(&Topology::grid(side, side, 20.0), move |_| {
            Box::new(StaticCollection::new(CsmaMac::default(), cfg.clone())) as Box<dyn Proto>
        });
        w.run_for(SimDuration::from_secs(secs));
        let gen = w.stats().node_total("data_origin");
        let del = w.stats().get("data_rx_root");
        let _ = ids;

        t.row(vec![
            n.to_string(),
            pct(r.delivery_ratio),
            f3(r.latency.p95),
            f1(dio_rate),
            pct(if gen == 0.0 { 1.0 } else { del / gen }),
        ]);
    }
    t
}

/// E2 ablation: the LPL wake interval is the §IV-B energy/latency knob.
pub fn e2_wake_ablation() -> Table {
    let mut t = Table::new(
        "E2-ablation: LPL wake interval vs latency and duty cycle (7-node line, 300 s)",
        &["wake (ms)", "delivery", "mean latency (s)", "duty cycle"],
    );
    for wake_ms in [128u64, 256, 512, 1024] {
        let mut d = Deployment::builder(Topology::line(7, 20.0))
            .mac(MacChoice::Lpl(SimDuration::from_millis(wake_ms)))
            .seed(0xE2A)
            .traffic(SimDuration::from_secs(30), 10, SimDuration::from_secs(60))
            .build();
        d.run_for(SimDuration::from_secs(360));
        let r = d.report();
        t.row(vec![
            wake_ms.to_string(),
            pct(r.delivery_ratio),
            f3(r.latency.mean),
            pct(r.mean_duty_cycle),
        ]);
    }
    t
}

/// E11 ablation: the Trickle redundancy constant `k` trades control
/// overhead against repair responsiveness (DESIGN.md §3).
pub fn e11_trickle_ablation() -> Table {
    use iiot_routing::dodag::DodagConfig;
    let mut t = Table::new(
        "E11-ablation: trickle k vs control overhead and delivery under churn (5x5 grid, 400 s, MTBF 200 s)",
        &["k", "dio/node/min", "delivery", "parent switches"],
    );
    for k in [1u32, 3, 10] {
        let mut cfg = DodagConfig::default();
        cfg.trickle.k = k;
        let mut d = Deployment::builder(Topology::grid(5, 5, 20.0))
            .mac(MacChoice::Csma)
            .seed(0xE11A)
            .routing(cfg)
            .traffic(SimDuration::from_secs(20), 10, SimDuration::from_secs(40))
            .build();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(k as u64);
        let plan = iiot_dependability::FaultPlan::random_churn(
            &mut rng,
            &d.nodes[1..],
            SimDuration::from_secs(200),
            SimDuration::from_secs(20),
            SimTime::ZERO,
            SimTime::from_secs(350),
            &[],
        );
        plan.apply(&mut d.world);
        let secs = 400u64;
        d.run_for(SimDuration::from_secs(secs));
        let r = d.report();
        let dio_rate =
            d.world.stats().node_total("dio_tx") / 25.0 / (secs as f64 / 60.0);
        t.row(vec![
            k.to_string(),
            f1(dio_rate),
            pct(r.delivery_ratio),
            f1(d.world.stats().node_total("parent_switch")),
        ]);
    }
    t
}

/// Shared E6 engine: `tenants` co-located clusters under a channel
/// plan; returns (intra-tenant delivered, expected).
fn run_tenants(plan: ChannelPlan, tenants: usize, seed: u64) -> (usize, usize) {
    let per_tenant = 6usize;
    let frames = 600u64;
    let mut wc = WorldConfig::default();
    wc.seed = seed;
    let mut w = World::new(wc);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0E);
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for t in 0..tenants {
        let topo = Topology::clustered(1, per_tenant, 60.0, 60.0, 8.0, &mut rng);
        let batch: Vec<NodeId> = topo
            .iter()
            .map(|pos| w.add_node(pos, Box::new(MacDriver::new(CsmaMac::default()))))
            .collect();
        // Channel plan: re-tune every 1 s epoch (static plans are
        // constant; hopping changes channels).
        for &node in &batch {
            for epoch in 0..40u64 {
                let ch = plan.channel_for(TenantId(t as u16), epoch);
                w.schedule(
                    SimTime::from_millis(epoch * 1000 + 1),
                    move |w2| {
                        w2.with_ctx(node, |_p, ctx| {
                            let _ = ctx.set_channel(ch);
                        });
                    },
                );
            }
        }
        groups.push(batch);
    }
    for batch in &groups {
        for (k, &node) in batch.iter().enumerate() {
            for s in 1..frames {
                let at = SimTime::from_millis(s * 25 + k as u64 * 7 + 10);
                w.proto_mut::<MacDriver<CsmaMac>>(node).push_send(
                    at,
                    Dst::Broadcast,
                    9,
                    vec![k as u8; 40],
                );
            }
        }
    }
    w.run_for(SimDuration::from_secs(25));
    let mut intra = 0usize;
    let mut expected = 0usize;
    for batch in &groups {
        intra += batch
            .iter()
            .map(|&n| {
                w.proto::<MacDriver<CsmaMac>>(n)
                    .delivered
                    .iter()
                    .filter(|d| batch.contains(&d.src))
                    .count()
            })
            .sum::<usize>();
        expected += batch.len() * (frames as usize - 1) * (batch.len() - 1);
    }
    (intra, expected)
}

/// E6: administrative scalability — intra-tenant delivery as the number
/// of co-located tenant networks grows, per channel plan.
///
/// Paper claim (§IV-C): co-located systems of different owners "will
/// likely compete for resources, notably wireless communication
/// channels".
pub fn e6_admin_scaling() -> Table {
    let mut t = Table::new(
        "E6: intra-tenant delivery vs co-located tenants (saturating broadcast load)",
        &["tenants", "shared channel", "per-tenant channels", "hopping (16ch)"],
    );
    for tenants in [1usize, 2, 3, 4] {
        let shared = run_tenants(ChannelPlan::Shared { channel: 11 }, tenants, 0xE6);
        let dedic = run_tenants(
            ChannelPlan::PerTenant {
                base: 11,
                num_channels: 16,
            },
            tenants,
            0xE6,
        );
        let hop = run_tenants(
            ChannelPlan::Hopping {
                base: 11,
                num_channels: 16,
            },
            tenants,
            0xE6,
        );
        let p = |(got, want): (usize, usize)| pct(got as f64 / want.max(1) as f64);
        t.row(vec![
            tenants.to_string(),
            p(shared),
            p(dedic),
            p(hop),
        ]);
    }
    t
}
