//! Time-synchronization experiments: E13 prices TDMA's standing
//! assumption that "time synchronization is assumed".
//!
//! §IV-B of the paper credits synchronous TDMA pipelines with
//! millisecond end-to-end latency at minimal duty cycle — a claim that
//! silently rides on network-wide time agreement. E13 takes the
//! assumption apart on drifting oscillators ([`ClockModel::drifting`]):
//!
//! * **drift sweep** — delivery of an 8-node TDMA collection line as
//!   oscillator tolerance grows, free-running vs FTSP-synced
//!   (`iiot-timesync` beacons in a dedicated sync slot), including the
//!   beacon duty tax the synced arm pays;
//! * **sync error vs hop distance** — FTSP's classic multi-hop result,
//!   on a standalone beacon flood with per-hop regression re-anchoring;
//! * **guard ablation** — with deliberately weakened sync (offset-only,
//!   sparse resync), the slot guard time is what absorbs the residual
//!   error; sweeping it exposes the delivery/energy trade.
//!
//! Each configuration point is one [`Trial`] on the worker pool;
//! tables are byte-identical for any `--jobs`.

use crate::runner::{Cell, Trial};
use crate::table::Table;
use crate::RunConfig;
use iiot_mac::tdma::{TdmaConfig, TdmaMac, TdmaSchedule, TdmaSync};
use iiot_routing::dodag::Traffic;
use iiot_routing::statictree::{StaticCollection, StaticConfig};
use iiot_sim::prelude::*;
use iiot_timesync::{FtspConfig, FtspNode};

/// How the TDMA arm under test maps its oscillator onto the schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SyncMode {
    /// Free-running local clocks, no synchronization (the strawman).
    Unsynced,
    /// FTSP beacons in the sync slot; `window` is the regression window
    /// and `every` the beaconing frame stride.
    Ftsp { window: usize, every: u32 },
}

/// Metrics of one TDMA collection run under drifting clocks.
struct TdmaRun {
    delivery: f64,
    violations: f64,
    beacons: f64,
    duty: f64,
}

/// An `n`-node TDMA collection line (10 m spacing, 20 ms slots, one
/// sync slot, 8 idle slots) under `ppm` oscillators, run for `secs`.
fn tdma_line_run(
    n: usize,
    ppm: f64,
    guard: SimDuration,
    mode: SyncMode,
    seed: u64,
    secs: u64,
) -> TdmaRun {
    let parents: Vec<Option<NodeId>> = (0..n)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some(NodeId(i as u32 - 1))
            }
        })
        .collect();
    let sched = TdmaSchedule::pipeline_to_root(&parents, SimDuration::from_millis(20))
        .with_sync_slots(1)
        .with_idle(8)
        .with_guard(guard);
    let mut cfg = StaticConfig::new(parents);
    cfg.traffic = Some(Traffic {
        period: SimDuration::from_secs(4),
        payload_len: 10,
        start_after: SimDuration::from_secs(30),
    });
    let mut w = SimBuilder::new()
        .seed(seed)
        .clock(ClockModel::drifting(ppm))
        .nodes(Topology::line(n, 10.0), move |_| {
            let mac = TdmaMac::new(TdmaConfig::default(), sched.clone());
            let mac = match mode {
                SyncMode::Unsynced => mac.with_local_clock(),
                // 2 ms stride: beacon airtime is ~1.2 ms, so cascading
                // re-floods need headroom for estimate error between
                // adjacent depths or they collide in the sync slot.
                SyncMode::Ftsp { window, every } => mac.with_sync(TdmaSync {
                    ftsp: FtspConfig::default()
                        .with_reference(NodeId(0))
                        .with_window(window),
                    every,
                    stride: SimDuration::from_micros(2000),
                }),
            };
            Box::new(StaticCollection::new(mac, cfg.clone())) as Box<dyn Proto>
        })
        .build();
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    w.run_for(SimDuration::from_secs(secs));
    let gen = w.stats().node_total("data_origin");
    let del = w.stats().get("data_rx_root");
    let duty = ids.iter().map(|&id| w.energy(id).duty_cycle()).sum::<f64>() / n as f64;
    TdmaRun {
        delivery: if gen == 0.0 { 1.0 } else { del / gen },
        violations: w.stats().node_total("tdma_guard_violation"),
        beacons: w.stats().get("ftsp_tx"),
        duty,
    }
}

/// E13 drift sweep over an explicit ppm axis, `secs` of simulated time
/// per point (test-sized variants use a short axis).
pub fn e13_drift_sweep_with(rc: &RunConfig, ppms: &[u32], secs: u64) -> Table {
    let trials: Vec<Trial> = ppms
        .iter()
        .flat_map(|&ppm| {
            [
                ("unsynced", SyncMode::Unsynced),
                (
                    "ftsp",
                    SyncMode::Ftsp {
                        window: 8,
                        every: 1,
                    },
                ),
            ]
            .into_iter()
            .map(move |(name, mode)| {
                Trial::new(format!("e13/{name}/{ppm}ppm"), 0xE13, move |seed| {
                    let r =
                        tdma_line_run(8, ppm as f64, SimDuration::from_millis(1), mode, seed, secs);
                    vec![vec![
                        Cell::label(ppm.to_string()),
                        Cell::label(name),
                        Cell::pct(r.delivery),
                        Cell::int(r.violations),
                        Cell::int(r.beacons),
                        Cell::pct(r.duty),
                    ]]
                })
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E13: TDMA collection under oscillator drift (8-node line, 20 ms slots, 1 ms guard), free-running vs FTSP-synced",
        &["drift (ppm)", "clock", "delivery", "guard violations", "sync beacons", "duty cycle"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E13 drift sweep: delivery collapses for free-running clocks as ppm
/// grows; the FTSP arm holds near the ppm=0 baseline for a measurable
/// beacon duty tax.
pub fn e13_drift_sweep(rc: &RunConfig) -> Table {
    e13_drift_sweep_with(rc, &[0, 10, 50, 100, 200], 240)
}

/// E13 sync error vs hop distance on a standalone FTSP flood (no MAC):
/// `n` nodes in a line spaced one radio hop apart, 50 ppm oscillators,
/// dynamic reference election, `secs` of simulated time.
pub fn e13_sync_error_with(rc: &RunConfig, n: usize, secs: u64) -> Table {
    let trials = vec![Trial::new("e13/hops", 0xE13, move |seed| {
        let cfg = FtspConfig::default().with_period(SimDuration::from_secs(2));
        let mut w = SimBuilder::new()
            .seed(seed)
            .clock(ClockModel::drifting(50.0))
            .nodes(Topology::line(n, 25.0), move |_| {
                Box::new(FtspNode::new(cfg.clone())) as Box<dyn Proto>
            })
            .build();
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        // Settle, then time-average |error| over the tail: a single
        // snapshot is dominated by where each node sits in its
        // beacon/regression cycle.
        let settle = secs * 4 / 5;
        w.run_for(SimDuration::from_secs(settle));
        let mut err_sum = vec![0.0f64; n];
        let mut samples = 0u32;
        for _ in settle..secs {
            w.run_for(SimDuration::from_secs(1));
            samples += 1;
            let root_local = w.local_time_of(ids[0]);
            for (i, &id) in ids.iter().enumerate().skip(1) {
                let local = w.local_time_of(id);
                let est = w.proto::<FtspNode>(id).clock().global(local);
                let err = est.as_micros() as i64 - root_local.as_micros() as i64;
                err_sum[i] += err.unsigned_abs() as f64;
            }
        }
        ids.iter()
            .enumerate()
            .skip(1)
            .map(|(hops, &id)| {
                let depth = w.proto::<FtspNode>(id).engine().depth() as f64;
                vec![
                    Cell::label(hops.to_string()),
                    Cell::int(depth),
                    Cell::f1(err_sum[hops] / samples.max(1) as f64),
                ]
            })
            .collect()
    })];
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E13: FTSP sync error vs hop distance (line, one hop per link, 50 ppm, 2 s beacons, elected reference)",
        &["hops from reference", "depth", "mean sync error (us)"],
    );
    for row in &out[0].rows {
        t.row(row.clone());
    }
    t
}

/// E13 sync error vs hop distance: 12 hops, 300 s.
pub fn e13_sync_error(rc: &RunConfig) -> Table {
    e13_sync_error_with(rc, 13, 300)
}

/// E13 guard ablation over an explicit guard axis (µs), with sync
/// deliberately weakened to offset-only estimation (window 1) and
/// sparse resync (every 8 frames) at 200 ppm, so a residual error of
/// up to ~1 ms accrues between beacons for the guard to absorb.
pub fn e13_guard_ablation_with(rc: &RunConfig, guards_us: &[u64], secs: u64) -> Table {
    let trials: Vec<Trial> = guards_us
        .iter()
        .map(|&g| {
            Trial::new(format!("e13/guard/{g}us"), 0xE13, move |seed| {
                let r = tdma_line_run(
                    8,
                    200.0,
                    SimDuration::from_micros(g),
                    SyncMode::Ftsp {
                        window: 1,
                        every: 8,
                    },
                    seed,
                    secs,
                );
                vec![vec![
                    Cell::label(g.to_string()),
                    Cell::pct(r.delivery),
                    Cell::int(r.violations),
                    Cell::pct(r.duty),
                ]]
            })
        })
        .collect();
    let out = rc.runner.run(trials, rc.trials);

    let mut t = Table::new(
        "E13-ablation: guard time vs delivery under weakened sync (offset-only, resync every 8 frames, 200 ppm)",
        &["guard (us)", "delivery", "guard violations", "duty cycle"],
    );
    for o in &out {
        t.row(o.rows[0].clone());
    }
    t
}

/// E13 guard ablation: the production axis.
pub fn e13_guard_ablation(rc: &RunConfig) -> Table {
    e13_guard_ablation_with(rc, &[0, 100, 500, 1000, 4000], 240)
}
