//! The runner's core contract: tables are byte-identical for any
//! worker count, and replica seeds are stable, distinct splits of the
//! trial seed.

use iiot_bench::exp_scale::e5_size_scaling_with;
use iiot_bench::{RunConfig, Runner};
use iiot_sim::seed;

/// A small E5 sweep must produce byte-identical tables at `--jobs 1`
/// and `--jobs 4` (and its JSON dumps too).
#[test]
fn e5_jobs1_and_jobs4_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        e5_size_scaling_with(&rc, &[2, 3], 60)
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq, par);
    assert_eq!(seq.to_json(), par.to_json());
    assert_eq!(seq.rows().len(), 2);
}

/// Replication must also be scheduling-independent: aggregated
/// `mean (p95 x)` cells match between worker counts.
#[test]
fn e5_replicated_tables_are_identical_across_jobs() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 3,
        };
        e5_size_scaling_with(&rc, &[2], 40)
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq, par);
    assert!(
        seq.rows()[0].iter().any(|c| c.contains("(p95 ")),
        "replicated numeric cells must aggregate: {:?}",
        seq.rows()
    );
}

/// E13's tables — whose trials themselves step worlds mid-run to
/// sample sync error — must also be byte-identical at `--jobs 1` and
/// `--jobs 2`.
#[test]
fn e13_jobs1_and_jobs2_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        (
            iiot_bench::exp_sync::e13_drift_sweep_with(&rc, &[0, 300], 60),
            iiot_bench::exp_sync::e13_sync_error_with(&rc, 4, 60),
            iiot_bench::exp_sync::e13_guard_ablation_with(&rc, &[0, 2000], 60),
        )
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq, par);
    assert_eq!(seq.0.to_json(), par.0.to_json());
    assert_eq!(seq.1.to_json(), par.1.to_json());
    assert_eq!(seq.2.to_json(), par.2.to_json());
}

/// E14's tables — whose trials interleave world stepping with oracle
/// sampling (mid-campaign flash inspection, rollout polling) — must be
/// byte-identical at `--jobs 1` and `--jobs 2`.
#[test]
fn e14_jobs1_and_jobs2_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        (
            iiot_bench::exp_dissem::e14_completion_with(&rc, &[3], 600),
            iiot_bench::exp_dissem::e14_resume_with(&rc, 3, 4800, 3, 240),
            iiot_bench::exp_dissem::e14_rollout_with(&rc, 3, 240),
        )
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq, par);
    assert_eq!(seq.0.to_json(), par.0.to_json());
    assert_eq!(seq.1.to_json(), par.1.to_json());
    assert_eq!(seq.2.to_json(), par.2.to_json());
}

/// Distinct trials (streams) get distinct seeds, and derivation is a
/// pure function — stable across calls and processes.
#[test]
fn trial_seeds_are_distinct_and_stable() {
    let master = 0xE5;
    let seeds: Vec<u64> = (0..64).map(|s| seed::derive(master, s)).collect();
    let mut uniq = seeds.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), seeds.len(), "stream seeds collide");
    assert_eq!(seeds, (0..64).map(|s| seed::derive(master, s)).collect::<Vec<_>>());

    // Replica splits keep the base seed for replica 0, so `--trials 1`
    // reproduces the sequential single-run tables exactly.
    let reps = seed::replica_seeds(master, 4);
    assert_eq!(reps[0], master);
    let mut uniq = reps.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), 4);
}
