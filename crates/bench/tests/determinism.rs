//! The runner's core contract: tables are byte-identical for any
//! worker count, and replica seeds are stable, distinct splits of the
//! trial seed.

use iiot_bench::exp_scale::e5_size_scaling_with;
use iiot_bench::{RunConfig, Runner};
use iiot_sim::seed;

/// A small E5 sweep must produce byte-identical tables at `--jobs 1`
/// and `--jobs 4` (and its JSON dumps too).
#[test]
fn e5_jobs1_and_jobs4_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        e5_size_scaling_with(&rc, &[2, 3], 60)
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq, par);
    assert_eq!(seq.to_json(), par.to_json());
    assert_eq!(seq.rows().len(), 2);
}

/// Replication must also be scheduling-independent: aggregated
/// `mean (p95 x)` cells match between worker counts.
#[test]
fn e5_replicated_tables_are_identical_across_jobs() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 3,
        };
        e5_size_scaling_with(&rc, &[2], 40)
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq, par);
    assert!(
        seq.rows()[0].iter().any(|c| c.contains("(p95 ")),
        "replicated numeric cells must aggregate: {:?}",
        seq.rows()
    );
}

/// E13's tables — whose trials themselves step worlds mid-run to
/// sample sync error — must also be byte-identical at `--jobs 1` and
/// `--jobs 2`.
#[test]
fn e13_jobs1_and_jobs2_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        (
            iiot_bench::exp_sync::e13_drift_sweep_with(&rc, &[0, 300], 60),
            iiot_bench::exp_sync::e13_sync_error_with(&rc, 4, 60),
            iiot_bench::exp_sync::e13_guard_ablation_with(&rc, &[0, 2000], 60),
        )
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq, par);
    assert_eq!(seq.0.to_json(), par.0.to_json());
    assert_eq!(seq.1.to_json(), par.1.to_json());
    assert_eq!(seq.2.to_json(), par.2.to_json());
}

/// E14's tables — whose trials interleave world stepping with oracle
/// sampling (mid-campaign flash inspection, rollout polling) — must be
/// byte-identical at `--jobs 1` and `--jobs 2`.
#[test]
fn e14_jobs1_and_jobs2_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        (
            iiot_bench::exp_dissem::e14_completion_with(&rc, &[3], 600),
            iiot_bench::exp_dissem::e14_resume_with(&rc, 3, 4800, 3, 240),
            iiot_bench::exp_dissem::e14_rollout_with(&rc, 3, 240),
        )
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq, par);
    assert_eq!(seq.0.to_json(), par.0.to_json());
    assert_eq!(seq.1.to_json(), par.1.to_json());
    assert_eq!(seq.2.to_json(), par.2.to_json());
}

/// E15's tables — whose trials run duty-cycled LPL stars with
/// per-node RNG poll jitter and read energy/cache/verify counters
/// back through in-trial asserts — must be byte-identical at
/// `--jobs 1` and `--jobs 2`, tables and JSON both.
#[test]
fn e15_jobs1_and_jobs2_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        (
            iiot_bench::exp_icn::e15_arch_with(&rc, &[1, 4], 30),
            iiot_bench::exp_icn::e15_cache_with(&rc, &[8], 4, 32),
            iiot_bench::exp_icn::e15_poison(&rc),
            iiot_bench::exp_icn::e15_partition_with(&rc, 2, 10, 20, 30),
        )
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq, par);
    assert_eq!(seq.0.to_json(), par.0.to_json());
    assert_eq!(seq.1.to_json(), par.1.to_json());
    assert_eq!(seq.2.to_json(), par.2.to_json());
    assert_eq!(seq.3.to_json(), par.3.to_json());
}

/// E16's tables — whose trials run the cloud pipeline's threaded
/// per-shard drain *inside* runner worker threads — must be
/// byte-identical at `--jobs 1` and `--jobs 2`, tables and JSON both.
#[test]
fn e16_jobs1_and_jobs2_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        (
            iiot_bench::exp_cloud::e16_ingest_with(&rc, &[50, 150]),
            iiot_bench::exp_cloud::e16_fairness_with(&rc, &[1, 16], 150),
            iiot_bench::exp_cloud::e16_overload_with(&rc, &[0.5, 2.0], 250),
            iiot_bench::exp_cloud::e16_bridge(&rc),
        )
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq, par);
    assert_eq!(seq.0.to_json(), par.0.to_json());
    assert_eq!(seq.1.to_json(), par.1.to_json());
    assert_eq!(seq.2.to_json(), par.2.to_json());
    assert_eq!(seq.3.to_json(), par.3.to_json());
}

/// E18's tables — whose trials append to in-memory event logs, replay
/// them through fresh pipelines, and close event-time windows — must be
/// byte-identical at `--jobs 1` and `--jobs 2`, tables and JSON both.
/// The replay and recovery arms assert byte-identity *inside* the
/// trial, so this doubles as a crash-recovery determinism gate.
#[test]
fn e18_jobs1_and_jobs2_tables_are_identical() {
    let run = |jobs: usize| {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        (
            iiot_bench::exp_stream::e18_tax_with(&rc, &[250]),
            iiot_bench::exp_stream::e18_replay_with(&rc, 125),
            iiot_bench::exp_stream::e18_recovery_with(&rc, 100),
            iiot_bench::exp_stream::e18_admission_with(&rc, &[16], 500),
            iiot_bench::exp_stream::e18_windows(&rc),
        )
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq, par);
    assert_eq!(seq.0.to_json(), par.0.to_json());
    assert_eq!(seq.1.to_json(), par.1.to_json());
    assert_eq!(seq.2.to_json(), par.2.to_json());
    assert_eq!(seq.3.to_json(), par.3.to_json());
    assert_eq!(seq.4.to_json(), par.4.to_json());
}

/// Pinned pre-optimization goldens: these exact bytes were captured
/// from the exhaustive-scan, linear-lookup radio medium before the
/// spatial index / slab / buffer-reuse rework. The reworked kernel
/// must reproduce them bit for bit, at any worker count — the rework
/// is an optimization, not a behaviour change.
#[test]
fn e2_e5_e14_tables_match_pre_optimization_goldens() {
    const GOLDEN_E2: &str = "\
== E2: mean collection latency (s) vs hop distance, per MAC ==
hops |   csma | lpl-512ms | rimac-512ms | tdma-20ms
-----+--------+-----------+-------------+----------
   2 |  0.006 |     4.451 |       0.921 |     0.701
   4 |  0.013 |    12.255 |       1.841 |     0.371
   8 |  0.026 |     7.519 |       2.268 |     0.324
  12 |  0.037 |     9.146 |       3.859 |     0.950
duty | 100.0% |     29.3% |       16.2% |      4.0%
";
    const GOLDEN_E5: &str = "\
== E5: delivery vs deployment size (20 m grid), decentralized DODAG vs direct-to-sink ==
nodes | dodag delivery | dodag lat p95 (s) | dio/node/min | direct delivery
------+----------------+-------------------+--------------+----------------
    4 |         100.0% |             0.000 |          5.2 |          100.0%
    9 |         100.0% |             0.000 |          5.1 |          100.0%
";
    const GOLDEN_E14: &str = "\
== E14: image dissemination vs network size (960 B image, 3 pages, 20 m grid), CSMA vs LPL vs TDMA tree schedule ==
nodes |  mac | completion (s) | coverage | energy (mJ/node) | data tx
------+------+----------------+----------+------------------+--------
    9 | csma |            2.1 |   100.0% |            281.9 |      80
    9 |  lpl |          199.7 |   100.0% |           4467.8 |     465
    9 | tdma |           14.6 |   100.0% |            187.8 |     448
";
    for jobs in [1, 2] {
        let rc = RunConfig {
            runner: Runner::new(jobs),
            trials: 1,
        };
        let e2 = iiot_bench::exp_scale::e2_latency_vs_hops_with(&rc, 160);
        let e5 = e5_size_scaling_with(&rc, &[2, 3], 60);
        let e14 = iiot_bench::exp_dissem::e14_completion_with(&rc, &[3], 600);
        assert_eq!(format!("{e2}"), GOLDEN_E2, "E2 drifted at jobs={jobs}");
        assert_eq!(format!("{e5}"), GOLDEN_E5, "E5 drifted at jobs={jobs}");
        assert_eq!(format!("{e14}"), GOLDEN_E14, "E14 drifted at jobs={jobs}");
    }
}

/// Distinct trials (streams) get distinct seeds, and derivation is a
/// pure function — stable across calls and processes.
#[test]
fn trial_seeds_are_distinct_and_stable() {
    let master = 0xE5;
    let seeds: Vec<u64> = (0..64).map(|s| seed::derive(master, s)).collect();
    let mut uniq = seeds.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), seeds.len(), "stream seeds collide");
    assert_eq!(
        seeds,
        (0..64).map(|s| seed::derive(master, s)).collect::<Vec<_>>()
    );

    // Replica splits keep the base seed for replica 0, so `--trials 1`
    // reproduces the sequential single-run tables exactly.
    let reps = seed::replica_seeds(master, 4);
    assert_eq!(reps[0], master);
    let mut uniq = reps.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), 4);
}

/// One sharded broadcast workload run as a trial metric: 16 CSMA nodes
/// on a grid, everyone broadcasting, fingerprinted by dispatched events
/// and medium stats.
fn sharded_metric(shards: usize, seed: u64) -> (u64, String) {
    use iiot_mac::csma::CsmaMac;
    use iiot_mac::driver::MacDriver;
    use iiot_sim::prelude::*;
    let side = 4usize;
    let mut sim = SimBuilder::new()
        .seed(seed)
        .nodes(Topology::grid(side, side, 20.0), |_| {
            Box::new(MacDriver::new(CsmaMac::default())) as Box<dyn Proto>
        })
        .shards(shards)
        .build();
    for k in 0..(side * side) as u64 {
        let d = sim.proto_mut::<MacDriver<CsmaMac>>(NodeId(k as u32));
        for s in 0..8u64 {
            d.push_send(
                SimTime::from_millis(s * 250 + k % 250),
                Dst::Broadcast,
                1,
                vec![0xAA; 16],
            );
        }
    }
    sim.run(SimDuration::from_secs(2));
    (sim.events_dispatched(), format!("{:?}", sim.medium_stats()))
}

/// The `--jobs` x `--shards` cross-product: every shard count is its
/// own deterministic model, so each (shard count) row must be
/// byte-identical whether the trials ran on 1 worker or 2 — including
/// the threaded sharded engine nested inside runner worker threads.
#[test]
fn shards_jobs_cross_product_is_deterministic() {
    use iiot_bench::{Cell, Trial};
    let run = |jobs: usize| {
        let trials: Vec<Trial> = [1usize, 2, 4]
            .into_iter()
            .map(|k| {
                Trial::new(format!("shards{k}"), 0x5EED + k as u64, move |seed| {
                    let (ev, medium) = sharded_metric(k, seed);
                    vec![vec![
                        Cell::label(k.to_string()),
                        Cell::int(ev as f64),
                        Cell::label(medium),
                    ]]
                })
            })
            .collect();
        Runner::new(jobs).run(trials, 1)
    };
    let seq = run(1);
    let par = run(2);
    assert_eq!(seq.len(), 3);
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.rows, b.rows, "{} differs between --jobs 1 and 2", a.label);
        assert!(a.rows[0][1] != "0", "workload dispatched no events");
    }
}
