//! Shape regression tests: the qualitative claims EXPERIMENTS.md makes
//! about each table — who wins, which way curves bend, where crossovers
//! fall — asserted programmatically so a protocol regression cannot
//! silently invert a paper claim. Only the fast experiments run here;
//! the slow sweeps (E2, E4) are covered by their substrates' own tests,
//! and E13 runs reduced axes of the same sweeps.

use iiot_bench::{exp_cloud, exp_depend, exp_dissem, exp_interop, exp_scale, exp_sync, RunConfig};

fn cell(t: &iiot_bench::table::Table, row: usize, col: usize) -> f64 {
    t.rows[row][col]
        .trim_end_matches('%')
        .trim_start_matches('+')
        .parse()
        .unwrap_or_else(|_| panic!("cell ({row},{col}) = {:?} not numeric", t.rows[row][col]))
}

#[test]
fn e3_shape_aggregation_flattens_the_funnel() {
    let t = exp_scale::e3_funneling(&RunConfig::default());
    // Raw messages decrease with distance from the root (funnel),
    // aggregate messages are flat.
    let raw_n1 = cell(&t, 0, 1);
    let raw_n7 = cell(&t, 6, 1);
    assert!(raw_n1 >= 6.0 * raw_n7, "funnel: {raw_n1} vs {raw_n7}");
    for r in 0..t.rows.len() {
        assert_eq!(cell(&t, r, 2), cell(&t, 0, 2), "aggregate load is flat");
    }
    // Radio-TX time tells the same story.
    assert!(cell(&t, 0, 3) > 4.0 * cell(&t, 0, 4));
}

#[test]
fn e3_shape_epoch_is_the_load_knob() {
    let t = exp_scale::e3_epoch_ablation(&RunConfig::default());
    // Longer epochs, fewer root-adjacent messages.
    assert!(cell(&t, 0, 2) > cell(&t, 1, 2));
    assert!(cell(&t, 1, 2) > cell(&t, 2, 2));
}

#[test]
fn e7_shape_cap_trade() {
    let t = exp_depend::e7_partition(&RunConfig::default());
    // Rows alternate Ap/Cp for growing partition lengths.
    for pair in t.rows.chunks(2) {
        let (ap, cp) = (&pair[0], &pair[1]);
        let ap_avail: f64 = ap[2].trim_end_matches('%').parse().expect("num");
        let cp_avail: f64 = cp[2].trim_end_matches('%').parse().expect("num");
        assert_eq!(ap_avail, 100.0, "AP is always available");
        assert!(cp_avail <= ap_avail);
        assert_ne!(ap[5], "never", "AP converges after heal");
        assert_ne!(cp[5], "never", "CP converges after heal");
    }
    // CP availability strictly falls with partition length.
    let cp_avails: Vec<f64> = t
        .rows
        .iter()
        .filter(|r| r[1] == "Cp")
        .map(|r| r[2].trim_end_matches('%').parse().expect("num"))
        .collect();
    assert!(cp_avails.windows(2).all(|w| w[1] <= w[0]));
    assert!(cp_avails.last() < cp_avails.first());
}

#[test]
fn e7_shape_delta_scaling() {
    let t = exp_depend::e7_delta_ablation();
    // Delta cost is constant; full-state cost grows with replicas.
    for r in 0..t.rows.len() {
        assert_eq!(cell(&t, r, 2), 18.0);
    }
    assert!(cell(&t, 3, 1) > 50.0 * cell(&t, 0, 2));
}

#[test]
fn e8_shape_redundancy_crossovers() {
    let t = exp_depend::e8_redundancy(&RunConfig::default());
    for r in 0..t.rows.len() {
        // Monte Carlo within 3 points of the analytic model, per scheme.
        assert!(
            (cell(&t, r, 2) - cell(&t, r, 3)).abs() < 3.0,
            "parity row {r}"
        );
        assert!(
            (cell(&t, r, 4) - cell(&t, r, 5)).abs() < 3.0,
            "retry row {r}"
        );
        assert!(
            (cell(&t, r, 6) - cell(&t, r, 7)).abs() < 3.0,
            "vote row {r}"
        );
        // Time redundancy dominates everything at every loss level.
        assert!(cell(&t, r, 4) >= cell(&t, r, 1));
    }
    // Parity beats no-protection at low loss and loses at high loss
    // (the §V-A "information redundancy is limited" crossover).
    assert!(cell(&t, 0, 2) > cell(&t, 0, 1), "parity wins at p=0.05");
    let last = t.rows.len() - 1;
    assert!(
        cell(&t, last, 2) < cell(&t, last, 1),
        "parity loses at p=0.5"
    );
}

#[test]
fn e9_shape_pareto_frontier() {
    let t = exp_depend::e9_safety_hvac();
    for w in (0..t.rows.len()).collect::<Vec<_>>().windows(2) {
        let (a, b) = (w[0], w[1]);
        assert!(
            cell(&t, b, 1) < cell(&t, a, 1),
            "wider setback saves energy"
        );
        assert!(
            cell(&t, b, 2) >= cell(&t, a, 2),
            "savings cost (non-negative) comfort"
        );
        assert_eq!(cell(&t, a, 3), 0.0, "hard limits never violated");
    }
}

#[test]
fn e10_shape_monotone_cost_ladder() {
    let t = exp_interop::e10_security_overhead();
    let col_monotone_within = |col: usize, groups: &[&[usize]]| {
        for g in groups {
            for w in g.windows(2) {
                assert!(
                    cell(&t, w[1], col) >= cell(&t, w[0], col),
                    "col {col}: row {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    };
    // Rows: None, Mic32, Mic64, Mic128, Enc, EncMic32, EncMic64, EncMic128.
    // Bytes/airtime/energy grow within the MIC ladder and the ENC ladder.
    for col in [1usize, 2, 3, 5] {
        col_monotone_within(col, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
    }
    // Goodput falls within each ladder.
    for g in [&[0usize, 1, 2, 3][..], &[4, 5, 6, 7][..]] {
        for w in g.windows(2) {
            assert!(cell(&t, w[1], 6) <= cell(&t, w[0], 6));
        }
    }
    // Encryption adds cost over the matching MIC-only level.
    assert!(cell(&t, 5, 3) > cell(&t, 1, 3));
    assert!(cell(&t, 7, 3) > cell(&t, 3, 3));
}

#[test]
fn e12_shape_integration_fidelity() {
    let t = exp_interop::e12_interop();
    assert_eq!(t.rows[0][1], "3/3", "every protocol translates exactly");
    let throughput: f64 = t.rows[1][1].parse().expect("num");
    assert!(throughput > 10_000.0, "bridge throughput {throughput}/s");
    assert_eq!(t.rows[3][1], "2.05 Content");
}

#[test]
fn e13_shape_unsynced_collapses_ftsp_holds() {
    // Reduced drift sweep: free-running TDMA collapses under drift,
    // the FTSP arm stays near the perfect-clock baseline and pays a
    // visible beacon duty tax (the three-regime claim of §IV-B).
    let t = exp_sync::e13_drift_sweep_with(&RunConfig::default(), &[0, 300], 90);
    // Rows: (0, unsynced), (0, ftsp), (300, unsynced), (300, ftsp).
    // The tail of the run leaves a frame or two in flight, so the
    // ideal-clock baseline sits just under 100%.
    let base = cell(&t, 0, 2);
    assert!(base > 95.0, "ideal clocks deliver everything: {base}");
    let unsynced = cell(&t, 2, 2);
    assert!(
        unsynced < base / 2.0,
        "free-running clocks must collapse: {unsynced} vs {base}"
    );
    let ftsp = cell(&t, 3, 2);
    assert!(
        ftsp > base - 5.0,
        "FTSP must hold near the baseline: {ftsp} vs {base}"
    );
    assert!(cell(&t, 3, 4) > 0.0, "the synced arm sends beacons");
    assert!(
        cell(&t, 3, 5) > cell(&t, 2, 5),
        "sync costs duty cycle over free-running"
    );
}

#[test]
fn e13_shape_sync_error_grows_with_hops() {
    let t = exp_sync::e13_sync_error_with(&RunConfig::default(), 6, 120);
    // Depth mirrors hop distance on a one-hop-per-link line.
    for r in 0..t.rows.len() {
        assert_eq!(cell(&t, r, 1), (r + 1) as f64, "depth == hops");
        assert!(cell(&t, r, 2) < 1000.0, "hop {} out of sync", r + 1);
    }
    let first = cell(&t, 0, 2);
    let last = cell(&t, t.rows.len() - 1, 2);
    assert!(last > first, "error accumulates per hop: {first} -> {last}");
}

#[test]
fn e13_shape_guard_buys_back_delivery() {
    // Weakened sync + no guard loses frames; a generous guard absorbs
    // the residual error.
    let t = exp_sync::e13_guard_ablation_with(&RunConfig::default(), &[0, 2000], 90);
    assert!(
        cell(&t, 1, 1) > cell(&t, 0, 1) + 20.0,
        "guard must buy delivery: {} -> {}",
        cell(&t, 0, 1),
        cell(&t, 1, 1)
    );
    assert!(
        cell(&t, 1, 3) > cell(&t, 0, 3),
        "a wider guard costs listen duty"
    );
}

#[test]
fn e11_shape_diagnosis_finds_the_victim() {
    let t = exp_depend::e11_diagnosis();
    assert_eq!(t.rows.len(), 1, "exactly one non-healthy finding");
    assert_eq!(t.rows[0][0], "n7");
}

#[test]
fn e14_shape_dissemination_covers_everyone() {
    let t = exp_dissem::e14_completion_with(&RunConfig::default(), &[3], 900);
    // Rows: csma, lpl, tdma on a 3x3 grid; every arm reaches the
    // whole fleet within the cap.
    assert_eq!(t.rows.len(), 3);
    for r in 0..t.rows.len() {
        assert_eq!(cell(&t, r, 3), 100.0, "coverage in row {r}");
        assert!(cell(&t, r, 5) > 0.0, "no chunks moved in row {r}");
    }
    // An always-on CSMA radio completes fastest; LPL trades latency
    // for idle energy.
    assert!(cell(&t, 0, 2) < cell(&t, 1, 2), "csma beats lpl on latency");
}

#[test]
fn e14_shape_flash_resume_beats_reimage() {
    let t = exp_dissem::e14_resume_with(&RunConfig::default(), 3, 4800, 3, 300);
    // Row 0 resumes from flash, row 1 was wiped. The crash bites
    // mid-download (pages kept > 0 only in the resume arm) and the
    // resumed victim finishes strictly earlier.
    assert!(cell(&t, 0, 1) > 0.0, "crash must land mid-download");
    assert_eq!(cell(&t, 1, 1), 0.0, "a wiped node keeps nothing");
    assert!(
        cell(&t, 0, 2) < cell(&t, 1, 2),
        "resume must beat restart: {} vs {}",
        cell(&t, 0, 2),
        cell(&t, 1, 2)
    );
    assert_eq!(cell(&t, 0, 4), 100.0);
    assert_eq!(cell(&t, 1, 4), 100.0);
}

#[test]
fn e16_shape_underload_is_lossless_and_fair() {
    // Well under drain capacity nothing sheds, every message is
    // admitted, tenants are served near-perfectly evenly and the p99
    // queue latency stays within a few drain ticks.
    let t = exp_cloud::e16_ingest_with(&RunConfig::default(), &[50, 200]);
    for r in 0..t.rows.len() {
        assert_eq!(cell(&t, r, 3), 100.0, "row {r} must accept everything");
        assert_eq!(cell(&t, r, 4), 0.0, "row {r} must shed nothing");
        assert!(cell(&t, r, 6) <= 50.0, "row {r} p99 within a few ticks");
        assert!(cell(&t, r, 7) > 0.99, "row {r} fairness near 1");
    }
}

#[test]
fn e16_shape_isolation_bounds_the_quiet_tenants_p99() {
    // The tenancy contract: under per-tenant queues a noisy neighbor —
    // even at 64x the quiet rate — cannot push a quiet tenant's p99
    // past one full queue drain (cap/batch + 1 ticks = 50 ms), and
    // quiet tenants never shed. The shared-queue arm has the same
    // aggregate capacity, so any damage it shows is the coupling's
    // doing, not a capacity difference.
    let t = exp_cloud::e16_fairness_with(&RunConfig::default(), &[1, 16, 64], 200);
    // Rows alternate per-tenant / shared per multiplier.
    for r in 0..t.rows.len() {
        if t.rows[r][1] == "per-tenant" {
            assert!(
                cell(&t, r, 2) <= 50.0,
                "quiet p99 bound broken under isolation: {:?}",
                t.rows[r]
            );
            assert_eq!(
                cell(&t, r, 3),
                0.0,
                "quiet tenants shed nothing under isolation"
            );
        }
    }
    let last_iso = t.rows.len() - 2;
    let last_shared = t.rows.len() - 1;
    // Shared FIFO "equalizes" service ratios by degrading every tenant
    // together, so its Jain index never drops below the isolated arm's
    // (which concentrates loss on the offender). The quiet-tenant
    // columns, not this one, carry the isolation story.
    assert!(
        cell(&t, last_shared, 5) >= cell(&t, last_iso, 5),
        "shared FIFO must not have a lower service-ratio Jain index at 64x"
    );
}

#[test]
fn e16_shape_overload_crosses_saturation() {
    // Both shed policies barely shed at rho = 0.5 and shed hard at
    // rho = 2.0, and the bounded queue never overflows its cap.
    let t = exp_cloud::e16_overload_with(&RunConfig::default(), &[0.5, 2.0], 250);
    for r in 0..2 {
        assert!(cell(&t, r, 3) < 1.0, "sub-saturation row {r} barely sheds");
    }
    for r in 2..4 {
        assert!(cell(&t, r, 3) > 20.0, "2x overload row {r} must shed hard");
        assert!(cell(&t, r, 6) <= 1024.0, "queue cap exceeded in row {r}");
    }
}

#[test]
fn e14_shape_canary_contains_the_blast() {
    let t = exp_dissem::e14_rollout_with(&RunConfig::default(), 3, 300);
    // Row 0 staged, row 1 flat: the canary cohort absorbs the poisoned
    // build, the flat rollout spreads it fleet-wide.
    assert!(
        cell(&t, 0, 1) < cell(&t, 1, 1),
        "staged blast {} must undercut flat {}",
        cell(&t, 0, 1),
        cell(&t, 1, 1)
    );
    assert_eq!(t.rows[0][3], "halted at canary");
    assert_eq!(t.rows[1][3], "fleet-wide");
}
