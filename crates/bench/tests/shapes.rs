//! Shape regression tests: the qualitative claims EXPERIMENTS.md makes
//! about each table — who wins, which way curves bend, where crossovers
//! fall — asserted programmatically so a protocol regression cannot
//! silently invert a paper claim. Only the fast experiments run here;
//! the slow sweeps (E2, E4) are covered by their substrates' own tests.

use iiot_bench::{exp_depend, exp_interop, exp_scale, RunConfig};

fn cell(t: &iiot_bench::table::Table, row: usize, col: usize) -> f64 {
    t.rows[row][col]
        .trim_end_matches('%')
        .trim_start_matches('+')
        .parse()
        .unwrap_or_else(|_| panic!("cell ({row},{col}) = {:?} not numeric", t.rows[row][col]))
}

#[test]
fn e3_shape_aggregation_flattens_the_funnel() {
    let t = exp_scale::e3_funneling(&RunConfig::default());
    // Raw messages decrease with distance from the root (funnel),
    // aggregate messages are flat.
    let raw_n1 = cell(&t, 0, 1);
    let raw_n7 = cell(&t, 6, 1);
    assert!(raw_n1 >= 6.0 * raw_n7, "funnel: {raw_n1} vs {raw_n7}");
    for r in 0..t.rows.len() {
        assert_eq!(cell(&t, r, 2), cell(&t, 0, 2), "aggregate load is flat");
    }
    // Radio-TX time tells the same story.
    assert!(cell(&t, 0, 3) > 4.0 * cell(&t, 0, 4));
}

#[test]
fn e3_shape_epoch_is_the_load_knob() {
    let t = exp_scale::e3_epoch_ablation(&RunConfig::default());
    // Longer epochs, fewer root-adjacent messages.
    assert!(cell(&t, 0, 2) > cell(&t, 1, 2));
    assert!(cell(&t, 1, 2) > cell(&t, 2, 2));
}

#[test]
fn e7_shape_cap_trade() {
    let t = exp_depend::e7_partition(&RunConfig::default());
    // Rows alternate Ap/Cp for growing partition lengths.
    for pair in t.rows.chunks(2) {
        let (ap, cp) = (&pair[0], &pair[1]);
        let ap_avail: f64 = ap[2].trim_end_matches('%').parse().expect("num");
        let cp_avail: f64 = cp[2].trim_end_matches('%').parse().expect("num");
        assert_eq!(ap_avail, 100.0, "AP is always available");
        assert!(cp_avail <= ap_avail);
        assert_ne!(ap[5], "never", "AP converges after heal");
        assert_ne!(cp[5], "never", "CP converges after heal");
    }
    // CP availability strictly falls with partition length.
    let cp_avails: Vec<f64> = t
        .rows
        .iter()
        .filter(|r| r[1] == "Cp")
        .map(|r| r[2].trim_end_matches('%').parse().expect("num"))
        .collect();
    assert!(cp_avails.windows(2).all(|w| w[1] <= w[0]));
    assert!(cp_avails.last() < cp_avails.first());
}

#[test]
fn e7_shape_delta_scaling() {
    let t = exp_depend::e7_delta_ablation();
    // Delta cost is constant; full-state cost grows with replicas.
    for r in 0..t.rows.len() {
        assert_eq!(cell(&t, r, 2), 18.0);
    }
    assert!(cell(&t, 3, 1) > 50.0 * cell(&t, 0, 2));
}

#[test]
fn e8_shape_redundancy_crossovers() {
    let t = exp_depend::e8_redundancy();
    for r in 0..t.rows.len() {
        // Monte Carlo within 3 points of the analytic model, per scheme.
        assert!((cell(&t, r, 2) - cell(&t, r, 3)).abs() < 3.0, "parity row {r}");
        assert!((cell(&t, r, 4) - cell(&t, r, 5)).abs() < 3.0, "retry row {r}");
        assert!((cell(&t, r, 6) - cell(&t, r, 7)).abs() < 3.0, "vote row {r}");
        // Time redundancy dominates everything at every loss level.
        assert!(cell(&t, r, 4) >= cell(&t, r, 1));
    }
    // Parity beats no-protection at low loss and loses at high loss
    // (the §V-A "information redundancy is limited" crossover).
    assert!(cell(&t, 0, 2) > cell(&t, 0, 1), "parity wins at p=0.05");
    let last = t.rows.len() - 1;
    assert!(cell(&t, last, 2) < cell(&t, last, 1), "parity loses at p=0.5");
}

#[test]
fn e9_shape_pareto_frontier() {
    let t = exp_depend::e9_safety_hvac();
    for w in (0..t.rows.len()).collect::<Vec<_>>().windows(2) {
        let (a, b) = (w[0], w[1]);
        assert!(cell(&t, b, 1) < cell(&t, a, 1), "wider setback saves energy");
        assert!(
            cell(&t, b, 2) >= cell(&t, a, 2),
            "savings cost (non-negative) comfort"
        );
        assert_eq!(cell(&t, a, 3), 0.0, "hard limits never violated");
    }
}

#[test]
fn e10_shape_monotone_cost_ladder() {
    let t = exp_interop::e10_security_overhead();
    let col_monotone_within = |col: usize, groups: &[&[usize]]| {
        for g in groups {
            for w in g.windows(2) {
                assert!(
                    cell(&t, w[1], col) >= cell(&t, w[0], col),
                    "col {col}: row {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    };
    // Rows: None, Mic32, Mic64, Mic128, Enc, EncMic32, EncMic64, EncMic128.
    // Bytes/airtime/energy grow within the MIC ladder and the ENC ladder.
    for col in [1usize, 2, 3, 5] {
        col_monotone_within(col, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
    }
    // Goodput falls within each ladder.
    for g in [&[0usize, 1, 2, 3][..], &[4, 5, 6, 7][..]] {
        for w in g.windows(2) {
            assert!(cell(&t, w[1], 6) <= cell(&t, w[0], 6));
        }
    }
    // Encryption adds cost over the matching MIC-only level.
    assert!(cell(&t, 5, 3) > cell(&t, 1, 3));
    assert!(cell(&t, 7, 3) > cell(&t, 3, 3));
}

#[test]
fn e12_shape_integration_fidelity() {
    let t = exp_interop::e12_interop();
    assert_eq!(t.rows[0][1], "3/3", "every protocol translates exactly");
    let throughput: f64 = t.rows[1][1].parse().expect("num");
    assert!(throughput > 10_000.0, "bridge throughput {throughput}/s");
    assert_eq!(t.rows[3][1], "2.05 Content");
}

#[test]
fn e11_shape_diagnosis_finds_the_victim() {
    let t = exp_depend::e11_diagnosis();
    assert_eq!(t.rows.len(), 1, "exactly one non-healthy finding");
    assert_eq!(t.rows[0][0], "n7");
}
