//! End-to-end trace capture through the Runner: the global `obs` sink
//! must produce byte-identical JSONL regardless of the worker count,
//! and a dump must round-trip losslessly through `parse_jsonl`.
//!
//! These tests live in their own file (hence their own test binary):
//! the trace sink is process-global state, and everything here runs in
//! one `#[test]` so no parallel test can interleave with it.

use iiot_bench::{Cell, MetricRows, Runner, Trial};
use iiot_sim::obs;
use iiot_sim::prelude::*;

/// A small but eventful simulation: three CSMA-less nodes ping-ponging
/// broadcast beacons with a mid-run crash, so the trace contains
/// tx/rx, drop and fault events.
struct Beacon {
    sent: u32,
}

impl Proto for Beacon {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.radio_on().expect("radio");
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
        let _ = ctx.transmit(Dst::Broadcast, 1, vec![self.sent as u8]);
        self.sent += 1;
        if self.sent < 10 {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
    }
}

fn trial(seed: u64) -> MetricRows {
    let mut w = SimBuilder::new()
        .seed(seed)
        .nodes(Topology::line(3, 10.0), |_| Box::new(Beacon { sent: 0 }))
        .build();
    w.kill_at(SimTime::from_millis(400), NodeId(2));
    w.run_for(SimDuration::from_secs(2));
    vec![vec![Cell::int(f64::from(
        w.proto::<Beacon>(NodeId(0)).sent,
    ))]]
}

fn trials() -> Vec<Trial> {
    (0..4)
        .map(|i| Trial::new(format!("trace-t{i}"), 40 + i, trial))
        .collect()
}

/// Runs the batch under tracing and returns the captured traces with
/// the section number normalized (the global section counter advances
/// between runs in this process).
fn capture(jobs: usize) -> Vec<obs::ScopeTrace> {
    obs::enable_tracing();
    let out = Runner::new(jobs).run(trials(), 2);
    assert_eq!(out.len(), 4);
    let mut traces = obs::drain_traces();
    obs::disable_tracing();
    for t in &mut traces {
        t.section = 0;
    }
    traces
}

#[test]
fn jsonl_is_identical_across_jobs_and_round_trips() {
    let a = obs::traces_to_jsonl(&capture(1));
    let b = obs::traces_to_jsonl(&capture(3));
    assert!(
        !a.is_empty() && a.lines().count() > 8,
        "capture produced traces"
    );
    assert_eq!(a, b, "trace dump must not depend on the worker count");

    // Round trip: parse and re-serialize reproduces the dump exactly.
    let parsed = obs::parse_jsonl(&a).expect("parse own dump");
    assert_eq!(parsed.len(), 8, "4 trials x 2 replicas");
    assert_eq!(obs::traces_to_jsonl(&parsed), a, "lossless round trip");

    // And the report over the parsed dump is stable under fixed seeds.
    let report = obs::report(&parsed);
    assert_eq!(report, obs::report(&obs::parse_jsonl(&b).expect("parse")));
    assert!(report.contains("== drop causes =="), "{report}");
    assert!(
        report.contains("fault: crash"),
        "kill_at shows in the timeline"
    );
}
