//! Public-API edge cases of the simulation kernel.

use iiot_sim::energy::EnergyModel;
use iiot_sim::prelude::*;

#[test]
fn radio_config_serde_round_trip() {
    let cfg = RadioConfig {
        link: LinkModel::LogDistance {
            path_loss_exp: 3.2,
            ref_loss_db: 40.0,
            rssi50_dbm: -88.0,
            spread_db: 3.0,
        },
        ..RadioConfig::default()
    };
    // serde derives exist so deployments can be described in config
    // files; check the round trip through the serde data model.
    let tokens = serde_json_like(&cfg);
    assert!(tokens.contains("LogDistance"));
}

/// Poor-man's serde check without a format crate: Debug both sides of a
/// clone (the types derive Serialize/Deserialize; compile-time presence
/// is what we assert, plus value semantics via Clone + Debug).
fn serde_json_like<T: serde::Serialize + Clone + std::fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

#[test]
fn custom_energy_model_changes_projection() {
    let stingy = EnergyModel {
        sleep_ma: 0.001,
        listen_ma: 5.0,
        tx_ma: 5.0,
        voltage_v: 1.8,
    };
    let mut w = World::new(SimConfig {
        energy: stingy,
        ..SimConfig::default()
    });
    let n = w.add_node(Pos::new(0.0, 0.0), Box::new(Idle));
    w.run_for(SimDuration::from_secs(100));
    let u = w.energy(n);
    assert_eq!(u.sleep, SimDuration::from_secs(100));
    let days_default = u.lifetime_days(&EnergyModel::default(), 1000.0);
    let days_stingy = u.lifetime_days(w.energy_model(), 1000.0);
    assert!(
        days_stingy > days_default,
        "lower sleep current lasts longer"
    );
}

#[test]
fn medium_stats_accumulate() {
    struct Chatter;
    impl Proto for Chatter {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.radio_on().expect("on");
            if ctx.id() == NodeId(0) {
                ctx.set_timer(SimDuration::from_millis(50), 0);
            }
        }
        fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
            ctx.transmit(Dst::Unicast(NodeId(1)), 0, vec![1, 2, 3])
                .expect("tx");
            ctx.set_timer(SimDuration::from_millis(50), 0);
        }
    }
    let mut w = World::new(SimConfig::default());
    w.add_nodes(&Topology::line(2, 10.0), |_| {
        Box::new(Chatter) as Box<dyn Proto>
    });
    w.run_for(SimDuration::from_secs(1));
    let s = w.medium().stats();
    assert!(s.tx_started >= 19);
    // The final transmission may still be in the air at the horizon.
    assert!(
        s.delivered >= s.tx_started - 1,
        "clean channel delivers all"
    );
    assert_eq!(s.lost_collision, 0);
}

#[test]
fn run_until_idle_stops_at_quiescence() {
    struct Finite {
        left: u32,
    }
    impl Proto for Finite {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
            if self.left > 0 {
                self.left -= 1;
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
    }
    let mut w = World::new(SimConfig::default());
    w.add_node(Pos::new(0.0, 0.0), Box::new(Finite { left: 5 }));
    assert!(w.run_until_idle(SimTime::from_secs(10)), "queue drains");
    assert_eq!(w.now(), SimTime::from_millis(60));

    // An infinite ticker never drains: deadline wins.
    let mut w2 = World::new(SimConfig::default());
    w2.add_node(Pos::new(0.0, 0.0), Box::new(Finite { left: u32::MAX }));
    assert!(!w2.run_until_idle(SimTime::from_millis(95)));
    assert_eq!(w2.now(), SimTime::from_millis(95));
}

#[test]
fn kill_then_revive_is_idempotent() {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(Pos::new(0.0, 0.0), Box::new(Idle));
    w.kill(n);
    w.kill(n); // no-op
    assert!(!w.is_alive(n));
    w.revive(n);
    w.revive(n); // no-op
    w.run_for(SimDuration::from_millis(10));
    assert!(w.is_alive(n));
}

#[test]
fn lossy_disk_drops_roughly_at_rate() {
    struct Sender;
    impl Proto for Sender {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.radio_on().expect("on");
            if ctx.id() == NodeId(0) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
            ctx.transmit(Dst::Broadcast, 0, vec![0; 10]).expect("tx");
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
    }
    let cfg = SimConfig::default().seed(99).link(LinkModel::LossyDisk {
        range_m: 30.0,
        interference_range_m: 45.0,
        prr: 0.7,
    });
    let mut w = World::new(cfg);
    w.add_nodes(&Topology::line(2, 10.0), |_| {
        Box::new(Sender) as Box<dyn Proto>
    });
    w.run_for(SimDuration::from_secs(20));
    let s = w.medium().stats();
    let rate = s.delivered as f64 / s.tx_started as f64;
    assert!((rate - 0.7).abs() < 0.05, "measured PRR {rate}");
    assert!(s.lost_prr > 0);
}

#[test]
fn spatial_index_is_invisible_to_simulations() {
    // Two identical worlds, one with the spatial candidate index
    // disabled (the exhaustive O(nodes) baseline): every observable —
    // medium stats, dispatched event count, per-node counters — must
    // agree exactly. This is the world-level face of the per-call
    // equivalence property test in the radio module.
    struct Gossip;
    impl Proto for Gossip {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.radio_on().expect("on");
            let stagger = 5 + ctx.id().0 as u64 * 7;
            ctx.set_timer(SimDuration::from_millis(stagger), 0);
        }
        fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
            ctx.transmit(Dst::Broadcast, 0, vec![ctx.id().0 as u8; 12])
                .ok();
            ctx.set_timer(SimDuration::from_millis(40), 0);
        }
        fn frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, _info: RxInfo) {
            ctx.count("heard", 1.0);
            ctx.count_node("heard", frame.payload.len() as f64);
        }
    }
    let run = |indexed: bool| {
        let mut w = World::new(SimConfig::default().seed(7));
        w.add_nodes(&Topology::grid(6, 6, 20.0), |_| {
            Box::new(Gossip) as Box<dyn Proto>
        });
        w.set_spatial_index(indexed);
        assert_eq!(w.spatial_index_active(), indexed);
        w.run_for(SimDuration::from_secs(5));
        (
            w.medium().stats(),
            w.events_dispatched(),
            w.stats().get("heard"),
        )
    };
    assert_eq!(run(true), run(false));
}
