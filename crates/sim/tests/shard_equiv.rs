//! Equivalence properties of the sharded engine.
//!
//! `shards = k` is its own deterministic model (see the shard module
//! docs): the guarantees tested here are
//!
//! 1. the serial and threaded window drivers are byte-identical for
//!    every `k`, topology and seed — thread count never changes results;
//! 2. when no radio cluster straddles a shard border, `shards = k`
//!    reproduces the serial kernel (`shards = 1`) exactly — schedules,
//!    RNG streams, stats and the structured-event trace;
//! 3. a replayed [`Checkpoint`] lands in the same state as the sim it
//!    was taken from.

use iiot_sim::obs::{Event, EventKind, Recorder};
use iiot_sim::prelude::*;
use proptest::prelude::*;
use std::any::Any;

/// A recorder that keeps every event for byte comparison.
#[derive(Debug, Default)]
struct VecRec(Vec<Event>);

impl Recorder for VecRec {
    fn record(&mut self, ev: &Event) {
        self.0.push(*ev);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Periodically broadcasts and counts what it hears — enough traffic to
/// exercise transmissions, receptions, CCA and collisions.
struct Chatter {
    period_ms: u64,
    heard: u64,
}

impl Chatter {
    fn boxed(i: usize) -> Box<dyn Proto> {
        Box::new(Chatter {
            period_ms: 40 + (i as u64 * 7) % 23,
            heard: 0,
        })
    }
}

impl Proto for Chatter {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.radio_on().expect("radio");
        ctx.set_timer(SimDuration::from_millis(1 + self.period_ms / 2), 0);
    }
    fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
        ctx.transmit(Dst::Broadcast, 0, vec![0xA5; 12]).ok();
        ctx.set_timer(SimDuration::from_millis(self.period_ms), 0);
    }
    fn frame(&mut self, ctx: &mut Ctx<'_>, _frame: &Frame, _info: RxInfo) {
        self.heard += 1;
        ctx.count_node("heard", 1.0);
    }
}

/// Runs `topo` for `secs` with the given shard config and returns a
/// fingerprint: (trace, stats debug, medium stats debug, events, end time).
fn fingerprint(
    topo: &Topology,
    seed: u64,
    secs: u64,
    shard: ShardConfig,
) -> (Vec<Event>, String, String, u64, SimTime) {
    let mut sim = SimBuilder::new()
        .seed(seed)
        .nodes(topo.clone(), Chatter::boxed)
        .sharding(shard)
        .recorder(Box::new(VecRec::default()))
        .build();
    sim.run(SimDuration::from_secs(secs));
    let stats = format!("{:?}", sim.stats());
    let medium = format!("{:?}", sim.medium_stats());
    let events = sim.events_dispatched();
    let now = sim.now();
    let trace = sim.recorder_as::<VecRec>().expect("VecRec").0.clone();
    (trace, stats, medium, events, now)
}

fn assert_same(
    a: &(Vec<Event>, String, String, u64, SimTime),
    b: &(Vec<Event>, String, String, u64, SimTime),
    what: &str,
) {
    assert_eq!(a.4, b.4, "{what}: end times differ");
    assert_eq!(a.3, b.3, "{what}: events dispatched differ");
    assert_eq!(a.1, b.1, "{what}: stats differ");
    assert_eq!(a.2, b.2, "{what}: medium stats differ");
    assert_eq!(a.0.len(), b.0.len(), "{what}: trace lengths differ");
    for (i, (x, y)) in a.0.iter().zip(&b.0).enumerate() {
        assert_eq!(x, y, "{what}: trace diverges at event {i}");
    }
}

/// Like [`assert_same`] but tolerant of same-timestamp interleaving:
/// the serial kernel orders simultaneous events by global queue
/// insertion, the shard merge by shard — for independent clusters the
/// event *sets* per timestamp must still match exactly.
fn assert_same_modulo_ties(
    a: &(Vec<Event>, String, String, u64, SimTime),
    b: &(Vec<Event>, String, String, u64, SimTime),
    what: &str,
) {
    assert_eq!(a.4, b.4, "{what}: end times differ");
    assert_eq!(a.3, b.3, "{what}: events dispatched differ");
    assert_eq!(a.1, b.1, "{what}: stats differ");
    assert_eq!(a.2, b.2, "{what}: medium stats differ");
    let canon = |tr: &[Event]| {
        let mut v: Vec<(SimTime, String)> = tr.iter().map(|e| (e.t, format!("{e:?}"))).collect();
        v.sort();
        v
    };
    assert_eq!(canon(&a.0), canon(&b.0), "{what}: trace contents differ");
}

/// A 3-node line whose middle link crosses the stripe border: border
/// traffic must still be delivered under sharding.
#[test]
fn cross_border_traffic_is_delivered() {
    let topo = Topology::line(3, 20.0);
    let mut sim = SimBuilder::new()
        .seed(7)
        .nodes(topo, Chatter::boxed)
        .sharding(ShardConfig::serial(2))
        .build();
    sim.run(SimDuration::from_secs(2));
    assert_eq!(sim.shards(), 2);
    let stats = sim.medium_stats();
    assert!(stats.delivered > 0, "no frames delivered: {stats:?}");
    // Every node heard someone — including across the border.
    for n in 0..3 {
        assert!(
            sim.proto::<Chatter>(NodeId(n)).heard > 0,
            "node {n} heard nothing"
        );
    }
}

/// Serial and threaded drivers must be byte-identical on a fixed
/// border-heavy topology for several shard counts.
#[test]
fn serial_and_threaded_drivers_agree() {
    let topo = Topology::grid(4, 4, 18.0);
    for &k in &[2usize, 3, 4] {
        let s = fingerprint(&topo, 0xC0FFEE, 2, ShardConfig::serial(k));
        let t = fingerprint(&topo, 0xC0FFEE, 2, ShardConfig::threaded(k));
        assert_same(&s, &t, &format!("k={k}"));
    }
}

/// Two radio clusters far outside each other's range, split by the
/// stripe border: sharding cannot change anything, so `shards = 2`
/// must reproduce the serial kernel byte for byte.
#[test]
fn isolated_clusters_match_serial_kernel() {
    let mut pos = Vec::new();
    for i in 0..5 {
        pos.push(Pos::new(i as f64 * 15.0, (i % 2) as f64 * 10.0));
    }
    for i in 0..5 {
        pos.push(Pos::new(10_000.0 + i as f64 * 15.0, (i % 3) as f64 * 10.0));
    }
    let topo: Topology = pos.into_iter().collect();
    let one = fingerprint(&topo, 99, 2, ShardConfig::default());
    let two_s = fingerprint(&topo, 99, 2, ShardConfig::serial(2));
    let two_t = fingerprint(&topo, 99, 2, ShardConfig::threaded(2));
    assert_same_modulo_ties(&one, &two_s, "serial 2-shard vs serial kernel");
    assert_same(&two_s, &two_t, "threaded vs serial 2-shard");
}

/// Co-located nodes (zero-width bounding box → index-chunk partition,
/// full audibility masks): serial and threaded drivers still agree.
#[test]
fn co_located_nodes_agree_across_drivers() {
    let topo: Topology = (0..6).map(|_| Pos::new(5.0, 5.0)).collect();
    let s = fingerprint(&topo, 1234, 1, ShardConfig::serial(2));
    let t = fingerprint(&topo, 1234, 1, ShardConfig::threaded(2));
    assert_same(&s, &t, "co-located");
}

/// Checkpoint/resume replays into the same state, sharded or not.
#[test]
fn checkpoint_resume_reproduces_state() {
    for &k in &[1usize, 2] {
        let topo = Topology::grid(3, 3, 20.0);
        let mut sim = SimBuilder::new()
            .seed(5)
            .nodes(topo, Chatter::boxed)
            .sharding(ShardConfig::serial(k))
            .build();
        sim.run(SimDuration::from_millis(700));
        sim.kill(NodeId(4));
        sim.run(SimDuration::from_millis(300));
        let cp = sim.checkpoint();
        let mut resumed = cp.resume();
        assert_eq!(resumed.now(), sim.now(), "k={k}: resumed time");
        assert_eq!(
            resumed.events_dispatched(),
            sim.events_dispatched(),
            "k={k}: resumed event count"
        );
        assert_eq!(
            format!("{:?}", resumed.stats()),
            format!("{:?}", sim.stats()),
            "k={k}: resumed stats"
        );
        // Forked copies diverge independently.
        let mut fork = cp.resume();
        fork.revive(NodeId(4));
        fork.run(SimDuration::from_millis(200));
        resumed.run(SimDuration::from_millis(200));
        assert!(resumed.now() == fork.now());
    }
}

/// Engine fault injection shows up in the trace like the serial
/// kernel's (kill/revive emit events; cross-shard mirrors stay silent).
#[test]
fn sharded_fault_injection_emits_once() {
    let topo = Topology::line(4, 20.0);
    let mut sim = SimBuilder::new()
        .seed(11)
        .nodes(topo, Chatter::boxed)
        .sharding(ShardConfig::serial(2))
        .recorder(Box::new(VecRec::default()))
        .build();
    sim.run(SimDuration::from_millis(100));
    sim.kill_at(SimTime::from_millis(150), NodeId(3));
    sim.revive_at(SimTime::from_millis(400), NodeId(3));
    sim.run_until(SimTime::from_millis(600));
    let trace = &sim.recorder_as::<VecRec>().expect("VecRec").0.clone();
    let crashes = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fault { kind: "crash", .. }) && e.node == NodeId(3))
        .count();
    let revives = trace
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Fault {
                    kind: "recover",
                    ..
                }
            ) && e.node == NodeId(3)
        })
        .count();
    assert_eq!(crashes, 1, "exactly one crash event");
    assert_eq!(revives, 1, "exactly one revive event");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scatters (border-straddling by construction: positions
    /// are uniform over the box, so stripes cut through clusters):
    /// serial ≡ threaded for random shard counts and seeds.
    #[test]
    fn prop_drivers_agree_on_random_topologies(
        seed in any::<u64>(),
        n in 4usize..16,
        k in 2usize..5,
        w in 40.0f64..160.0,
        xs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 16),
    ) {
        let topo: Topology = xs[..n]
            .iter()
            .map(|&(fx, fy)| Pos::new(fx * w, fy * 60.0))
            .collect();
        let s = fingerprint(&topo, seed, 1, ShardConfig::serial(k));
        let t = fingerprint(&topo, seed, 1, ShardConfig::threaded(k));
        assert_same(&s, &t, &format!("seed={seed} n={n} k={k}"));
    }

    /// Duplicated (co-located) positions included: drivers still agree.
    #[test]
    fn prop_drivers_agree_with_colocated_nodes(
        seed in any::<u64>(),
        n in 4usize..10,
        k in 2usize..4,
    ) {
        // Pairs of nodes share positions on a short line.
        let topo: Topology = (0..n)
            .map(|i| Pos::new(((i / 2) as f64) * 22.0, 0.0))
            .collect();
        let s = fingerprint(&topo, seed, 1, ShardConfig::serial(k));
        let t = fingerprint(&topo, seed, 1, ShardConfig::threaded(k));
        assert_same(&s, &t, &format!("seed={seed} n={n} k={k}"));
    }

    /// Widely separated clusters: `shards=2` ≡ `shards=1` exactly.
    #[test]
    fn prop_isolated_clusters_match_single(
        seed in any::<u64>(),
        a in 2usize..6,
        b in 2usize..6,
    ) {
        let mut pos = Vec::new();
        for i in 0..a {
            pos.push(Pos::new(i as f64 * 14.0, i as f64 * 3.0));
        }
        for i in 0..b {
            pos.push(Pos::new(50_000.0 + i as f64 * 14.0, i as f64 * 5.0));
        }
        let topo: Topology = pos.into_iter().collect();
        let one = fingerprint(&topo, seed, 1, ShardConfig::default());
        let two = fingerprint(&topo, seed, 1, ShardConfig::serial(2));
        assert_same_modulo_ties(&one, &two, &format!("seed={seed} a={a} b={b}"));
    }
}
