//! Structured observability: typed events, causal spans, recorders and
//! metric rollups (paper §V-D, diagnosability).
//!
//! Every hot path in the simulator and the protocol crates emits typed
//! [`Event`]s through [`Ctx::emit`](crate::world::Ctx::emit). Emission
//! is **zero-cost when disabled**: the kernel holds an
//! `Option<Box<dyn Recorder>>` and skips everything but one branch when
//! no recorder is installed. Events carry the simulation time, the node
//! they are attributed to and a [`SpanId`], so multi-hop deliveries and
//! repair episodes can be stitched into causal traces after the fact.
//!
//! Three recorders ship with the crate:
//!
//! * [`RingRecorder`] — keeps the last `cap` events in memory;
//! * [`CountingRecorder`] — per-kind counters only, no event storage;
//! * [`JsonlRecorder`] — streams one JSON object per event to a writer.
//!
//! On top of raw events, [`Rollup`] computes per-node/per-cause metric
//! summaries (drop causes, top talkers, latency/hop/queue-depth
//! [`Histogram`]s), and [`report`] renders a human-readable summary —
//! the engine behind the `trace_report` binary of `iiot-bench`.
//!
//! The module also owns the *global trace sink* used by `--trace` on the
//! experiments binary: worker threads tag themselves with a scope
//! ([`set_scope`]) before running a trial, every
//! [`World`](crate::world::World) created under
//! an active scope captures its events, and [`drain_traces`] returns all
//! captured traces in a canonical order that does not depend on thread
//! scheduling — which is what makes `--trace` output byte-identical for
//! any `--jobs` count.
//!
//! # Examples
//!
//! ```
//! use iiot_sim::prelude::*;
//! use iiot_sim::obs::{Event, EventKind, RingRecorder, SpanId};
//!
//! struct Chirp;
//! impl Proto for Chirp {
//!     fn start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.radio_on().unwrap();
//!         ctx.emit(EventKind::Custom { name: "boot", value: 1.0 });
//!         ctx.transmit(Dst::Broadcast, 7, vec![1, 2, 3]).unwrap();
//!     }
//! }
//!
//! let mut w = World::new(SimConfig::default());
//! w.set_recorder(Box::new(RingRecorder::new(64)));
//! w.add_node(Pos::new(0.0, 0.0), Box::new(Chirp));
//! w.run_for(SimDuration::from_secs(1));
//!
//! let ring = w.recorder_as::<RingRecorder>().unwrap();
//! let kinds: Vec<&str> = ring.events().map(|e| e.kind.name()).collect();
//! assert_eq!(kinds, ["custom", "tx_start", "tx_end"]);
//! ```

use crate::ids::NodeId;
use crate::time::SimTime;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

/// Identifier stitching related events into one causal trace.
///
/// A span id packs a tag and two 31-bit fields into a `u64`, so events
/// can reference a span without any allocation or global registry:
///
/// * [`SpanId::packet`] — one end-to-end delivery, keyed by the packet's
///   origin node and origin sequence number (which collection protocols
///   already carry in their headers, so no wire-format change is
///   needed);
/// * [`SpanId::episode`] — one repair/maintenance episode at a node
///   (e.g. an RNFD suspicion or a global DODAG repair).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

const SPAN_FIELD: u64 = 0x7FFF_FFFF;

impl SpanId {
    /// "Not part of any span."
    pub const NONE: SpanId = SpanId(0);

    fn make(tag: u64, a: u32, b: u32) -> SpanId {
        SpanId((tag << 62) | ((a as u64 & SPAN_FIELD) << 31) | (b as u64 & SPAN_FIELD))
    }

    /// The span of one end-to-end packet delivery, identified by its
    /// origin node and origin-assigned sequence number.
    pub fn packet(origin: NodeId, seq: u32) -> SpanId {
        SpanId::make(1, origin.0, seq)
    }

    /// The span of one repair/maintenance episode at `node`.
    pub fn episode(node: NodeId, n: u32) -> SpanId {
        SpanId::make(2, node.0, n)
    }

    /// Whether this is [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a packet-delivery span.
    pub fn is_packet(self) -> bool {
        self.0 >> 62 == 1
    }

    /// Whether this is a repair-episode span.
    pub fn is_episode(self) -> bool {
        self.0 >> 62 == 2
    }

    /// First packed field: the origin node (packet) or the episode's
    /// node.
    pub fn node(self) -> NodeId {
        NodeId(((self.0 >> 31) & SPAN_FIELD) as u32)
    }

    /// Second packed field: the sequence/episode number.
    pub fn seq(self) -> u32 {
        (self.0 & SPAN_FIELD) as u32
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_packet() {
            write!(f, "pkt({},{})", self.node().0, self.seq())
        } else if self.is_episode() {
            write!(f, "ep({},{})", self.node().0, self.seq())
        } else {
            write!(f, "-")
        }
    }
}

/// What happened. Every variant is `Copy` and allocation-free so that
/// constructing one on a hot path costs a few register moves even when
/// no recorder is installed.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EventKind {
    /// A transmission left a node's radio (kernel-level, every frame).
    TxStart {
        /// Unicast destination, `None` for broadcast.
        dst: Option<NodeId>,
        /// Radio demux port.
        port: u8,
        /// Payload length in bytes.
        bytes: u32,
    },
    /// A transmission finished at the sender.
    TxEnd {
        /// Oracle count of candidates that actually received the frame.
        receivers: u32,
    },
    /// A frame was delivered to the node's protocol stack.
    RxDeliver {
        /// Link-layer source of the frame.
        src: NodeId,
        /// Radio demux port.
        port: u8,
    },
    /// A candidate reception was lost, with the medium's drop cause.
    RxDrop {
        /// Drop cause name (see [`crate::radio::DropReason`]).
        cause: &'static str,
        /// Link-layer source, when the medium still knows it.
        src: Option<NodeId>,
    },
    /// A MAC transmit pipeline changed state.
    MacState {
        /// Which MAC (`"csma"`, `"lpl"`, `"rimac"`, `"tdma"`).
        mac: &'static str,
        /// The state entered.
        state: &'static str,
    },
    /// A Trickle timer was reset to its minimum interval.
    TrickleReset {
        /// Why (`"inconsistent"`, `"new_version"`, ...).
        cause: &'static str,
    },
    /// A DIO control message was sent.
    DioSent {
        /// The advertised rank.
        rank: u16,
    },
    /// The node's rank and/or preferred parent changed.
    RankChange {
        /// Rank before the change.
        old: u16,
        /// Rank after the change.
        new: u16,
        /// The new preferred parent, if any.
        parent: Option<NodeId>,
    },
    /// An RNFD node-failure-detection verdict was reached.
    RnfdVerdict {
        /// The node being judged.
        target: NodeId,
        /// The verdict (`"dead"` or `"alive"`).
        verdict: &'static str,
    },
    /// A confirmable CoAP message was retransmitted.
    CoapRetx {
        /// Retransmission attempt number (1-based).
        attempt: u32,
    },
    /// Two CRDT replicas merged state.
    CrdtMerge {
        /// Number of keys in the merged-in state.
        keys: u32,
    },
    /// A fault was injected (or healed) by the harness.
    Fault {
        /// `"crash"`, `"recover"`, `"link_down"`, `"link_up"`,
        /// `"partition"`, `"heal"`.
        kind: &'static str,
        /// The peer node for link faults.
        peer: Option<NodeId>,
    },
    /// A data packet was created at its origin (span anchor).
    DataOrigin {
        /// Origin-assigned sequence number.
        seq: u32,
    },
    /// A data packet was forwarded one hop closer to the sink.
    DataHop {
        /// The previous hop.
        from: NodeId,
        /// Hop count so far.
        hops: u8,
    },
    /// A data packet arrived at the sink (span end).
    DataArrive {
        /// Total hop count.
        hops: u8,
    },
    /// A queue depth sample (taken on enqueue).
    QueueDepth {
        /// Which queue (`"mac"`, `"dodag"`).
        queue: &'static str,
        /// Depth after the enqueue.
        depth: u32,
    },
    /// A time-synchronization beacon was transmitted (FTSP-style
    /// flooding).
    SyncBeacon {
        /// The reference (root) node whose timebase the beacon carries.
        root: NodeId,
        /// Flood sequence number of the beacon.
        seq: u32,
        /// Hop distance of the sender from the reference.
        hops: u8,
    },
    /// A node re-estimated its offset/skew against the global timebase.
    OffsetEstimate {
        /// Estimated local-to-global offset, in microseconds.
        offset_us: i64,
        /// Estimated skew relative to the global timebase, in ppm.
        skew_ppm: f64,
    },
    /// Slot timing discipline was violated (TDMA under clock drift):
    /// a transmission overran its slot or a frame arrived outside the
    /// receiver's slot.
    GuardViolation {
        /// What went wrong (`"tx_overrun"`, `"late_frame"`,
        /// `"tx_busy"`).
        cause: &'static str,
    },
    /// A dissemination summary advertisement (Deluge-style `ADV`) was
    /// broadcast.
    DissemAdv {
        /// The advertised image version.
        version: u32,
        /// Number of complete pages the advertiser holds.
        have: u32,
    },
    /// A dissemination page request (`REQ`) was sent to a neighbor that
    /// advertised more pages.
    DissemReq {
        /// The image version being fetched.
        version: u32,
        /// The page index requested.
        page: u32,
    },
    /// A node completed reassembling one image page (all chunks held,
    /// page CRC verified).
    DissemPage {
        /// The page index completed.
        page: u32,
        /// Number of complete pages held after this one.
        have: u32,
    },
    /// A node finished (or rejected) a whole image: every page held and
    /// the image CRC checked.
    DissemComplete {
        /// The image version.
        version: u32,
        /// Whether the whole-image CRC verified (`false` quarantines
        /// the version).
        ok: bool,
    },
    /// A staged-rollout controller changed stage.
    RolloutStage {
        /// The stage entered (`"canary"`, `"wave"`, `"fleet"`,
        /// `"done"`, `"halted"`).
        stage: &'static str,
        /// Number of nodes enabled by (or implicated in) this stage.
        cohort: u32,
    },
    /// A northbound uplink message was accepted by the cloud ingest
    /// pipeline (the node is the reporting shard, not a sim node).
    CloudIngest {
        /// The accepting tenant's numeric id.
        tenant: u32,
        /// Tenant queue depth right after the enqueue.
        depth: u32,
    },
    /// A northbound uplink message was shed at the cloud's front door.
    CloudShed {
        /// The tenant whose message was shed.
        tenant: u32,
        /// Shed cause (`"auth"`, `"queue_full"`, `"drop_oldest"`).
        cause: &'static str,
    },
    /// A downlink command-and-control attempt completed.
    CloudCommand {
        /// The issuing tenant.
        tenant: u32,
        /// Whether the gateway acknowledged the command.
        ok: bool,
    },
    /// A northbound uplink was shed by per-tenant token-bucket
    /// admission control *before* reaching any queue — distinct from
    /// [`CloudShed`](EventKind::CloudShed) so admission shed and
    /// backpressure shed stay separately countable (the node is the
    /// reporting shard).
    CloudRateLimit {
        /// The throttled tenant's numeric id.
        tenant: u32,
    },
    /// The cloud event log sealed a segment (it filled to the
    /// configured byte budget and is immutable from here on).
    StreamSeal {
        /// Index of the segment just sealed (0-based, append order).
        segment: u32,
        /// Records the sealed segment holds.
        records: u32,
    },
    /// A windowed aggregate closed: the watermark passed the window's
    /// end plus the allowed lateness.
    StreamWindow {
        /// The owning tenant's numeric id.
        tenant: u32,
        /// The metric key inside the tenant's namespace.
        metric: u32,
        /// Observations attributed to the closed window.
        count: u32,
    },
    /// A fleet-level campaign controller changed phase (the node is
    /// the network index the action applies to, or 0 for fleet-wide
    /// transitions).
    FleetPhase {
        /// The phase entered (`"canary"`, `"wave"`, `"fleet"`,
        /// `"done"`, `"halted"`).
        stage: &'static str,
        /// Networks activated by (or implicated in) this phase — for
        /// `"halted"`, the blast radius in networks.
        networks: u32,
    },
    /// Desired-vs-reported configuration drift detected on a device
    /// twin (emitted once when the device *enters* the drifted state).
    FleetDrift {
        /// The drifting device (registry index).
        device: u32,
        /// Number of config keys out of sync.
        keys: u32,
    },
    /// A drift-remediation push (config write through the C&C CoAP
    /// path) completed.
    FleetRemediate {
        /// The remediated device (registry index).
        device: u32,
        /// Whether the config write was acknowledged.
        ok: bool,
    },
    /// An ICN Interest (named-data request) left a node — issued
    /// locally by a consumer or forwarded upstream toward the producer.
    IcnInterest {
        /// Stable 32-bit hash of the requested name.
        name: u32,
        /// Minimum acceptable content version (`0` accepts any).
        min_version: u32,
    },
    /// A signed content object was sent — a producer answer, a cache
    /// answer, or a PIT fan-out hop back toward the requesters.
    IcnData {
        /// Stable 32-bit hash of the object's name.
        name: u32,
        /// The object's version.
        version: u32,
    },
    /// An Interest was answered from a node-local content store
    /// instead of travelling on toward the producer.
    IcnCacheHit {
        /// Stable 32-bit hash of the answered name.
        name: u32,
        /// Version of the cached object served.
        version: u32,
    },
    /// A consumer rejected a delivered content object at verification
    /// time (content-object security validates at the consumer, not
    /// per hop).
    IcnVerifyFail {
        /// Stable 32-bit hash of the rejected object's name.
        name: u32,
        /// Rejection cause (`"forged"`, `"stale"`).
        cause: &'static str,
    },
    /// Escape hatch for one-off instrumentation.
    Custom {
        /// Metric name.
        name: &'static str,
        /// Metric value.
        value: f64,
    },
}

impl EventKind {
    /// Stable kind name used in JSONL dumps and counters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxStart { .. } => "tx_start",
            EventKind::TxEnd { .. } => "tx_end",
            EventKind::RxDeliver { .. } => "rx_deliver",
            EventKind::RxDrop { .. } => "rx_drop",
            EventKind::MacState { .. } => "mac_state",
            EventKind::TrickleReset { .. } => "trickle_reset",
            EventKind::DioSent { .. } => "dio",
            EventKind::RankChange { .. } => "rank_change",
            EventKind::RnfdVerdict { .. } => "rnfd_verdict",
            EventKind::CoapRetx { .. } => "coap_retx",
            EventKind::CrdtMerge { .. } => "crdt_merge",
            EventKind::Fault { .. } => "fault",
            EventKind::DataOrigin { .. } => "data_origin",
            EventKind::DataHop { .. } => "data_hop",
            EventKind::DataArrive { .. } => "data_arrive",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::SyncBeacon { .. } => "sync_beacon",
            EventKind::OffsetEstimate { .. } => "offset_estimate",
            EventKind::GuardViolation { .. } => "guard_violation",
            EventKind::DissemAdv { .. } => "dissem_adv",
            EventKind::DissemReq { .. } => "dissem_req",
            EventKind::DissemPage { .. } => "dissem_page",
            EventKind::DissemComplete { .. } => "dissem_complete",
            EventKind::RolloutStage { .. } => "rollout_stage",
            EventKind::CloudIngest { .. } => "cloud_ingest",
            EventKind::CloudShed { .. } => "cloud_shed",
            EventKind::CloudCommand { .. } => "cloud_command",
            EventKind::CloudRateLimit { .. } => "cloud_ratelimit",
            EventKind::StreamSeal { .. } => "stream_seal",
            EventKind::StreamWindow { .. } => "stream_window",
            EventKind::FleetPhase { .. } => "fleet_phase",
            EventKind::FleetDrift { .. } => "fleet_drift",
            EventKind::FleetRemediate { .. } => "fleet_remediate",
            EventKind::IcnInterest { .. } => "icn_interest",
            EventKind::IcnData { .. } => "icn_data",
            EventKind::IcnCacheHit { .. } => "icn_cache_hit",
            EventKind::IcnVerifyFail { .. } => "icn_verify_fail",
            EventKind::Custom { .. } => "custom",
        }
    }
}

/// One structured event: when, where, which span, what.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Event {
    /// Simulation time of the event.
    pub t: SimTime,
    /// The node the event is attributed to.
    pub node: NodeId,
    /// The causal span this event belongs to ([`SpanId::NONE`] if none).
    pub span: SpanId,
    /// What happened.
    pub kind: EventKind,
}

fn json_opt_node(n: Option<NodeId>) -> i64 {
    n.map(|n| n.0 as i64).unwrap_or(-1)
}

impl Event {
    /// Serializes the event as one flat JSON object (no external JSON
    /// dependency; the workspace vendors no `serde_json`).
    pub fn to_json(&self) -> String {
        let head = format!(
            "{{\"t_us\":{},\"node\":{},\"span\":{},\"kind\":\"{}\"",
            self.t.as_micros(),
            self.node.0,
            self.span.0,
            self.kind.name()
        );
        let tail = match self.kind {
            EventKind::TxStart { dst, port, bytes } => {
                format!(
                    ",\"dst\":{},\"port\":{},\"bytes\":{}",
                    json_opt_node(dst),
                    port,
                    bytes
                )
            }
            EventKind::TxEnd { receivers } => format!(",\"receivers\":{receivers}"),
            EventKind::RxDeliver { src, port } => {
                format!(",\"src\":{},\"port\":{}", src.0, port)
            }
            EventKind::RxDrop { cause, src } => {
                format!(",\"cause\":\"{}\",\"src\":{}", cause, json_opt_node(src))
            }
            EventKind::MacState { mac, state } => {
                format!(",\"mac\":\"{mac}\",\"state\":\"{state}\"")
            }
            EventKind::TrickleReset { cause } => format!(",\"cause\":\"{cause}\""),
            EventKind::DioSent { rank } => format!(",\"rank\":{rank}"),
            EventKind::RankChange { old, new, parent } => {
                format!(
                    ",\"old\":{},\"new\":{},\"parent\":{}",
                    old,
                    new,
                    json_opt_node(parent)
                )
            }
            EventKind::RnfdVerdict { target, verdict } => {
                format!(",\"target\":{},\"verdict\":\"{}\"", target.0, verdict)
            }
            EventKind::CoapRetx { attempt } => format!(",\"attempt\":{attempt}"),
            EventKind::CrdtMerge { keys } => format!(",\"keys\":{keys}"),
            EventKind::Fault { kind, peer } => {
                format!(",\"fault\":\"{}\",\"peer\":{}", kind, json_opt_node(peer))
            }
            EventKind::DataOrigin { seq } => format!(",\"seq\":{seq}"),
            EventKind::DataHop { from, hops } => {
                format!(",\"from\":{},\"hops\":{}", from.0, hops)
            }
            EventKind::DataArrive { hops } => format!(",\"hops\":{hops}"),
            EventKind::QueueDepth { queue, depth } => {
                format!(",\"queue\":\"{queue}\",\"depth\":{depth}")
            }
            EventKind::SyncBeacon { root, seq, hops } => {
                format!(",\"root\":{},\"seq\":{},\"hops\":{}", root.0, seq, hops)
            }
            EventKind::OffsetEstimate {
                offset_us,
                skew_ppm,
            } => {
                format!(",\"offset_us\":{offset_us},\"skew_ppm\":{skew_ppm}")
            }
            EventKind::GuardViolation { cause } => format!(",\"cause\":\"{cause}\""),
            EventKind::DissemAdv { version, have } => {
                format!(",\"version\":{version},\"have\":{have}")
            }
            EventKind::DissemReq { version, page } => {
                format!(",\"version\":{version},\"page\":{page}")
            }
            EventKind::DissemPage { page, have } => {
                format!(",\"page\":{page},\"have\":{have}")
            }
            EventKind::DissemComplete { version, ok } => {
                format!(",\"version\":{},\"ok\":{}", version, ok as u8)
            }
            EventKind::RolloutStage { stage, cohort } => {
                format!(",\"stage\":\"{stage}\",\"cohort\":{cohort}")
            }
            EventKind::CloudIngest { tenant, depth } => {
                format!(",\"tenant\":{tenant},\"depth\":{depth}")
            }
            EventKind::CloudShed { tenant, cause } => {
                format!(",\"tenant\":{tenant},\"cause\":\"{cause}\"")
            }
            EventKind::CloudCommand { tenant, ok } => {
                format!(",\"tenant\":{},\"ok\":{}", tenant, ok as u8)
            }
            EventKind::CloudRateLimit { tenant } => {
                format!(",\"tenant\":{tenant}")
            }
            EventKind::StreamSeal { segment, records } => {
                format!(",\"segment\":{segment},\"records\":{records}")
            }
            EventKind::StreamWindow {
                tenant,
                metric,
                count,
            } => {
                format!(",\"tenant\":{tenant},\"metric\":{metric},\"count\":{count}")
            }
            EventKind::FleetPhase { stage, networks } => {
                format!(",\"stage\":\"{stage}\",\"networks\":{networks}")
            }
            EventKind::FleetDrift { device, keys } => {
                format!(",\"device\":{device},\"keys\":{keys}")
            }
            EventKind::FleetRemediate { device, ok } => {
                format!(",\"device\":{},\"ok\":{}", device, ok as u8)
            }
            EventKind::IcnInterest { name, min_version } => {
                format!(",\"name\":{name},\"min_version\":{min_version}")
            }
            EventKind::IcnData { name, version } => {
                format!(",\"name\":{name},\"version\":{version}")
            }
            EventKind::IcnCacheHit { name, version } => {
                format!(",\"name\":{name},\"version\":{version}")
            }
            EventKind::IcnVerifyFail { name, cause } => {
                format!(",\"name\":{name},\"cause\":\"{cause}\"")
            }
            EventKind::Custom { name, value } => {
                format!(",\"name\":\"{name}\",\"value\":{value}")
            }
        };
        format!("{head}{tail}}}")
    }

    /// Parses an event back from its [`Event::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let num = |key: &str| -> Result<i64, String> {
            json_num(line, key).ok_or_else(|| format!("missing numeric field '{key}': {line}"))
        };
        let fnum = |key: &str| -> Result<f64, String> {
            json_f64(line, key).ok_or_else(|| format!("missing numeric field '{key}': {line}"))
        };
        let s = |key: &str| -> Result<&str, String> {
            json_str(line, key).ok_or_else(|| format!("missing string field '{key}': {line}"))
        };
        let opt_node = |key: &str| -> Result<Option<NodeId>, String> {
            let v = num(key)?;
            Ok(if v < 0 { None } else { Some(NodeId(v as u32)) })
        };
        let kind = match s("kind")? {
            "tx_start" => EventKind::TxStart {
                dst: opt_node("dst")?,
                port: num("port")? as u8,
                bytes: num("bytes")? as u32,
            },
            "tx_end" => EventKind::TxEnd {
                receivers: num("receivers")? as u32,
            },
            "rx_deliver" => EventKind::RxDeliver {
                src: NodeId(num("src")? as u32),
                port: num("port")? as u8,
            },
            "rx_drop" => EventKind::RxDrop {
                cause: intern(s("cause")?),
                src: opt_node("src")?,
            },
            "mac_state" => EventKind::MacState {
                mac: intern(s("mac")?),
                state: intern(s("state")?),
            },
            "trickle_reset" => EventKind::TrickleReset {
                cause: intern(s("cause")?),
            },
            "dio" => EventKind::DioSent {
                rank: num("rank")? as u16,
            },
            "rank_change" => EventKind::RankChange {
                old: num("old")? as u16,
                new: num("new")? as u16,
                parent: opt_node("parent")?,
            },
            "rnfd_verdict" => EventKind::RnfdVerdict {
                target: NodeId(num("target")? as u32),
                verdict: intern(s("verdict")?),
            },
            "coap_retx" => EventKind::CoapRetx {
                attempt: num("attempt")? as u32,
            },
            "crdt_merge" => EventKind::CrdtMerge {
                keys: num("keys")? as u32,
            },
            "fault" => EventKind::Fault {
                kind: intern(s("fault")?),
                peer: opt_node("peer")?,
            },
            "data_origin" => EventKind::DataOrigin {
                seq: num("seq")? as u32,
            },
            "data_hop" => EventKind::DataHop {
                from: NodeId(num("from")? as u32),
                hops: num("hops")? as u8,
            },
            "data_arrive" => EventKind::DataArrive {
                hops: num("hops")? as u8,
            },
            "queue_depth" => EventKind::QueueDepth {
                queue: intern(s("queue")?),
                depth: num("depth")? as u32,
            },
            "sync_beacon" => EventKind::SyncBeacon {
                root: NodeId(num("root")? as u32),
                seq: num("seq")? as u32,
                hops: num("hops")? as u8,
            },
            "offset_estimate" => EventKind::OffsetEstimate {
                offset_us: num("offset_us")?,
                skew_ppm: fnum("skew_ppm")?,
            },
            "guard_violation" => EventKind::GuardViolation {
                cause: intern(s("cause")?),
            },
            "dissem_adv" => EventKind::DissemAdv {
                version: num("version")? as u32,
                have: num("have")? as u32,
            },
            "dissem_req" => EventKind::DissemReq {
                version: num("version")? as u32,
                page: num("page")? as u32,
            },
            "dissem_page" => EventKind::DissemPage {
                page: num("page")? as u32,
                have: num("have")? as u32,
            },
            "dissem_complete" => EventKind::DissemComplete {
                version: num("version")? as u32,
                ok: num("ok")? != 0,
            },
            "rollout_stage" => EventKind::RolloutStage {
                stage: intern(s("stage")?),
                cohort: num("cohort")? as u32,
            },
            "cloud_ingest" => EventKind::CloudIngest {
                tenant: num("tenant")? as u32,
                depth: num("depth")? as u32,
            },
            "cloud_shed" => EventKind::CloudShed {
                tenant: num("tenant")? as u32,
                cause: intern(s("cause")?),
            },
            "cloud_command" => EventKind::CloudCommand {
                tenant: num("tenant")? as u32,
                ok: num("ok")? != 0,
            },
            "cloud_ratelimit" => EventKind::CloudRateLimit {
                tenant: num("tenant")? as u32,
            },
            "stream_seal" => EventKind::StreamSeal {
                segment: num("segment")? as u32,
                records: num("records")? as u32,
            },
            "stream_window" => EventKind::StreamWindow {
                tenant: num("tenant")? as u32,
                metric: num("metric")? as u32,
                count: num("count")? as u32,
            },
            "fleet_phase" => EventKind::FleetPhase {
                stage: intern(s("stage")?),
                networks: num("networks")? as u32,
            },
            "fleet_drift" => EventKind::FleetDrift {
                device: num("device")? as u32,
                keys: num("keys")? as u32,
            },
            "fleet_remediate" => EventKind::FleetRemediate {
                device: num("device")? as u32,
                ok: num("ok")? != 0,
            },
            "icn_interest" => EventKind::IcnInterest {
                name: num("name")? as u32,
                min_version: num("min_version")? as u32,
            },
            "icn_data" => EventKind::IcnData {
                name: num("name")? as u32,
                version: num("version")? as u32,
            },
            "icn_cache_hit" => EventKind::IcnCacheHit {
                name: num("name")? as u32,
                version: num("version")? as u32,
            },
            "icn_verify_fail" => EventKind::IcnVerifyFail {
                name: num("name")? as u32,
                cause: intern(s("cause")?),
            },
            "custom" => EventKind::Custom {
                name: intern(s("name")?),
                value: fnum("value")?,
            },
            other => return Err(format!("unknown event kind '{other}'")),
        };
        Ok(Event {
            t: SimTime::from_micros(num("t_us")? as u64),
            node: NodeId(num("node")? as u32),
            // Episode spans set bit 63, so the value exceeds `i64::MAX`
            // and must be parsed as an unsigned integer.
            span: SpanId(
                json_u64(line, "span")
                    .ok_or_else(|| format!("missing numeric field 'span': {line}"))?,
            ),
            kind,
        })
    }
}

/// Finds `"key":` in a flat JSON object and returns the raw value text.
/// Values emitted by this module never contain nested objects, so a
/// linear scan suffices; string values may contain backslash-escaped
/// quotes (trace labels go through [`json_escape`]), which the scan
/// skips. The returned slice is still escaped — see [`json_unescape`].
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(q) = rest.strip_prefix('"') {
        let b = q.as_bytes();
        let mut i = 0;
        while i < b.len() {
            match b[i] {
                b'"' => return Some(&q[..i]),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn json_num(line: &str, key: &str) -> Option<i64> {
    json_raw(line, key)?.parse().ok()
}

/// Full-range unsigned parse: seeds are arbitrary `u64`s, which `i64`
/// would reject above `2^63`.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_raw(line, key)?.parse().ok()
}

fn json_f64(line: &str, key: &str) -> Option<f64> {
    json_raw(line, key)?.parse().ok()
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    json_raw(line, key)
}

/// Reverses [`json_escape`] in a single left-to-right pass, so a literal
/// backslash followed by a quote (`\\\"` on the wire) is decoded
/// correctly — sequential `str::replace` calls would mangle it.
fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Maps a parsed string back to the `&'static str` the emitters used.
/// Strings outside the common hardcoded set (e.g. a `Custom` metric name
/// introduced after this list was written) are interned by leaking, via a
/// bounded side table so parsing stays lossless without unbounded memory
/// growth on adversarial dumps; only past that cap does a string collapse
/// to the `"other"` marker.
fn intern(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        // drop causes
        "prr",
        "collision",
        "radio_moved",
        "filtered",
        "dead",
        // MAC names and states
        "csma",
        "lpl",
        "rimac",
        "tdma",
        "idle",
        "backoff",
        "send_data",
        "send_ack",
        "wait_ack",
        "strobe",
        "sample",
        "sleep",
        "hunt",
        "dwell",
        "probe",
        "slot_tx",
        "slot_rx",
        // trickle causes
        "inconsistent",
        "new_version",
        "parent_lost",
        "repair",
        // verdicts and fault kinds
        "alive",
        "crash",
        "recover",
        "link_down",
        "link_up",
        "partition",
        "heal",
        // guard-violation causes
        "tx_overrun",
        "late_frame",
        "tx_busy",
        // rollout stages and wipe crashes
        "inject",
        "canary",
        "wave",
        "fleet",
        "done",
        "halted",
        "crash_wipe",
        // cloud shed causes
        "auth",
        "queue_full",
        "drop_oldest",
        // icn verification-failure causes
        "forged",
        "stale",
        // queues and common custom metric names
        "mac",
        "dodag",
        "boot",
        "duty_cycle",
        "merge_round",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == s) {
        return k;
    }
    const CAP: usize = 1024;
    static EXTRA: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());
    let mut extra = EXTRA
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(k) = extra.iter().find(|k| **k == s) {
        return k;
    }
    if extra.len() >= CAP {
        return "other";
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    extra.push(leaked);
    leaked
}

/// Receives every emitted [`Event`]. Installed into a
/// [`World`](crate::world::World) via
/// [`set_recorder`](crate::world::World::set_recorder); when no recorder
/// is installed, emission is a no-op.
pub trait Recorder: Send + 'static {
    /// Called once per emitted event, in simulation order.
    fn record(&mut self, ev: &Event);
    /// Downcasting support (see
    /// [`World::recorder_as`](crate::world::World::recorder_as)).
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Keeps the most recent `cap` events in memory; older events are
/// dropped (and counted). The cheap always-on flight recorder.
#[derive(Debug)]
pub struct RingRecorder {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingRecorder {
    /// A ring buffer holding at most `cap` events (at least 1).
    pub fn new(cap: usize) -> Self {
        RingRecorder {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, ev: &Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*ev);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts events per kind without storing them: the cheapest recorder,
/// for long runs where only totals matter.
#[derive(Debug, Default)]
pub struct CountingRecorder {
    by_kind: BTreeMap<&'static str, u64>,
    total: u64,
}

impl CountingRecorder {
    /// An empty counting recorder.
    pub fn new() -> Self {
        CountingRecorder::default()
    }

    /// Events seen with kind name `kind`.
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All per-kind counters, sorted by kind name.
    pub fn counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, *v))
    }
}

impl Recorder for CountingRecorder {
    fn record(&mut self, ev: &Event) {
        *self.by_kind.entry(ev.kind.name()).or_insert(0) += 1;
        self.total += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Streams every event as one JSON line to a writer.
pub struct JsonlRecorder<W: Write + Send + 'static> {
    w: W,
    lines: u64,
}

impl<W: Write + Send + 'static> JsonlRecorder<W> {
    /// Wraps `w`; each recorded event becomes one line.
    pub fn new(w: W) -> Self {
        JsonlRecorder { w, lines: 0 }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwraps the writer (flushing is the caller's concern).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write + Send + 'static> Recorder for JsonlRecorder<W> {
    fn record(&mut self, ev: &Event) {
        // An I/O error aborts recording, not the simulation.
        if writeln!(self.w, "{}", ev.to_json()).is_ok() {
            self.lines += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A fixed-size log-scale histogram (five buckets per decade, covering
/// roughly `1e-7 ..= 2.5e5`; values outside saturate into the edge
/// buckets), with exact count/sum/min/max. Deterministic and
/// allocation-free, so protocols can feed it from hot paths.
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 64],
        }
    }

    fn bucket(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        let idx = (v.log10() * 5.0).floor() as i64 + 36;
        idx.clamp(1, 63) as usize
    }

    /// Representative value of bucket `i` (geometric bucket center).
    fn bucket_value(i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        10f64.powf((i as f64 - 36.0 + 0.5) / 5.0)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`), accurate to one
    /// quarter-decade bucket; exact at the extremes.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }
}

/// Per-node / per-cause metric rollup computed from a slice of events:
/// the structured replacement for eyeballing ad-hoc counters.
#[derive(Clone, Debug, Default)]
pub struct Rollup {
    /// Total events rolled up.
    pub events: u64,
    /// Events per kind name.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Transmissions started per node ("top talkers").
    pub tx_by_node: BTreeMap<u32, u64>,
    /// Reception drops per cause.
    pub drops: BTreeMap<&'static str, u64>,
    /// End-to-end latency of completed packet spans, in seconds
    /// (origin → sink arrival).
    pub latency: Histogram,
    /// Hop counts of completed packet spans.
    pub hops: Histogram,
    /// Queue-depth samples per queue name.
    pub queue_depth: BTreeMap<&'static str, Histogram>,
    /// Packet spans that saw a `DataOrigin` but no `DataArrive`.
    pub lost_spans: u64,
    /// Packet spans completed end to end.
    pub delivered_spans: u64,
}

impl Rollup {
    /// Rolls up `events` (which must be in time order, as recorders
    /// deliver them).
    pub fn from_events(events: &[Event]) -> Rollup {
        let mut r = Rollup::default();
        let mut origins: BTreeMap<u64, SimTime> = BTreeMap::new();
        for ev in events {
            r.events += 1;
            *r.by_kind.entry(ev.kind.name()).or_insert(0) += 1;
            match ev.kind {
                EventKind::TxStart { .. } => {
                    *r.tx_by_node.entry(ev.node.0).or_insert(0) += 1;
                }
                EventKind::RxDrop { cause, .. } => {
                    *r.drops.entry(cause).or_insert(0) += 1;
                }
                EventKind::DataOrigin { .. } => {
                    origins.insert(ev.span.0, ev.t);
                }
                EventKind::DataArrive { hops } => {
                    if let Some(t0) = origins.remove(&ev.span.0) {
                        r.latency.observe(ev.t.duration_since(t0).as_secs_f64());
                        r.hops.observe(hops as f64);
                        r.delivered_spans += 1;
                    }
                }
                EventKind::QueueDepth { queue, depth } => {
                    r.queue_depth
                        .entry(queue)
                        .or_default()
                        .observe(depth as f64);
                }
                _ => {}
            }
        }
        r.lost_spans = origins.len() as u64;
        r
    }
}

// ---------------------------------------------------------------------------
// Global trace sink: deterministic `--trace` capture across worker threads.
// ---------------------------------------------------------------------------

/// One captured per-world trace plus the scope key that orders it.
#[derive(Clone, Debug)]
pub struct ScopeTrace {
    /// Section counter (bumped per experiment / per runner batch on the
    /// main thread, so it is scheduling-independent).
    pub section: u32,
    /// Trial index within the section.
    pub trial: u32,
    /// Replica index within the trial.
    pub replica: u32,
    /// Index of the world within the job (a trial may build several).
    pub world: u32,
    /// Human-readable label (trial label or experiment id).
    pub label: String,
    /// The world's master seed.
    pub seed: u64,
    /// The captured events, in simulation order.
    pub events: Vec<Event>,
}

impl ScopeTrace {
    fn key(&self) -> (u32, u32, u32, u32) {
        (self.section, self.trial, self.replica, self.world)
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);
static SECTION: AtomicU32 = AtomicU32::new(0);
static SINK: Mutex<Vec<ScopeTrace>> = Mutex::new(Vec::new());

thread_local! {
    static SCOPE: RefCell<Option<(u32, u32, u32, String)>> = const { RefCell::new(None) };
    static WORLD_SEQ: Cell<u32> = const { Cell::new(0) };
}

/// Turns on global trace capture (the `--trace` flag). Worlds created
/// afterwards *under an active thread scope* record their events into
/// the global sink.
pub fn enable_tracing() {
    TRACING.store(true, Ordering::SeqCst);
}

/// Turns capture off and empties the sink (test hygiene).
pub fn disable_tracing() {
    TRACING.store(false, Ordering::SeqCst);
    SINK.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Whether global trace capture is on.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Allocates the next section id. Call only from deterministic,
/// single-threaded control flow (the experiments binary between
/// experiments; the runner at batch entry) so section numbering never
/// depends on scheduling.
pub fn begin_section() -> u32 {
    SECTION.fetch_add(1, Ordering::SeqCst)
}

/// Tags the current thread: worlds created until the next
/// [`set_scope`]/[`clear_scope`] belong to `(section, trial, replica)`
/// with display label `label`.
pub fn set_scope(section: u32, trial: u32, replica: u32, label: &str) {
    SCOPE.with(|s| *s.borrow_mut() = Some((section, trial, replica, label.to_string())));
    WORLD_SEQ.with(|w| w.set(0));
}

/// Clears the current thread's scope; worlds created afterwards are not
/// captured.
pub fn clear_scope() {
    SCOPE.with(|s| *s.borrow_mut() = None);
}

/// Built by `World::new` when tracing is on and the thread has a scope.
struct TrialCapture {
    section: u32,
    trial: u32,
    replica: u32,
    world: u32,
    label: String,
    seed: u64,
    events: Vec<Event>,
}

impl Recorder for TrialCapture {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Drop for TrialCapture {
    fn drop(&mut self) {
        SINK.lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ScopeTrace {
                section: self.section,
                trial: self.trial,
                replica: self.replica,
                world: self.world,
                label: std::mem::take(&mut self.label),
                seed: self.seed,
                events: std::mem::take(&mut self.events),
            });
    }
}

/// The recorder a new world should install: a capture buffer when
/// tracing is enabled and this thread has an active scope, else `None`.
pub(crate) fn capture_recorder(seed: u64) -> Option<Box<dyn Recorder>> {
    if !tracing_enabled() {
        return None;
    }
    SCOPE.with(|s| {
        s.borrow().as_ref().map(|(section, trial, replica, label)| {
            let world = WORLD_SEQ.with(|w| {
                let n = w.get();
                w.set(n + 1);
                n
            });
            Box::new(TrialCapture {
                section: *section,
                trial: *trial,
                replica: *replica,
                world,
                label: label.clone(),
                seed,
                events: Vec::new(),
            }) as Box<dyn Recorder>
        })
    })
}

/// Builds a capture recorder for a trial that records events without
/// constructing a [`World`](crate::world::World) (e.g. the replicated-
/// store engine): when tracing is on and the thread has an active scope,
/// returns a recorder whose events land in the global sink on drop,
/// under the same deterministic scope key a world would get. Returns
/// `None` otherwise, so callers pay nothing when `--trace` is off.
pub fn scope_capture(seed: u64) -> Option<Box<dyn Recorder>> {
    capture_recorder(seed)
}

/// Drains every captured trace from the sink, sorted by scope key —
/// byte-identical output regardless of which worker thread captured
/// what, when.
pub fn drain_traces() -> Vec<ScopeTrace> {
    let mut traces = std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()));
    traces.sort_by_key(|t| t.key());
    traces
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders traces as JSONL: one header object per trace (scope key,
/// label, seed, event count) followed by one object per event.
///
/// Convenience wrapper over [`write_traces_jsonl`] for dumps known to
/// be small (tests, single worlds). Full experiment traces run to
/// gigabytes — stream those through a buffered writer instead of
/// materializing the dump.
pub fn traces_to_jsonl(traces: &[ScopeTrace]) -> String {
    let mut out = Vec::new();
    write_traces_jsonl(&mut out, traces).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("JSONL rendering is UTF-8")
}

/// Streams the [`traces_to_jsonl`] rendering into a writer, one line
/// per syscall-free buffered write — the `experiments --trace` path,
/// where a full-scale run's dump does not fit comfortably in memory.
///
/// # Errors
///
/// Propagates the first writer error.
pub fn write_traces_jsonl<W: std::io::Write>(
    w: &mut W,
    traces: &[ScopeTrace],
) -> std::io::Result<()> {
    for tr in traces {
        writeln!(
            w,
            "{{\"label\":\"{}\",\"section\":{},\"trial\":{},\"replica\":{},\"world\":{},\
             \"seed\":{},\"events\":{}}}",
            json_escape(&tr.label),
            tr.section,
            tr.trial,
            tr.replica,
            tr.world,
            tr.seed,
            tr.events.len()
        )?;
        for ev in &tr.events {
            writeln!(w, "{}", ev.to_json())?;
        }
    }
    Ok(())
}

/// Parses a dump produced by [`traces_to_jsonl`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_jsonl(s: &str) -> Result<Vec<ScopeTrace>, String> {
    let mut traces: Vec<ScopeTrace> = Vec::new();
    for (i, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("{\"label\"") {
            traces.push(ScopeTrace {
                section: json_num(line, "section").ok_or("header missing 'section'")? as u32,
                trial: json_num(line, "trial").ok_or("header missing 'trial'")? as u32,
                replica: json_num(line, "replica").ok_or("header missing 'replica'")? as u32,
                world: json_num(line, "world").ok_or("header missing 'world'")? as u32,
                label: json_unescape(json_str(line, "label").ok_or("header missing 'label'")?),
                seed: json_u64(line, "seed").ok_or("header missing 'seed'")?,
                events: Vec::new(),
            });
        } else {
            let ev = Event::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            traces
                .last_mut()
                .ok_or_else(|| format!("line {}: event before any trace header", i + 1))?
                .events
                .push(ev);
        }
    }
    Ok(traces)
}

/// Renders a deterministic human-readable summary of a set of traces:
/// per-scope totals, top talkers, drop causes, span latency and the
/// repair timeline. This is the engine of the `trace_report` binary.
pub fn report(traces: &[ScopeTrace]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let total_events: usize = traces.iter().map(|t| t.events.len()).sum();
    let _ = writeln!(out, "traces: {}   events: {}", traces.len(), total_events);
    let all: Vec<Event> = traces
        .iter()
        .flat_map(|t| t.events.iter().copied())
        .collect();
    let r = Rollup::from_events(&all);

    let _ = writeln!(out, "\n== event kinds ==");
    for (k, n) in &r.by_kind {
        let _ = writeln!(out, "  {k:<14} {n}");
    }

    let _ = writeln!(out, "\n== top talkers (tx_start per node) ==");
    let mut talkers: Vec<(u32, u64)> = r.tx_by_node.iter().map(|(n, c)| (*n, *c)).collect();
    talkers.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));
    for (n, c) in talkers.iter().take(10) {
        let _ = writeln!(out, "  node {n:<5} {c}");
    }

    let _ = writeln!(out, "\n== drop causes ==");
    if r.drops.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for (cause, n) in &r.drops {
        let _ = writeln!(out, "  {cause:<14} {n}");
    }

    let _ = writeln!(out, "\n== packet spans ==");
    let _ = writeln!(
        out,
        "  delivered {}   lost {}   latency mean {:.3}s p95 {:.3}s max {:.3}s   hops mean {:.1}",
        r.delivered_spans,
        r.lost_spans,
        r.latency.mean(),
        r.latency.quantile(0.95),
        r.latency.max(),
        r.hops.mean()
    );

    for (q, h) in &r.queue_depth {
        let _ = writeln!(
            out,
            "  queue '{}': {} samples, mean depth {:.2}, max {:.0}",
            q,
            h.count(),
            h.mean(),
            h.max()
        );
    }

    // Dissemination campaign summary: only rendered when a campaign ran.
    let has_dissem = all.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::DissemAdv { .. }
                | EventKind::DissemReq { .. }
                | EventKind::DissemPage { .. }
                | EventKind::DissemComplete { .. }
                | EventKind::RolloutStage { .. }
        )
    });
    if has_dissem {
        let _ = writeln!(out, "\n== dissemination campaign ==");
        let (mut advs, mut reqs, mut pages) = (0u64, 0u64, 0u64);
        // version -> (nodes completed ok, nodes rejected, first ok, last ok)
        let mut by_version: BTreeMap<u32, (u64, u64, Option<SimTime>, Option<SimTime>)> =
            BTreeMap::new();
        for ev in &all {
            match ev.kind {
                EventKind::DissemAdv { .. } => advs += 1,
                EventKind::DissemReq { .. } => reqs += 1,
                EventKind::DissemPage { .. } => pages += 1,
                EventKind::DissemComplete { version, ok } => {
                    let e = by_version.entry(version).or_insert((0, 0, None, None));
                    if ok {
                        e.0 += 1;
                        if e.2.is_none() {
                            e.2 = Some(ev.t);
                        }
                        e.3 = Some(ev.t);
                    } else {
                        e.1 += 1;
                    }
                }
                _ => {}
            }
        }
        let _ = writeln!(out, "  adv {advs}   req {reqs}   pages {pages}");
        for (v, (ok, bad, first, last)) in &by_version {
            let _ = writeln!(
                out,
                "  image v{}: {} nodes complete, {} rejected (bad CRC), first {:.3}s last {:.3}s",
                v,
                ok,
                bad,
                first.map(|t| t.as_secs_f64()).unwrap_or(0.0),
                last.map(|t| t.as_secs_f64()).unwrap_or(0.0)
            );
        }
        for tr in traces {
            for ev in &tr.events {
                if let EventKind::RolloutStage { stage, cohort } = ev.kind {
                    let _ = writeln!(
                        out,
                        "  [{}] t={:.3}s rollout: {} (cohort {})",
                        tr.label,
                        ev.t.as_secs_f64(),
                        stage,
                        cohort
                    );
                }
            }
        }
    }

    let has_cloud = all.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::CloudIngest { .. }
                | EventKind::CloudShed { .. }
                | EventKind::CloudCommand { .. }
        )
    });
    if has_cloud {
        let _ = writeln!(out, "\n== cloud tier ==");
        // tenant -> (accepted, shed, commands ok, commands failed, max depth)
        let mut by_tenant: BTreeMap<u32, (u64, u64, u64, u64, u32)> = BTreeMap::new();
        let mut shed_causes: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &all {
            match ev.kind {
                EventKind::CloudIngest { tenant, depth } => {
                    let e = by_tenant.entry(tenant).or_default();
                    e.0 += 1;
                    e.4 = e.4.max(depth);
                }
                EventKind::CloudShed { tenant, cause } => {
                    by_tenant.entry(tenant).or_default().1 += 1;
                    *shed_causes.entry(cause).or_default() += 1;
                }
                EventKind::CloudCommand { tenant, ok } => {
                    let e = by_tenant.entry(tenant).or_default();
                    if ok {
                        e.2 += 1;
                    } else {
                        e.3 += 1;
                    }
                }
                _ => {}
            }
        }
        let (acc, shed): (u64, u64) = by_tenant
            .values()
            .fold((0, 0), |(a, s), v| (a + v.0, s + v.1));
        let _ = writeln!(out, "  ingest accepted {acc}   shed {shed}");
        for (tenant, (a, s, ok, bad, depth)) in &by_tenant {
            let _ = writeln!(
                out,
                "  tenant {tenant}: accepted {a}, shed {s}, commands {ok} ok / {bad} failed, max depth {depth}"
            );
        }
        for (cause, n) in &shed_causes {
            let _ = writeln!(out, "  shed cause {cause}: {n}");
        }
    }

    // Stream-tier summary: admission-control sheds, event-log seals and
    // closed aggregation windows, rendered only when the cloud pipeline
    // ran with a stream attachment.
    let has_stream = all.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::CloudRateLimit { .. }
                | EventKind::StreamSeal { .. }
                | EventKind::StreamWindow { .. }
        )
    });
    if has_stream {
        let _ = writeln!(out, "\n== stream ==");
        let mut ratelimited: BTreeMap<u32, u64> = BTreeMap::new();
        let (mut seals, mut sealed_records) = (0u64, 0u64);
        // tenant -> (windows closed, observations windowed)
        let mut windows: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for ev in &all {
            match ev.kind {
                EventKind::CloudRateLimit { tenant } => {
                    *ratelimited.entry(tenant).or_default() += 1;
                }
                EventKind::StreamSeal { records, .. } => {
                    seals += 1;
                    sealed_records += records as u64;
                }
                EventKind::StreamWindow { tenant, count, .. } => {
                    let e = windows.entry(tenant).or_default();
                    e.0 += 1;
                    e.1 += count as u64;
                }
                _ => {}
            }
        }
        let rl_total: u64 = ratelimited.values().sum();
        let _ = writeln!(
            out,
            "  log seals {seals} ({sealed_records} records)   admission shed {rl_total}"
        );
        for (tenant, n) in &ratelimited {
            let _ = writeln!(out, "  tenant {tenant}: ratelimited {n}");
        }
        for (tenant, (w, obs)) in &windows {
            let _ = writeln!(
                out,
                "  tenant {tenant}: {w} windows closed ({obs} observations)"
            );
        }
    }

    // Fleet management summary: only rendered when a fleet campaign,
    // drift detector or remediation push left events behind.
    let has_fleet = all.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::FleetPhase { .. }
                | EventKind::FleetDrift { .. }
                | EventKind::FleetRemediate { .. }
        )
    });
    if has_fleet {
        let _ = writeln!(out, "\n== fleet ==");
        let (mut drifts, mut drift_keys) = (0u64, 0u64);
        let (mut rem_ok, mut rem_bad) = (0u64, 0u64);
        for ev in &all {
            match ev.kind {
                EventKind::FleetDrift { keys, .. } => {
                    drifts += 1;
                    drift_keys += keys as u64;
                }
                EventKind::FleetRemediate { ok, .. } => {
                    if ok {
                        rem_ok += 1;
                    } else {
                        rem_bad += 1;
                    }
                }
                _ => {}
            }
        }
        let _ = writeln!(
            out,
            "  drift detections {drifts} ({drift_keys} keys)   remediations {rem_ok} ok / {rem_bad} failed"
        );
        for tr in traces {
            for ev in &tr.events {
                if let EventKind::FleetPhase { stage, networks } = ev.kind {
                    let _ = writeln!(
                        out,
                        "  [{}] t={:.3}s campaign: {} (networks {})",
                        tr.label,
                        ev.t.as_secs_f64(),
                        stage,
                        networks
                    );
                }
            }
        }
    }

    // ICN summary: named-data interest/data volumes, content-store
    // effectiveness, and consumer-side verification verdicts. Only
    // rendered when an ICN workload emitted events.
    let has_icn = all.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::IcnInterest { .. }
                | EventKind::IcnData { .. }
                | EventKind::IcnCacheHit { .. }
                | EventKind::IcnVerifyFail { .. }
        )
    });
    if has_icn {
        let _ = writeln!(out, "\n== icn ==");
        let (mut interests, mut data, mut hits) = (0u64, 0u64, 0u64);
        let mut fails: BTreeMap<&'static str, u64> = BTreeMap::new();
        // name hash -> (interests, data, cache hits)
        let mut by_name: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
        for ev in &all {
            match ev.kind {
                EventKind::IcnInterest { name, .. } => {
                    interests += 1;
                    by_name.entry(name).or_default().0 += 1;
                }
                EventKind::IcnData { name, .. } => {
                    data += 1;
                    by_name.entry(name).or_default().1 += 1;
                }
                EventKind::IcnCacheHit { name, .. } => {
                    hits += 1;
                    by_name.entry(name).or_default().2 += 1;
                }
                EventKind::IcnVerifyFail { cause, .. } => {
                    *fails.entry(cause).or_default() += 1;
                }
                _ => {}
            }
        }
        let ratio = if interests > 0 {
            hits as f64 / interests as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  interests {interests}   data {data}   cache hits {hits} ({ratio:.1}% of interests)"
        );
        for (name, (i, d, h)) in &by_name {
            let _ = writeln!(
                out,
                "  name {name:#010x}: interests {i}, data {d}, cache hits {h}"
            );
        }
        for (cause, n) in &fails {
            let _ = writeln!(out, "  verify fail {cause}: {n}");
        }
    }

    let _ = writeln!(out, "\n== repair timeline ==");
    let mut lines = 0;
    for tr in traces {
        for ev in &tr.events {
            let desc = match ev.kind {
                EventKind::TrickleReset { cause } => format!("trickle reset ({cause})"),
                EventKind::RankChange { old, new, parent } => format!(
                    "rank {} -> {} (parent {})",
                    old,
                    new,
                    parent.map(|p| p.0 as i64).unwrap_or(-1)
                ),
                EventKind::RnfdVerdict { target, verdict } => {
                    format!("rnfd: node {} judged {}", target.0, verdict)
                }
                EventKind::Fault { kind, peer } => match peer {
                    Some(p) => format!("fault: {} (peer {})", kind, p.0),
                    None => format!("fault: {kind}"),
                },
                _ => continue,
            };
            if lines < 40 {
                let _ = writeln!(
                    out,
                    "  [{}] t={:.3}s node {}: {}",
                    tr.label,
                    ev.t.as_secs_f64(),
                    ev.node.0,
                    desc
                );
            }
            lines += 1;
        }
    }
    if lines == 0 {
        let _ = writeln!(out, "  (no repair activity)");
    } else if lines > 40 {
        let _ = writeln!(out, "  ... {} more repair events", lines - 40);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_us: u64, node: u32, kind: EventKind) -> Event {
        Event {
            t: SimTime::from_micros(t_us),
            node: NodeId(node),
            span: SpanId::NONE,
            kind,
        }
    }

    #[test]
    fn span_id_packs_and_unpacks() {
        let s = SpanId::packet(NodeId(12345), 0x7FFF_0001);
        assert!(s.is_packet() && !s.is_episode() && !s.is_none());
        assert_eq!(s.node(), NodeId(12345));
        assert_eq!(s.seq(), 0x7FFF_0001);
        let e = SpanId::episode(NodeId(7), 3);
        assert!(e.is_episode());
        assert_eq!((e.node(), e.seq()), (NodeId(7), 3));
        assert_eq!(format!("{s}"), "pkt(12345,2147418113)");
        assert!(SpanId::NONE.is_none());
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        let kinds = vec![
            EventKind::TxStart {
                dst: Some(NodeId(3)),
                port: 1,
                bytes: 40,
            },
            EventKind::TxStart {
                dst: None,
                port: 2,
                bytes: 0,
            },
            EventKind::TxEnd { receivers: 4 },
            EventKind::RxDeliver {
                src: NodeId(9),
                port: 7,
            },
            EventKind::RxDrop {
                cause: "collision",
                src: Some(NodeId(1)),
            },
            EventKind::RxDrop {
                cause: "prr",
                src: None,
            },
            EventKind::MacState {
                mac: "csma",
                state: "backoff",
            },
            EventKind::TrickleReset {
                cause: "inconsistent",
            },
            EventKind::DioSent { rank: 512 },
            EventKind::RankChange {
                old: 65535,
                new: 768,
                parent: Some(NodeId(2)),
            },
            EventKind::RnfdVerdict {
                target: NodeId(5),
                verdict: "dead",
            },
            EventKind::CoapRetx { attempt: 2 },
            EventKind::CrdtMerge { keys: 17 },
            EventKind::Fault {
                kind: "link_down",
                peer: Some(NodeId(8)),
            },
            EventKind::Fault {
                kind: "partition",
                peer: None,
            },
            EventKind::DataOrigin { seq: 11 },
            EventKind::DataHop {
                from: NodeId(4),
                hops: 2,
            },
            EventKind::DataArrive { hops: 3 },
            EventKind::QueueDepth {
                queue: "dodag",
                depth: 6,
            },
            EventKind::SyncBeacon {
                root: NodeId(0),
                seq: 99,
                hops: 4,
            },
            EventKind::OffsetEstimate {
                offset_us: -1234,
                skew_ppm: -12.5,
            },
            EventKind::GuardViolation {
                cause: "tx_overrun",
            },
            EventKind::DissemAdv {
                version: 3,
                have: 7,
            },
            EventKind::DissemReq {
                version: 3,
                page: 2,
            },
            EventKind::DissemPage { page: 2, have: 3 },
            EventKind::DissemComplete {
                version: 3,
                ok: true,
            },
            EventKind::DissemComplete {
                version: 4,
                ok: false,
            },
            EventKind::RolloutStage {
                stage: "canary",
                cohort: 5,
            },
            EventKind::CloudIngest {
                tenant: 2,
                depth: 17,
            },
            EventKind::CloudShed {
                tenant: 2,
                cause: "queue_full",
            },
            EventKind::CloudShed {
                tenant: 0,
                cause: "auth",
            },
            EventKind::CloudCommand {
                tenant: 1,
                ok: true,
            },
            EventKind::CloudCommand {
                tenant: 3,
                ok: false,
            },
            EventKind::CloudRateLimit { tenant: 2 },
            EventKind::StreamSeal {
                segment: 4,
                records: 1833,
            },
            EventKind::StreamWindow {
                tenant: 1,
                metric: 7,
                count: 250,
            },
            EventKind::FleetPhase {
                stage: "canary",
                networks: 2,
            },
            EventKind::FleetPhase {
                stage: "halted",
                networks: 8,
            },
            EventKind::FleetDrift {
                device: 42,
                keys: 3,
            },
            EventKind::FleetRemediate {
                device: 42,
                ok: true,
            },
            EventKind::FleetRemediate {
                device: 7,
                ok: false,
            },
            EventKind::IcnInterest {
                name: 0xDEAD_BEEF,
                min_version: 0,
            },
            EventKind::IcnInterest {
                name: 17,
                min_version: 3,
            },
            EventKind::IcnData {
                name: 17,
                version: 3,
            },
            EventKind::IcnCacheHit {
                name: 17,
                version: 2,
            },
            EventKind::IcnVerifyFail {
                name: 17,
                cause: "forged",
            },
            EventKind::IcnVerifyFail {
                name: 17,
                cause: "stale",
            },
            EventKind::Custom {
                name: "boot",
                value: 1.5,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            // Alternate packet and episode spans: episode ids set bit 63,
            // so they exercise the full-u64 parse path.
            let span = if i % 2 == 0 {
                SpanId::packet(NodeId(i as u32), 42)
            } else {
                SpanId::episode(NodeId(i as u32), 42)
            };
            let e = Event {
                t: SimTime::from_micros(1000 + i as u64),
                node: NodeId(i as u32),
                span,
                kind,
            };
            let back = Event::from_json(&e.to_json()).expect("parse");
            assert_eq!(e, back, "json: {}", e.to_json());
        }
    }

    #[test]
    fn unknown_interned_strings_round_trip() {
        let e = ev(
            1,
            2,
            EventKind::Custom {
                name: "a_metric_not_in_the_known_list",
                value: 2.0,
            },
        );
        let back = Event::from_json(&e.to_json()).expect("parse");
        assert_eq!(e, back);
        // A second parse returns the same leaked pointer, not a new one.
        let again = Event::from_json(&e.to_json()).expect("parse");
        assert_eq!(back, again);
    }

    #[test]
    fn ring_recorder_caps_and_counts_drops() {
        let mut r = RingRecorder::new(3);
        for i in 0..5 {
            r.record(&ev(
                i,
                0,
                EventKind::TxEnd {
                    receivers: i as u32,
                },
            ));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().unwrap();
        assert_eq!(first.t, SimTime::from_micros(2));
    }

    #[test]
    fn counting_recorder_counts_by_kind() {
        let mut c = CountingRecorder::new();
        c.record(&ev(0, 0, EventKind::TxEnd { receivers: 1 }));
        c.record(&ev(1, 0, EventKind::TxEnd { receivers: 0 }));
        c.record(&ev(
            2,
            1,
            EventKind::RxDrop {
                cause: "prr",
                src: None,
            },
        ));
        assert_eq!(c.count("tx_end"), 2);
        assert_eq!(c.count("rx_drop"), 1);
        assert_eq!(c.count("dio"), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn jsonl_recorder_streams_lines() {
        let mut j = JsonlRecorder::new(Vec::new());
        j.record(&ev(5, 2, EventKind::DioSent { rank: 256 }));
        j.record(&ev(
            6,
            2,
            EventKind::TrickleReset {
                cause: "inconsistent",
            },
        ));
        assert_eq!(j.lines(), 2);
        let text = String::from_utf8(j.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"kind\":\"dio\""));
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.observe(i as f64 / 100.0); // 0.01 ..= 1.00
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 0.505).abs() < 1e-9);
        assert_eq!(h.min(), 0.01);
        assert_eq!(h.max(), 1.0);
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.2 && p50 < 0.9, "p50 {p50}");
        let p95 = h.quantile(0.95);
        assert!(p95 >= p50 && p95 <= 1.0, "p95 {p95}");
        let mut other = Histogram::new();
        other.observe(10.0);
        h.merge(&other);
        assert_eq!(h.count(), 101);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn rollup_stitches_packet_spans() {
        let s1 = SpanId::packet(NodeId(4), 1);
        let s2 = SpanId::packet(NodeId(5), 1);
        let events = vec![
            Event {
                t: SimTime::from_secs(1),
                node: NodeId(4),
                span: s1,
                kind: EventKind::DataOrigin { seq: 1 },
            },
            Event {
                t: SimTime::from_secs(1),
                node: NodeId(5),
                span: s2,
                kind: EventKind::DataOrigin { seq: 1 },
            },
            Event {
                t: SimTime::from_micros(1_500_000),
                node: NodeId(2),
                span: s1,
                kind: EventKind::DataHop {
                    from: NodeId(4),
                    hops: 1,
                },
            },
            Event {
                t: SimTime::from_secs(2),
                node: NodeId(0),
                span: s1,
                kind: EventKind::DataArrive { hops: 2 },
            },
        ];
        let r = Rollup::from_events(&events);
        assert_eq!(r.delivered_spans, 1);
        assert_eq!(r.lost_spans, 1);
        assert_eq!(r.latency.count(), 1);
        assert!((r.latency.mean() - 1.0).abs() < 1e-9);
        assert!((r.hops.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_dump_round_trips_and_reports_stably() {
        let traces = vec![ScopeTrace {
            section: 0,
            trial: 1,
            replica: 0,
            world: 0,
            label: "3x3".into(),
            seed: 99,
            events: vec![
                ev(
                    10,
                    0,
                    EventKind::TxStart {
                        dst: None,
                        port: 1,
                        bytes: 12,
                    },
                ),
                ev(
                    20,
                    1,
                    EventKind::RxDrop {
                        cause: "collision",
                        src: Some(NodeId(0)),
                    },
                ),
                ev(
                    30,
                    1,
                    EventKind::TrickleReset {
                        cause: "inconsistent",
                    },
                ),
            ],
        }];
        let dump = traces_to_jsonl(&traces);
        let back = parse_jsonl(&dump).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].label, "3x3");
        assert_eq!(back[0].seed, 99);
        assert_eq!(back[0].events, traces[0].events);
        // Rendering the parsed dump must equal rendering the original:
        // the stability trace_report relies on.
        assert_eq!(report(&back), report(&traces));
        assert!(report(&back).contains("collision"));
        assert!(report(&back).contains("trickle reset"));
    }

    #[test]
    fn header_labels_with_quotes_and_backslashes_round_trip() {
        for label in [r#"grid "3x3""#, r"a\b", r#"tricky\"#, r#"end\""#] {
            let traces = vec![ScopeTrace {
                section: 0,
                trial: 0,
                replica: 0,
                world: 0,
                label: label.into(),
                seed: 7,
                events: vec![ev(1, 0, EventKind::TxEnd { receivers: 0 })],
            }];
            let back = parse_jsonl(&traces_to_jsonl(&traces)).expect("parse");
            assert_eq!(back[0].label, label);
            assert_eq!(back[0].events, traces[0].events);
        }
    }
}
