//! # iiot-sim — deterministic discrete-event simulator for the sensing and actuation layer
//!
//! This crate is the hardware substitute for the reproduction of
//! *"A Distributed Systems Perspective on Industrial IoT"* (Iwanicki,
//! ICDCS 2018): a deterministic discrete-event simulation kernel that
//! stands in for the low-power wireless testbeds the paper's claims are
//! grounded in.
//!
//! The kernel provides:
//!
//! * integer-microsecond [`time`], a totally ordered event queue, and a
//!   per-node seeded RNG — runs are bit-for-bit reproducible per seed;
//! * a [`radio`] medium with unit-disk, lossy-disk and log-distance/
//!   sigmoid-PRR link models, collisions with capture, CCA, channels and
//!   administrative partitions — candidate receivers are found through a
//!   [`spatial`] grid index, so per-transmission cost is O(neighbours)
//!   rather than O(nodes);
//! * per-node [`energy`] accounting (sleep/listen/transmit residency,
//!   charge, projected battery lifetime);
//! * per-node drifting oscillators ([`clock`]): protocols read
//!   [`Ctx::local_time`](world::Ctx::local_time) instead of perfect
//!   global time, making clock drift a first-class fault model;
//! * [`topology`] generators for the deployment shapes industrial IoT
//!   dictates (lines, grids, uniform scatters, machine clusters);
//! * fault injection (node crash/recovery, link failures, partitions)
//!   via [`World::kill`](world::World::kill) and friends;
//! * [`trace`] counters and sample series for experiment reporting;
//! * structured [`obs`] events, spans and recorders: zero-cost when
//!   disabled, and the substrate of `--trace` dumps and `trace_report`.
//!
//! Protocols implement [`node::Proto`] and act through [`world::Ctx`];
//! experiments assemble worlds through [`sim::SimBuilder`], which also
//! selects sharded multi-core execution via [`sim::ShardConfig`].
//!
//! # Examples
//!
//! ```
//! use iiot_sim::prelude::*;
//!
//! /// Broadcast one hello and count how many neighbours answer.
//! struct Hello { replies: u32 }
//!
//! impl Proto for Hello {
//!     fn start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.radio_on().expect("radio");
//!         if ctx.id() == NodeId(0) {
//!             // Delay the hello so every neighbour has booted its radio.
//!             ctx.set_timer(SimDuration::from_millis(10), 0);
//!         }
//!     }
//!     fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
//!         ctx.transmit(Dst::Broadcast, 0, b"hi".to_vec()).expect("tx");
//!     }
//!     fn frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, _info: RxInfo) {
//!         if frame.payload == b"hi" {
//!             ctx.transmit(Dst::Unicast(frame.src), 0, b"yo".to_vec()).ok();
//!         } else {
//!             self.replies += 1;
//!         }
//!     }
//! }
//!
//! let mut sim = SimBuilder::new()
//!     .seed(42)
//!     .nodes(Topology::line(3, 20.0), |_| Box::new(Hello { replies: 0 }))
//!     .build();
//! sim.run(SimDuration::from_secs(1));
//! // Only the immediate neighbour is in the 30 m unit-disk range.
//! assert_eq!(sim.proto::<Hello>(NodeId(0)).replies, 1);
//! ```
//!
//! The same build scales out by adding `.sharding(ShardConfig::threaded(4))`:
//! the deployment is split into four spatial stripes advanced by four
//! worker threads under conservative-lookahead synchronization, with
//! results deterministic in `(workload, seed, shard count)`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod energy;
pub mod ids;
pub mod node;
pub mod obs;
pub mod radio;
pub mod seed;
pub(crate) mod shard;
pub mod sim;
pub mod spatial;
pub mod time;
pub mod topology;
pub mod trace;
pub mod world;

pub use clock::ClockModel;
pub use ids::{NodeId, TimerId};
pub use node::{AsAny, Idle, Proto, StateLoss, Timer};
pub use radio::{Dst, Frame, RadioConfig, RadioError, RadioState, RxInfo, TxOutcome};
pub use sim::{Checkpoint, ShardConfig, Sim, SimBuilder};
pub use time::{SimDuration, SimTime};
pub use topology::{Pos, Topology};
pub use world::{Ctx, SimConfig, World};

/// Convenient glob import for building simulations.
pub mod prelude {
    pub use crate::clock::ClockModel;
    pub use crate::energy::{EnergyModel, EnergyUsage};
    pub use crate::ids::{NodeId, TimerId};
    pub use crate::node::{AsAny, Idle, Proto, StateLoss, Timer};
    pub use crate::obs::{Event, EventKind, Recorder, SpanId};
    pub use crate::radio::{
        Dst, Frame, LinkModel, RadioConfig, RadioError, RadioState, RxInfo, TxOutcome,
    };
    pub use crate::sim::{Checkpoint, ShardConfig, Sim, SimBuilder};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Pos, Topology};
    pub use crate::trace::{Stats, Summary};
    pub use crate::world::{Ctx, SimConfig, World};
}
