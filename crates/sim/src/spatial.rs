//! Uniform spatial hashing over node positions.
//!
//! The radio medium's hot path — candidate enumeration in
//! `begin_tx` — is O(N) with an exhaustive scan, even though radio
//! range covers only a handful of neighbours in a large deployment.
//! [`SpatialGrid`] buckets node positions into square cells whose side
//! equals the maximum radio range, so the nodes possibly in range of a
//! transmitter are confined to the 3x3 cell neighbourhood around it:
//! candidate enumeration becomes O(neighbours).
//!
//! The grid is an *over-approximation by construction*: [`SpatialGrid::
//! gather`] returns every id within `cell_size` meters of the query
//! point (and possibly a few farther ones, which the caller's exact
//! range check filters out). Gathered ids come back sorted ascending,
//! so a caller that draws random numbers per candidate visits them in
//! exactly the same order as an exhaustive scan over ascending ids —
//! the property the deterministic radio medium relies on.

use crate::topology::Pos;
use std::collections::HashMap;

/// A uniform grid index over 2D positions, keyed by integer cell
/// coordinates. Positions are static once inserted (the medium never
/// moves nodes), so there is no removal or update API.
///
/// # Examples
///
/// ```
/// use iiot_sim::spatial::SpatialGrid;
/// use iiot_sim::topology::Pos;
///
/// let mut g = SpatialGrid::new(45.0);
/// g.insert(0, Pos::new(0.0, 0.0));
/// g.insert(1, Pos::new(30.0, 0.0));
/// g.insert(2, Pos::new(500.0, 500.0)); // far away: a different cell
///
/// let mut near = Vec::new();
/// g.gather(Pos::new(10.0, 0.0), &mut near);
/// assert_eq!(near, vec![0, 1]); // sorted ascending, far node excluded
/// ```
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
}

impl SpatialGrid {
    /// Creates a grid with square cells of side `cell` meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite and positive.
    pub fn new(cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell size must be finite and positive"
        );
        SpatialGrid {
            cell,
            cells: HashMap::new(),
        }
    }

    /// The cell side length in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of ids inserted.
    pub fn len(&self) -> usize {
        self.cells.values().map(Vec::len).sum()
    }

    /// Whether the grid holds no ids.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn key(&self, p: Pos) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Inserts `id` at `pos`. Ids need not be unique or dense; the
    /// medium uses node indices, inserted in ascending order.
    pub fn insert(&mut self, id: u32, pos: Pos) {
        self.cells.entry(self.key(pos)).or_default().push(id);
    }

    /// Collects into `out` (cleared first) every id whose position is
    /// within `cell_size` meters of `center` — plus possibly some
    /// farther ids from the same 3x3 cell neighbourhood; callers must
    /// still apply their exact range check. `out` comes back sorted
    /// ascending.
    pub fn gather(&self, center: Pos, out: &mut Vec<u32>) {
        out.clear();
        let (cx, cy) = self.key(center);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(ids) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(ids);
                }
            }
        }
        // Each cell holds ids in insertion (ascending) order, but the
        // cells themselves are visited in neighbourhood order; one sort
        // over the (small) gathered set restores global id order.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_covers_full_radius_across_boundaries() {
        // Nodes sitting exactly on cell boundaries and exactly at
        // cell-size distance from the query point must be gathered.
        let mut g = SpatialGrid::new(10.0);
        g.insert(0, Pos::new(10.0, 0.0)); // exactly on a cell edge
        g.insert(1, Pos::new(19.999, 0.0)); // just inside range of x=10
        g.insert(2, Pos::new(0.0, 10.0)); // boundary on the other axis
        g.insert(3, Pos::new(-10.0, 0.0)); // negative coordinates
        let mut out = Vec::new();
        g.gather(Pos::new(10.0, 0.0), &mut out);
        assert!(out.contains(&0) && out.contains(&1) && out.contains(&2));
        g.gather(Pos::new(0.0, 0.0), &mut out);
        // Superset contract: id 1 (19.999 m away) is gathered because
        // it shares the neighbourhood; the caller's range check prunes it.
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn gather_is_sorted_with_colocated_ids() {
        let mut g = SpatialGrid::new(5.0);
        // Co-located nodes, inserted in ascending id order like the
        // medium does, land in one cell and stay sorted.
        for id in 0..8u32 {
            g.insert(id, Pos::new(1.0, 1.0));
        }
        g.insert(8, Pos::new(-0.5, 1.0)); // neighbouring cell
        let mut out = Vec::new();
        g.gather(Pos::new(1.0, 1.0), &mut out);
        assert_eq!(out, (0..9).collect::<Vec<u32>>());
        assert_eq!(g.len(), 9);
        assert!(!g.is_empty());
    }

    #[test]
    fn far_ids_are_not_gathered() {
        let mut g = SpatialGrid::new(10.0);
        g.insert(0, Pos::new(0.0, 0.0));
        g.insert(1, Pos::new(35.0, 0.0)); // > 2 cells away
        let mut out = Vec::new();
        g.gather(Pos::new(0.0, 0.0), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_rejected() {
        let _ = SpatialGrid::new(0.0);
    }
}
