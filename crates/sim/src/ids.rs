//! Identifiers for simulated entities.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a node in the simulated deployment.
///
/// Node ids are dense: the `k`-th node added to a
/// [`World`](crate::world::World) gets id `k`.
///
/// # Examples
///
/// ```
/// use iiot_sim::NodeId;
///
/// let root = NodeId(0);
/// assert_eq!(root.index(), 0);
/// assert_eq!(format!("{root}"), "n0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into per-node arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Handle for a pending timer, used to cancel it.
///
/// Each timer fires at most once; periodic behaviour is built by re-arming.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// A timer id that is never allocated; useful as an initial placeholder.
    pub const NONE: TimerId = TimerId(u64::MAX);

    /// Whether this is the [`TimerId::NONE`] placeholder.
    pub const fn is_none(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Default for TimerId {
    fn default() -> Self {
        TimerId::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_basics() {
        let a = NodeId(7);
        assert_eq!(a.index(), 7);
        assert_eq!(NodeId::from(7u32), a);
        assert_eq!(format!("{a}"), "n7");
        assert_eq!(format!("{a:?}"), "NodeId(7)");
    }

    #[test]
    fn timer_id_none() {
        assert!(TimerId::NONE.is_none());
        assert!(TimerId::default().is_none());
        assert!(!TimerId(3).is_none());
    }
}
