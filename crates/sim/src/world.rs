//! The simulation engine: event queue, node lifecycle, fault injection.

use crate::clock::{ClockModel, LocalClock};
use crate::energy::{EnergyMeter, EnergyModel, EnergyUsage};
use crate::ids::{NodeId, TimerId};
use crate::node::{Proto, StateLoss, Timer};
use crate::obs::{self, Event, EventKind, Recorder, SpanId};
use crate::radio::{
    Dst, Frame, LinkModel, Medium, RadioConfig, RadioError, RadioState, RxEval, TxId,
};
use crate::time::{SimDuration, SimTime};
use crate::topology::{Pos, Topology};
use crate::trace::Stats;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Static world parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; everything random derives from it.
    pub seed: u64,
    /// Radio configuration shared by all nodes.
    pub radio: RadioConfig,
    /// Energy model shared by all nodes.
    pub energy: EnergyModel,
    /// One-way latency of the backhaul "wire" between nodes
    /// (models the IP network between border routers and servers).
    pub wire_latency: SimDuration,
    /// Oscillator fault model shared by all nodes (each node draws its
    /// own parameters from it). Ideal by default.
    pub clock: ClockModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xD15C0,
            radio: RadioConfig::default(),
            energy: EnergyModel::default(),
            wire_latency: SimDuration::from_millis(20),
            clock: ClockModel::default(),
        }
    }
}

impl SimConfig {
    /// Sets the master seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use iiot_sim::prelude::*;
    ///
    /// let cfg = SimConfig::default().seed(7).radius(30.0);
    /// let w = World::new(cfg);
    /// assert_eq!(w.now(), SimTime::ZERO);
    /// ```
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the communication range of disk-shaped link models,
    /// keeping the interference range at 1.5x the communication range.
    /// A [`LinkModel::LogDistance`] link has no sharp radius and is
    /// left unchanged; use [`SimConfig::link`] to replace it.
    #[must_use]
    pub fn radius(mut self, range: f64) -> Self {
        match &mut self.radio.link {
            LinkModel::UnitDisk {
                range_m,
                interference_range_m,
            }
            | LinkModel::LossyDisk {
                range_m,
                interference_range_m,
                ..
            } => {
                *range_m = range;
                *interference_range_m = range * 1.5;
            }
            LinkModel::LogDistance { .. } => {}
        }
        self
    }

    /// Replaces the link model.
    #[must_use]
    pub fn link(mut self, link: LinkModel) -> Self {
        self.radio.link = link;
        self
    }

    /// Replaces the whole radio configuration.
    #[must_use]
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Replaces the energy model.
    #[must_use]
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Sets the one-way backhaul latency.
    #[must_use]
    pub fn wire_latency(mut self, latency: SimDuration) -> Self {
        self.wire_latency = latency;
        self
    }

    /// Replaces the oscillator fault model.
    #[must_use]
    pub fn clock(mut self, clock: ClockModel) -> Self {
        self.clock = clock;
        self
    }
}

#[derive(Debug)]
enum Ev {
    Start {
        node: NodeId,
    },
    Timer {
        node: NodeId,
        id: u64,
        tag: u64,
    },
    TxEnd {
        node: NodeId,
        tx: TxId,
    },
    RxEnd {
        node: NodeId,
        tx: TxId,
    },
    Wire {
        to: NodeId,
        from: NodeId,
        payload: Vec<u8>,
    },
    Action(usize),
}

/// A cross-shard event captured by the routing hook instead of being
/// queued locally; delivered to the owning shard at the next lookahead
/// barrier (see [`crate::shard`]).
#[derive(Debug)]
pub(crate) enum StagedEv {
    /// A scheduled reception at a node owned by another shard. `tx` is
    /// the *origin* shard's transmission id; the receiving shard
    /// rewrites it to its adopted copy of the record.
    RxEnd {
        /// When the reception evaluates (transmission end).
        time: SimTime,
        /// The foreign receiver.
        node: NodeId,
        /// Origin-shard transmission id.
        tx: TxId,
    },
    /// A backhaul message to a node owned by another shard.
    Wire {
        /// Arrival time (send time + wire latency).
        time: SimTime,
        /// The foreign destination.
        to: NodeId,
        /// The sender.
        from: NodeId,
        /// Message bytes.
        payload: Vec<u8>,
    },
}

/// Per-replica shard routing state, installed by the sharded engine.
/// When present, [`Kernel::push`] diverts events targeting foreign
/// nodes into `out_events` and notes border transmissions whose record
/// must be echoed to audible neighbour shards.
pub(crate) struct ShardRoute {
    /// `own[i]` — node `i` is owned (dispatched) by this shard.
    pub(crate) own: Vec<bool>,
    /// Per-node bitmask of *other* shards with at least one node within
    /// the medium's maximum audible range (conservative superset).
    pub(crate) echo_mask: Vec<u64>,
    /// Cross-shard events staged during the current window.
    pub(crate) out_events: Vec<StagedEv>,
    /// Border transmissions of this window: `(tx, foreign-shard mask)`.
    /// The engine exports each record once at the barrier.
    pub(crate) out_echoes: Vec<(TxId, u64)>,
}

impl ShardRoute {
    /// Routes `ev`: returns it unchanged when it stays in this shard,
    /// or stages it (releasing its pending slot in the medium, for
    /// receptions) and returns `None`.
    fn route(&mut self, medium: &mut Medium, time: SimTime, ev: Ev) -> Option<Ev> {
        match ev {
            Ev::TxEnd { node, tx } => {
                let mask = self.echo_mask[node.index()];
                if mask != 0 {
                    self.out_echoes.push((tx, mask));
                }
                Some(Ev::TxEnd { node, tx })
            }
            Ev::RxEnd { node, tx } if !self.own[node.index()] => {
                // The origin record counts one pending RxEnd per
                // candidate; the foreign reception evaluates against
                // the *adopted* copy instead.
                medium.release_pending(tx);
                self.out_events.push(StagedEv::RxEnd { time, node, tx });
                None
            }
            Ev::Wire { to, from, payload } if !self.own[to.index()] => {
                self.out_events.push(StagedEv::Wire {
                    time,
                    to,
                    from,
                    payload,
                });
                None
            }
            other => Some(other),
        }
    }
}

struct QEntry {
    time: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Everything the engine owns besides the protocol objects. Split out so
/// a node's protocol can be borrowed mutably at the same time as the
/// kernel (via [`Ctx`]).
// `repr(C)` pins the field order so `obs_on` shares a cache line with
// `now` and `seq`, which every dispatched event touches anyway: the
// per-event "is a recorder installed?" test must never miss in L1.
#[repr(C)]
pub(crate) struct Kernel {
    now: SimTime,
    seq: u64,
    /// Mirror of `recorder.is_some()`, kept hot; the recorder box
    /// itself lives with the cold fields below.
    obs_on: bool,
    queue: BinaryHeap<Reverse<QEntry>>,
    medium: Medium,
    energy_model: EnergyModel,
    meters: Vec<EnergyMeter>,
    rngs: Vec<SmallRng>,
    stats: Stats,
    cancelled: HashSet<u64>,
    next_timer: u64,
    wire_latency: SimDuration,
    seed: u64,
    clock_model: ClockModel,
    /// Per-node oscillators. Clock state survives crashes: hardware
    /// oscillators keep ticking while the MCU reboots.
    clocks: Vec<LocalClock>,
    /// Structured-event sink; `None` (the default) makes every
    /// emission a single branch on `obs_on`.
    recorder: Option<Box<dyn Recorder>>,
    /// Reused scratch for per-transmission receiver schedules, so the
    /// hot transmit path allocates nothing in steady state.
    tx_schedule: Vec<NodeId>,
    /// Total events dispatched since construction (the simulator's
    /// natural unit of work, reported by perf harnesses).
    dispatched: u64,
    /// Shard routing table, installed only by the sharded engine.
    /// `None` in every standalone world: the hot path pays one branch.
    shard: Option<Box<ShardRoute>>,
}

impl Kernel {
    fn push(&mut self, time: SimTime, ev: Ev) {
        debug_assert!(time >= self.now, "scheduling into the past");
        let ev = if let Some(route) = self.shard.as_deref_mut() {
            match route.route(&mut self.medium, time, ev) {
                Some(ev) => ev,
                None => return, // staged for a foreign shard
            }
        } else {
            ev
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QEntry { time, seq, ev }));
    }

    fn sync_meter(&mut self, node: NodeId) {
        let state = self.medium.state(node);
        self.meters[node.index()].transition(self.now, state);
    }

    /// Hot-path wrapper: a pointer test when no recorder is installed,
    /// with all event construction kept out of line so instrumented
    /// loops stay tight in the common (disabled) case.
    #[inline]
    fn emit(&mut self, node: NodeId, span: SpanId, kind: EventKind) {
        if self.obs_on {
            self.emit_slow(node, span, kind);
        }
    }

    #[cold]
    #[inline(never)]
    fn emit_slow(&mut self, node: NodeId, span: SpanId, kind: EventKind) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(&Event {
                t: self.now,
                node,
                span,
                kind,
            });
        }
    }
}

/// The world: a set of nodes with protocol stacks, a shared radio
/// medium, an event queue and fault-injection hooks.
///
/// # Examples
///
/// ```
/// use iiot_sim::prelude::*;
///
/// let mut world = World::new(SimConfig::default());
/// let a = world.add_node(Pos::new(0.0, 0.0), Box::new(Idle));
/// let b = world.add_node(Pos::new(10.0, 0.0), Box::new(Idle));
/// world.run_for(SimDuration::from_secs(1));
/// assert_eq!(world.now(), SimTime::from_secs(1));
/// assert_ne!(a, b);
/// ```
pub struct World {
    kernel: Kernel,
    protos: Vec<Box<dyn Proto>>,
    alive: Vec<bool>,
    actions: Vec<DeferredAction>,
    state_loss: StateLoss,
}

/// A deferred world mutation scheduled from inside the event loop.
type DeferredAction = Option<Box<dyn FnOnce(&mut World) + Send>>;

impl World {
    /// Creates an empty world.
    pub fn new(config: SimConfig) -> Self {
        // Under `--trace` (global capture enabled + an active worker
        // scope on this thread) new worlds record into the global sink;
        // otherwise emission stays disabled.
        let recorder = obs::capture_recorder(config.seed);
        Self::with_recorder(config, recorder)
    }

    /// Creates an empty world that does *not* register with the global
    /// trace-capture sink. Shard replicas use this: a sharded `Sim` is
    /// one logical world and must consume exactly one capture slot,
    /// which the engine claims itself.
    pub(crate) fn new_uncaptured(config: SimConfig) -> Self {
        Self::with_recorder(config, None)
    }

    fn with_recorder(config: SimConfig, recorder: Option<Box<dyn Recorder>>) -> Self {
        let mut w = World {
            kernel: Kernel {
                now: SimTime::ZERO,
                queue: BinaryHeap::new(),
                seq: 0,
                medium: Medium::new(config.radio),
                energy_model: config.energy,
                meters: Vec::new(),
                rngs: Vec::new(),
                stats: Stats::new(),
                cancelled: HashSet::new(),
                next_timer: 0,
                wire_latency: config.wire_latency,
                seed: config.seed,
                clock_model: config.clock,
                clocks: Vec::new(),
                recorder,
                obs_on: false, // synced below from `recorder`
                tx_schedule: Vec::new(),
                dispatched: 0,
                shard: None,
            },
            protos: Vec::new(),
            alive: Vec::new(),
            actions: Vec::new(),
            state_loss: StateLoss::default(),
        };
        w.kernel.obs_on = w.kernel.recorder.is_some();
        w
    }

    /// Adds a node at `pos` running `proto`. Its [`Proto::start`] runs at
    /// the current simulation time, before any later event.
    pub fn add_node(&mut self, pos: Pos, proto: Box<dyn Proto>) -> NodeId {
        let id = self.add_node_silent(pos, proto);
        let now = self.kernel.now;
        self.kernel.push(now, Ev::Start { node: id });
        id
    }

    /// Adds a node without scheduling its [`Proto::start`]. Shard
    /// replicas register *foreign* nodes this way: their position,
    /// radio state, RNG and clock must exist (candidate enumeration
    /// and CCA read them) but their protocol never runs here — the
    /// owning shard dispatches it. Keeping construction otherwise
    /// identical to [`World::add_node`] makes per-node seeds and clock
    /// draws byte-identical across replicas by construction.
    pub(crate) fn add_node_silent(&mut self, pos: Pos, proto: Box<dyn Proto>) -> NodeId {
        let id = self.kernel.medium.add_node(pos);
        debug_assert_eq!(id.index(), self.protos.len());
        self.protos.push(proto);
        self.alive.push(true);
        let mut meter = EnergyMeter::new();
        meter.transition(self.kernel.now, RadioState::Off);
        self.kernel.meters.push(meter);
        let node_seed = self
            .kernel
            .seed
            .wrapping_add((id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.kernel.rngs.push(SmallRng::seed_from_u64(node_seed));
        // The oscillator draws from its own seed stream so enabling
        // drift never perturbs protocol RNG sequences (and an ideal
        // model reproduces pre-clock-model runs bit for bit).
        let clock_seed = crate::seed::derive(
            crate::seed::derive_labeled(self.kernel.seed, "clock"),
            id.0 as u64,
        );
        let born_at = self.kernel.now;
        self.kernel.clocks.push(LocalClock::new(
            &self.kernel.clock_model,
            clock_seed,
            born_at,
        ));
        id
    }

    /// Adds one node per position in `topo`, all running protocols
    /// produced by `make`. Returns the ids in order.
    pub fn add_nodes<F>(&mut self, topo: &Topology, mut make: F) -> Vec<NodeId>
    where
        F: FnMut(usize) -> Box<dyn Proto>,
    {
        (0..topo.len())
            .map(|i| self.add_node(topo.pos(i), make(i)))
            .collect()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.protos.len()
    }

    /// Total events dispatched so far — the simulator's natural unit of
    /// work. Deterministic per seed and workload, independent of wall
    /// clock, which makes it the right quantity for perf *gates* (the
    /// count must not drift) as opposed to perf *tracking* (timings).
    pub fn events_dispatched(&self) -> u64 {
        self.kernel.dispatched
    }

    /// Enables or disables the radio medium's spatial candidate index
    /// (on by default when the link model has a finite range).
    ///
    /// Both settings produce byte-identical simulations; the switch
    /// exists so benchmarks can measure the exhaustive O(nodes) scan
    /// against the O(neighbours) grid on the same workload.
    pub fn set_spatial_index(&mut self, on: bool) {
        self.kernel.medium.set_spatial_index(on);
    }

    /// Whether the spatial candidate index is currently in use.
    pub fn spatial_index_active(&self) -> bool {
        self.kernel.medium.spatial_index_active()
    }

    /// Shared medium (read access: stats, radio states, positions).
    pub fn medium(&self) -> &Medium {
        &self.kernel.medium
    }

    /// Mutable medium access for link fault injection and partitions.
    pub fn medium_mut(&mut self) -> &mut Medium {
        &mut self.kernel.medium
    }

    /// Collected statistics.
    pub fn stats(&self) -> &Stats {
        &self.kernel.stats
    }

    /// Mutable statistics (for experiment bookkeeping outside protocols).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.kernel.stats
    }

    /// Installs `recorder` as the structured-event sink. Replaces any
    /// previous recorder (the old one is dropped).
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.kernel.recorder = Some(recorder);
        self.kernel.obs_on = true;
    }

    /// Removes and returns the installed recorder, disabling emission.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.kernel.obs_on = false;
        self.kernel.recorder.take()
    }

    /// Whether a recorder is installed.
    pub fn has_recorder(&self) -> bool {
        self.kernel.recorder.is_some()
    }

    /// The installed recorder downcast to `T`, if its type matches.
    pub fn recorder_as<T: Recorder>(&self) -> Option<&T> {
        self.kernel
            .recorder
            .as_deref()
            .and_then(|r| r.as_any().downcast_ref::<T>())
    }

    /// Mutable access to the installed recorder downcast to `T`.
    pub fn recorder_as_mut<T: Recorder>(&mut self) -> Option<&mut T> {
        self.kernel
            .recorder
            .as_deref_mut()
            .and_then(|r| r.as_any_mut().downcast_mut::<T>())
    }

    /// Energy usage of `node` as of the current time.
    pub fn energy(&self, node: NodeId) -> EnergyUsage {
        self.kernel.meters[node.index()].snapshot(self.kernel.now)
    }

    /// The world energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.kernel.energy_model
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Immutable access to a node's protocol, downcast to `T`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol of `node` is not a `T`.
    pub fn proto<T: Proto>(&self, node: NodeId) -> &T {
        self.protos[node.index()]
            .as_any()
            .downcast_ref::<T>()
            .expect("protocol type mismatch")
    }

    /// Mutable access to a node's protocol, downcast to `T`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol of `node` is not a `T`.
    pub fn proto_mut<T: Proto>(&mut self, node: NodeId) -> &mut T {
        self.protos[node.index()]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("protocol type mismatch")
    }

    /// The local (drifting) clock reading of `node` at the current
    /// simulation time — the oracle view of what [`Ctx::local_time`]
    /// would return, for measuring synchronization error from outside.
    pub fn local_time_of(&mut self, node: NodeId) -> SimTime {
        let now = self.kernel.now;
        self.kernel.clocks[node.index()].read(now)
    }

    /// Runs a closure with a [`Ctx`] for `node`, e.g. to inject an
    /// application-level request from a test.
    pub fn with_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn Proto, &mut Ctx<'_>) -> R,
    ) -> R {
        let kernel = &mut self.kernel;
        let proto = &mut self.protos[node.index()];
        let mut ctx = Ctx { kernel, node };
        f(proto.as_mut(), &mut ctx)
    }

    /// Schedules `f` to run on the world at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut World) + Send + 'static) {
        assert!(at >= self.kernel.now, "cannot schedule into the past");
        let idx = self.actions.len();
        self.actions.push(Some(Box::new(f)));
        self.kernel.push(at, Ev::Action(idx));
    }

    /// What crashed nodes retain: RAM loss only (the default) or a full
    /// wipe including "flash". See [`StateLoss`].
    pub fn set_state_loss(&mut self, loss: StateLoss) {
        self.state_loss = loss;
    }

    /// The current crash [`StateLoss`] policy.
    pub fn state_loss(&self) -> StateLoss {
        self.state_loss
    }

    /// Kills `node` now: radio off, pending behaviour stops, volatile
    /// protocol state is cleared via [`Proto::crashed`] (or, under
    /// [`StateLoss::Full`], everything via [`Proto::wiped`]).
    pub fn kill(&mut self, node: NodeId) {
        if !self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = false;
        self.kernel.emit(
            node,
            SpanId::NONE,
            EventKind::Fault {
                kind: if self.state_loss == StateLoss::Full {
                    "crash_wipe"
                } else {
                    "crash"
                },
                peer: None,
            },
        );
        self.kernel.medium.set_alive(node, false);
        self.kernel.sync_meter(node);
        match self.state_loss {
            StateLoss::Ram => self.protos[node.index()].crashed(),
            StateLoss::Full => self.protos[node.index()].wiped(),
        }
    }

    /// Revives a dead node: it boots again through [`Proto::start`].
    pub fn revive(&mut self, node: NodeId) {
        if self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = true;
        self.kernel.emit(
            node,
            SpanId::NONE,
            EventKind::Fault {
                kind: "recover",
                peer: None,
            },
        );
        self.kernel.medium.set_alive(node, true);
        self.kernel.sync_meter(node);
        let now = self.kernel.now;
        self.kernel.push(now, Ev::Start { node });
    }

    /// Schedules a kill at `at`.
    pub fn kill_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule(at, move |w| w.kill(node));
    }

    /// Schedules a revive at `at`.
    pub fn revive_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule(at, move |w| w.revive(node));
    }

    /// Administratively severs the link between `a` and `b` (both
    /// ways), emitting a `link_down` fault event. Prefer this over
    /// [`Medium::block_link`] via [`World::medium_mut`] so the fault
    /// shows up in traces.
    pub fn block_link(&mut self, a: NodeId, b: NodeId) {
        self.kernel.emit(
            a,
            SpanId::NONE,
            EventKind::Fault {
                kind: "link_down",
                peer: Some(b),
            },
        );
        self.kernel.medium.block_link(a, b);
    }

    /// Restores a previously severed link, emitting a `link_up` fault
    /// event.
    pub fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        self.kernel.emit(
            a,
            SpanId::NONE,
            EventKind::Fault {
                kind: "link_up",
                peer: Some(b),
            },
        );
        self.kernel.medium.unblock_link(a, b);
    }

    /// Enables or disables the network partition (see
    /// [`Medium::set_partitioned`]), emitting a `partition`/`heal`
    /// fault event. The event is attributed to node 0 because the
    /// partition is a global condition.
    pub fn set_partitioned(&mut self, on: bool) {
        self.kernel.emit(
            NodeId(0),
            SpanId::NONE,
            EventKind::Fault {
                kind: if on { "partition" } else { "heal" },
                peer: None,
            },
        );
        self.kernel.medium.set_partitioned(on);
    }

    /// Runs the simulation until `deadline` (inclusive of events at the
    /// deadline); afterwards `now() == deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(front)) = self.kernel.queue.peek() {
            if front.time > deadline {
                break;
            }
            let Reverse(entry) = self.kernel.queue.pop().expect("peeked");
            debug_assert!(entry.time >= self.kernel.now);
            self.kernel.now = entry.time;
            self.dispatch(entry.ev);
        }
        self.kernel.now = deadline;
    }

    /// Runs the simulation for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.kernel.now + d;
        self.run_until(deadline);
    }

    /// Runs until the event queue drains or `deadline` passes, whichever
    /// comes first. Returns `true` if the queue drained.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        loop {
            let Some(Reverse(front)) = self.kernel.queue.peek() else {
                return true;
            };
            if front.time > deadline {
                self.kernel.now = deadline;
                return false;
            }
            let Reverse(entry) = self.kernel.queue.pop().expect("peeked");
            self.kernel.now = entry.time;
            self.dispatch(entry.ev);
        }
    }

    // ---- shard-engine surface (crate-private) -------------------------
    //
    // The sharded engine in `crate::shard` drives replicas through these
    // hooks. None of them is reachable from a standalone `World`.

    /// Installs (or removes) the shard routing table.
    pub(crate) fn set_shard_route(&mut self, route: Option<Box<ShardRoute>>) {
        self.kernel.shard = route;
    }

    /// Timestamp of the earliest queued event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.kernel.queue.peek().map(|Reverse(e)| e.time)
    }

    /// Runs every event strictly *before* `bound`, then advances the
    /// clock to `bound`. The exclusive counterpart of
    /// [`World::run_until`], used for lookahead windows: events at the
    /// window edge belong to the next window, after the barrier has
    /// delivered any cross-shard events carrying that same timestamp.
    pub(crate) fn run_until_before(&mut self, bound: SimTime) {
        while let Some(Reverse(front)) = self.kernel.queue.peek() {
            if front.time >= bound {
                break;
            }
            let Reverse(entry) = self.kernel.queue.pop().expect("peeked");
            debug_assert!(entry.time >= self.kernel.now);
            self.kernel.now = entry.time;
            self.dispatch(entry.ev);
        }
        self.kernel.now = bound;
    }

    /// Drains the events and border-transmission notes staged by the
    /// routing hook during the last window.
    pub(crate) fn take_staged(&mut self) -> (Vec<StagedEv>, Vec<(TxId, u64)>) {
        let route = self
            .kernel
            .shard
            .as_deref_mut()
            .expect("take_staged on unsharded world");
        (
            std::mem::take(&mut route.out_events),
            std::mem::take(&mut route.out_echoes),
        )
    }

    /// Queues a reception delivered from another shard. `tx` must
    /// already be rewritten to this replica's adopted record id.
    pub(crate) fn inject_rx_end(&mut self, time: SimTime, node: NodeId, tx: TxId) {
        self.kernel.push(time, Ev::RxEnd { node, tx });
    }

    /// Queues a backhaul message delivered from another shard.
    pub(crate) fn inject_wire(
        &mut self,
        time: SimTime,
        to: NodeId,
        from: NodeId,
        payload: Vec<u8>,
    ) {
        self.kernel.push(time, Ev::Wire { to, from, payload });
    }

    /// Mirrors a foreign node's liveness without side effects (no fault
    /// event, no meter transition, no protocol callback — all of that
    /// happens in the owning shard).
    pub(crate) fn set_foreign_alive(&mut self, node: NodeId, alive: bool) {
        self.alive[node.index()] = alive;
        self.kernel.medium.set_alive(node, alive);
    }

    /// Applies a foreign node's radio-state snapshot received at a
    /// shard barrier (see [`crate::radio::NodeStateSnap`]).
    pub(crate) fn apply_foreign_snap(&mut self, snap: &crate::radio::NodeStateSnap) {
        self.alive[snap.node as usize] = snap.alive;
        self.kernel.medium.apply_snap(snap);
    }

    // -------------------------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        self.kernel.dispatched += 1;
        match ev {
            Ev::Action(idx) => {
                if let Some(f) = self.actions[idx].take() {
                    f(self);
                }
            }
            Ev::Start { node } => {
                if self.alive[node.index()] {
                    self.call(node, |p, ctx| p.start(ctx));
                }
            }
            Ev::Timer { node, id, tag } => {
                if self.kernel.cancelled.remove(&id) {
                    return;
                }
                if self.alive[node.index()] {
                    self.call(node, |p, ctx| {
                        p.timer(
                            ctx,
                            Timer {
                                id: TimerId(id),
                                tag,
                            },
                        )
                    });
                }
            }
            Ev::TxEnd { node, tx } => {
                let expired_before = self.kernel.medium.stats().lost_expired;
                let outcome = self.kernel.medium.end_tx(tx, self.kernel.now);
                if self.kernel.medium.stats().lost_expired != expired_before {
                    // The record was pruned before its own TxEnd — the
                    // global `lost_expired` bump alone cannot say *whose*
                    // transmission aged out.
                    self.kernel.stats.inc_node(node, "expired_txid", 1.0);
                }
                self.kernel.sync_meter(node);
                self.kernel.emit(
                    node,
                    SpanId::NONE,
                    EventKind::TxEnd {
                        receivers: outcome.oracle_receivers as u32,
                    },
                );
                if self.alive[node.index()] {
                    self.call(node, |p, ctx| p.tx_done(ctx, outcome));
                }
            }
            Ev::RxEnd { node, tx } => {
                let eval = self.kernel.medium.eval_rx(tx, node, self.kernel.now);
                match eval {
                    RxEval::Deliver(frame, info) => {
                        self.kernel.emit(
                            node,
                            SpanId::NONE,
                            EventKind::RxDeliver {
                                src: frame.src,
                                port: frame.port,
                            },
                        );
                        if self.alive[node.index()] {
                            self.call(node, |p, ctx| p.frame(ctx, &frame, info));
                        }
                        // The delivered clone is dead now; hand its
                        // payload buffer back to the medium's pool.
                        self.kernel.medium.recycle_payload(frame.payload);
                    }
                    RxEval::Dropped(reason, src) => {
                        if reason == crate::radio::DropReason::Expired {
                            self.kernel.stats.inc_node(node, "expired_txid", 1.0);
                        }
                        self.kernel.emit(
                            node,
                            SpanId::NONE,
                            EventKind::RxDrop {
                                cause: reason.name(),
                                src,
                            },
                        );
                    }
                }
            }
            Ev::Wire { to, from, payload } => {
                if self.alive[to.index()] {
                    self.call(to, |p, ctx| p.wire(ctx, from, &payload));
                }
            }
        }
    }

    fn call(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Proto, &mut Ctx<'_>)) {
        let kernel = &mut self.kernel;
        let proto = &mut self.protos[node.index()];
        let mut ctx = Ctx { kernel, node };
        f(proto.as_mut(), &mut ctx);
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.kernel.now)
            .field("nodes", &self.protos.len())
            .field("queued_events", &self.kernel.queue.len())
            .finish()
    }
}

/// The per-callback handle through which protocols act on the world.
///
/// A `Ctx` is only valid during one callback; all its operations are
/// attributed to the node the callback was delivered to.
pub struct Ctx<'a> {
    kernel: &'a mut Kernel,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The node this callback belongs to.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// This node's position.
    pub fn pos(&self) -> Pos {
        self.kernel.medium.pos(self.node)
    }

    /// Total number of nodes in the world (deployment-time knowledge).
    pub fn node_count(&self) -> usize {
        self.kernel.medium.node_count()
    }

    /// The shared radio configuration (bitrates, frame limits, ranges).
    pub fn radio(&self) -> &RadioConfig {
        self.kernel.medium.config()
    }

    /// This node's deterministic random source.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.kernel.rngs[self.node.index()]
    }

    /// This node's local clock reading: what the node's own (possibly
    /// drifting) oscillator shows right now. Under the default ideal
    /// [`crate::clock::ClockModel`] this equals [`Ctx::now`] exactly.
    ///
    /// Protocols that claim realistic timing must schedule off this
    /// clock (via [`Ctx::set_timer_local`]), never off [`Ctx::now`] —
    /// real motes have no access to perfect global time.
    pub fn local_time(&mut self) -> SimTime {
        let now = self.kernel.now;
        self.kernel.clocks[self.node.index()].read(now)
    }

    /// Arms a one-shot timer that fires after `delay` *as measured by
    /// this node's local clock*, like a hardware timer counting local
    /// oscillator ticks. Under an ideal clock model this is exactly
    /// [`Ctx::set_timer`].
    pub fn set_timer_local(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let now = self.kernel.now;
        let world_delay = self.kernel.clocks[self.node.index()].world_delay(now, delay);
        self.set_timer(world_delay, tag)
    }

    /// Arms a one-shot timer firing after `delay`, carrying `tag`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.set_timer_at(self.kernel.now + delay, tag)
    }

    /// Arms a one-shot timer firing at absolute time `at`, carrying `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_timer_at(&mut self, at: SimTime, tag: u64) -> TimerId {
        assert!(at >= self.kernel.now, "timer in the past");
        let id = self.kernel.next_timer;
        self.kernel.next_timer += 1;
        self.kernel.push(
            at,
            Ev::Timer {
                node: self.node,
                id,
                tag,
            },
        );
        TimerId(id)
    }

    /// Cancels a pending timer. Cancelling an already-fired or
    /// [`TimerId::NONE`] timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if !id.is_none() {
            self.kernel.cancelled.insert(id.0);
        }
    }

    /// Powers the radio on (listening).
    ///
    /// # Errors
    ///
    /// Fails only if the node is dead (cannot happen from a live callback).
    pub fn radio_on(&mut self) -> Result<(), RadioError> {
        self.kernel.medium.radio_on(self.node, self.kernel.now)?;
        self.kernel.sync_meter(self.node);
        Ok(())
    }

    /// Powers the radio off (sleep).
    ///
    /// # Errors
    ///
    /// Fails with [`RadioError::Busy`] while transmitting.
    pub fn radio_off(&mut self) -> Result<(), RadioError> {
        self.kernel.medium.radio_off(self.node)?;
        self.kernel.sync_meter(self.node);
        Ok(())
    }

    /// Current radio state.
    pub fn radio_state(&self) -> RadioState {
        self.kernel.medium.state(self.node)
    }

    /// Retunes the radio to `channel`.
    ///
    /// # Errors
    ///
    /// Fails with [`RadioError::Busy`] while transmitting.
    pub fn set_channel(&mut self, channel: u8) -> Result<(), RadioError> {
        self.kernel
            .medium
            .set_channel(self.node, channel, self.kernel.now)
    }

    /// The radio's current channel.
    pub fn channel(&self) -> u8 {
        self.kernel.medium.channel(self.node)
    }

    /// Enables or disables promiscuous reception (overhearing).
    pub fn set_promiscuous(&mut self, on: bool) {
        self.kernel.medium.set_promiscuous(self.node, on);
    }

    /// Clear channel assessment: `true` if an audible transmission is in
    /// the air right now.
    pub fn cca_busy(&self) -> bool {
        self.kernel.medium.cca_busy(self.node, self.kernel.now)
    }

    /// Starts transmitting `payload` to `dst` on the demux `port`.
    /// Completion is signalled via [`Proto::tx_done`].
    ///
    /// # Errors
    ///
    /// Returns [`RadioError::Off`] if the radio is off, [`RadioError::Busy`]
    /// if a transmission is in progress, or [`RadioError::FrameTooLarge`].
    pub fn transmit(&mut self, dst: Dst, port: u8, payload: Vec<u8>) -> Result<(), RadioError> {
        let bytes = payload.len() as u32;
        let frame = Frame::new(self.node, dst, port, payload);
        let node = self.node;
        // Borrow dance: rng and medium are both in the kernel.
        // The schedule lands in a kernel-owned scratch vector that is
        // reused across transmissions (taken while the medium borrow is
        // live, put back after the events are queued).
        let mut schedule = std::mem::take(&mut self.kernel.tx_schedule);
        let res = {
            let Kernel {
                medium, rngs, now, ..
            } = &mut *self.kernel;
            medium.start_tx_into(frame, *now, &mut rngs[node.index()], &mut schedule)
        };
        let (tx, end) = match res {
            Ok(ok) => ok,
            Err(e) => {
                self.kernel.tx_schedule = schedule;
                return Err(e);
            }
        };
        self.kernel.sync_meter(node);
        self.kernel.emit(
            node,
            SpanId::NONE,
            EventKind::TxStart {
                dst: match dst {
                    Dst::Unicast(n) => Some(n),
                    Dst::Broadcast => None,
                },
                port,
                bytes,
            },
        );
        self.kernel.push(end, Ev::TxEnd { node, tx });
        for &r in &schedule {
            self.kernel.push(end, Ev::RxEnd { node: r, tx });
        }
        self.kernel.tx_schedule = schedule;
        Ok(())
    }

    /// Sends `payload` over the backhaul wire to `to`, arriving after the
    /// configured wire latency. Only meaningful between nodes that are
    /// conceptually wired (border routers, servers); the medium does not
    /// check this.
    pub fn wire_send(&mut self, to: NodeId, payload: Vec<u8>) {
        let at = self.kernel.now + self.kernel.wire_latency;
        let from = self.node;
        self.kernel.push(at, Ev::Wire { to, from, payload });
    }

    /// Adds `v` to the global counter `name`.
    pub fn count(&mut self, name: &str, v: f64) {
        self.kernel.stats.inc(name, v);
    }

    /// Adds `v` to this node's counter `name`.
    pub fn count_node(&mut self, name: &str, v: f64) {
        self.kernel.stats.inc_node(self.node, name, v);
    }

    /// Appends a raw sample to the series `name`.
    pub fn record(&mut self, name: &str, v: f64) {
        self.kernel.stats.record(name, v);
    }

    /// Records `v` into the bounded histogram `name` (see
    /// [`Stats::observe`]).
    #[inline]
    pub fn observe(&mut self, name: &str, v: f64) {
        self.kernel.stats.observe(name, v);
    }

    /// Read access to all statistics.
    pub fn stats(&self) -> &Stats {
        &self.kernel.stats
    }

    /// Whether a structured-event recorder is installed. Protocols may
    /// use this to skip *computing* expensive event payloads; plain
    /// [`Ctx::emit`] calls are already a single branch when disabled.
    #[inline]
    pub fn obs_enabled(&self) -> bool {
        self.kernel.obs_on
    }

    /// Emits a structured event attributed to this node, outside any
    /// span. A no-op unless a recorder is installed.
    #[inline]
    pub fn emit(&mut self, kind: EventKind) {
        self.kernel.emit(self.node, SpanId::NONE, kind);
    }

    /// Emits a structured event stitched into `span` (see [`SpanId`]).
    #[inline]
    pub fn emit_span(&mut self, span: SpanId, kind: EventKind) {
        self.kernel.emit(self.node, span, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Idle;
    use crate::radio::RxInfo;

    /// Ping-pong: node A unicasts to B, B replies, A records latency.
    struct Ping {
        peer: NodeId,
        initiator: bool,
        rtts: Vec<f64>,
        sent_at: SimTime,
    }

    impl Ping {
        fn new(peer: NodeId, initiator: bool) -> Self {
            Ping {
                peer,
                initiator,
                rtts: Vec::new(),
                sent_at: SimTime::ZERO,
            }
        }
    }

    impl Proto for Ping {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.radio_on().expect("radio");
            if self.initiator {
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
        }
        fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
            self.sent_at = ctx.now();
            ctx.transmit(Dst::Unicast(self.peer), 1, vec![b'p'])
                .expect("tx");
        }
        fn frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, _info: RxInfo) {
            if frame.payload == [b'p'] {
                ctx.transmit(Dst::Unicast(frame.src), 1, vec![b'r'])
                    .expect("tx reply");
            } else {
                let rtt = ctx.now().duration_since(self.sent_at).as_secs_f64();
                self.rtts.push(rtt);
            }
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut w = World::new(SimConfig::default());
        let a = w.add_node(Pos::new(0.0, 0.0), Box::new(Ping::new(NodeId(1), true)));
        let b = w.add_node(Pos::new(10.0, 0.0), Box::new(Ping::new(NodeId(0), false)));
        assert_eq!((a, b), (NodeId(0), NodeId(1)));
        w.run_for(SimDuration::from_secs(1));
        let ping = w.proto::<Ping>(a);
        assert_eq!(ping.rtts.len(), 1);
        // Two 18-byte frames at 250kb/s: 2 * 576 us = 1.152 ms.
        assert!(
            (ping.rtts[0] - 0.001152).abs() < 1e-6,
            "rtt {}",
            ping.rtts[0]
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let cfg = SimConfig::default().seed(seed);
            let mut w = World::new(cfg);
            let a = w.add_node(Pos::new(0.0, 0.0), Box::new(Ping::new(NodeId(1), true)));
            w.add_node(Pos::new(10.0, 0.0), Box::new(Ping::new(NodeId(0), false)));
            w.run_for(SimDuration::from_secs(1));
            (w.medium().stats(), w.proto::<Ping>(a).rtts.clone())
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn absent_recorder_is_a_no_op() {
        // The same simulation with and without a recorder: identical
        // protocol outcomes and identical Stats — emission must never
        // leak into counters or perturb the run.
        let run = |record: bool| {
            let mut w = World::new(SimConfig::default().seed(3));
            let a = w.add_node(Pos::new(0.0, 0.0), Box::new(Ping::new(NodeId(1), true)));
            w.add_node(Pos::new(10.0, 0.0), Box::new(Ping::new(NodeId(0), false)));
            if record {
                w.set_recorder(Box::new(obs::RingRecorder::new(256)));
            }
            w.kill_at(SimTime::from_millis(500), NodeId(1));
            w.run_for(SimDuration::from_secs(1));
            let events = w
                .take_recorder()
                .map(|r| {
                    r.as_any()
                        .downcast_ref::<obs::RingRecorder>()
                        .expect("ring")
                        .len()
                })
                .unwrap_or(0);
            let mut counters: Vec<(String, f64)> = w
                .stats()
                .counter_names()
                .map(|k| (k.to_string(), w.stats().get(k)))
                .collect();
            counters.sort_by(|x, y| x.0.cmp(&y.0));
            (w.proto::<Ping>(a).rtts.clone(), counters, events)
        };
        let (rtts_off, counters_off, events_off) = run(false);
        let (rtts_on, counters_on, events_on) = run(true);
        assert_eq!(events_off, 0, "no recorder, no events");
        assert!(events_on > 0, "recorder sees tx/rx/fault events");
        assert_eq!(rtts_off, rtts_on, "recording must not change the run");
        assert_eq!(counters_off, counters_on, "counters untouched by emission");
    }

    #[test]
    fn kill_stops_timers_and_revive_restarts() {
        struct Beacons {
            fired: u32,
        }
        impl Proto for Beacons {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(100), 0);
            }
            fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
                self.fired += 1;
                ctx.set_timer(SimDuration::from_millis(100), 0);
            }
            fn crashed(&mut self) {
                self.fired = 0; // volatile state lost
            }
        }
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(Pos::new(0.0, 0.0), Box::new(Beacons { fired: 0 }));
        w.kill_at(SimTime::from_millis(550), n);
        w.revive_at(SimTime::from_secs(2), n);
        w.run_until(SimTime::from_millis(1900));
        // 5 fires before the kill, none after, reset on crash.
        assert_eq!(w.proto::<Beacons>(n).fired, 0);
        assert!(!w.is_alive(n));
        w.run_until(SimTime::from_secs(3));
        assert!(w.is_alive(n));
        let fired = w.proto::<Beacons>(n).fired;
        assert!((9..=11).contains(&fired), "fired {fired} after revive");
    }

    #[test]
    fn state_loss_knob_selects_crashed_or_wiped() {
        /// Keeps a volatile counter and a "flash" checkpoint of it.
        struct Flashy {
            ram: u32,
            flash: u32,
        }
        impl Proto for Flashy {
            fn start(&mut self, _ctx: &mut Ctx<'_>) {
                self.ram = self.flash; // resume from the checkpoint
                self.ram += 1;
                self.flash = self.ram;
            }
            fn crashed(&mut self) {
                self.ram = 0; // RAM lost, flash kept
            }
            fn wiped(&mut self) {
                self.ram = 0;
                self.flash = 0; // flash lost too
            }
        }
        let mk = |loss: StateLoss| {
            let mut w = World::new(SimConfig::default());
            let n = w.add_node(Pos::new(0.0, 0.0), Box::new(Flashy { ram: 0, flash: 0 }));
            w.set_state_loss(loss);
            assert_eq!(w.state_loss(), loss);
            w.kill_at(SimTime::from_millis(100), n);
            w.revive_at(SimTime::from_millis(200), n);
            w.run_for(SimDuration::from_secs(1));
            w.proto::<Flashy>(n).flash
        };
        // Default RAM-only loss: the flash checkpoint survives the
        // reboot, so the second boot increments it to 2.
        assert_eq!(mk(StateLoss::Ram), 2);
        // Full wipe: the second boot starts from zero again.
        assert_eq!(mk(StateLoss::Full), 1);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct C {
            fired: bool,
        }
        impl Proto for C {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                let t = ctx.set_timer(SimDuration::from_millis(10), 0);
                ctx.cancel_timer(t);
                ctx.cancel_timer(TimerId::NONE); // no-op
            }
            fn timer(&mut self, _ctx: &mut Ctx<'_>, _t: Timer) {
                self.fired = true;
            }
        }
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(Pos::new(0.0, 0.0), Box::new(C { fired: false }));
        w.run_for(SimDuration::from_secs(1));
        assert!(!w.proto::<C>(n).fired);
    }

    #[test]
    fn wire_messages_arrive_after_latency() {
        struct W {
            got: Vec<(NodeId, Vec<u8>, SimTime)>,
            send_to: Option<NodeId>,
        }
        impl Proto for W {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                if let Some(to) = self.send_to {
                    ctx.wire_send(to, vec![9, 9]);
                }
            }
            fn wire(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
                self.got.push((from, payload.to_vec(), ctx.now()));
            }
        }
        let mut w = World::new(SimConfig::default());
        let a = w.add_node(
            Pos::new(0.0, 0.0),
            Box::new(W {
                got: vec![],
                send_to: Some(NodeId(1)),
            }),
        );
        let b = w.add_node(
            Pos::new(1000.0, 0.0), // far out of radio range: wire still works
            Box::new(W {
                got: vec![],
                send_to: None,
            }),
        );
        w.run_for(SimDuration::from_secs(1));
        let got = &w.proto::<W>(b).got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, a);
        assert_eq!(got[0].1, vec![9, 9]);
        assert_eq!(got[0].2, SimTime::from_millis(20));
    }

    #[test]
    fn energy_accounting_through_ctx() {
        struct E;
        impl Proto for E {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.radio_on().expect("on");
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
                ctx.radio_off().expect("off");
            }
        }
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(Pos::new(0.0, 0.0), Box::new(E));
        w.run_for(SimDuration::from_secs(10));
        let u = w.energy(n);
        assert_eq!(u.listen, SimDuration::from_secs(1));
        assert_eq!(u.sleep, SimDuration::from_secs(9));
    }

    #[test]
    fn run_until_idle_drains() {
        let mut w = World::new(SimConfig::default());
        w.add_node(Pos::new(0.0, 0.0), Box::new(Idle));
        assert!(w.run_until_idle(SimTime::from_secs(5)));
    }

    #[test]
    fn scheduled_actions_run_in_order() {
        let mut w = World::new(SimConfig::default());
        w.add_node(Pos::new(0.0, 0.0), Box::new(Idle));
        w.schedule(SimTime::from_secs(1), |w| w.stats_mut().record("o", 1.0));
        w.schedule(SimTime::from_secs(2), |w| w.stats_mut().record("o", 2.0));
        w.schedule(SimTime::from_secs(1), |w| w.stats_mut().record("o", 1.5));
        w.run_for(SimDuration::from_secs(3));
        assert_eq!(w.stats().samples("o"), &[1.0, 1.5, 2.0]);
    }

    #[test]
    fn stats_via_ctx() {
        struct S;
        impl Proto for S {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.count("boots", 1.0);
                ctx.count_node("boots", 1.0);
                ctx.record("x", 7.0);
                assert_eq!(ctx.stats().get("boots"), 1.0);
            }
        }
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(Pos::new(0.0, 0.0), Box::new(S));
        w.run_for(SimDuration::from_millis(1));
        assert_eq!(w.stats().get("boots"), 1.0);
        assert_eq!(w.stats().get_node(n, "boots"), 1.0);
        assert_eq!(w.stats().samples("x"), &[7.0]);
    }

    #[test]
    fn expired_txid_drop_counts_per_node() {
        // A reception whose transmission record aged out of the slab is
        // dropped as Expired — the global medium stat says how many, the
        // per-node counter says at which receivers.
        let mut w = World::new(SimConfig::default());
        let _a = w.add_node(Pos::new(0.0, 0.0), Box::new(Idle));
        let b = w.add_node(Pos::new(10.0, 0.0), Box::new(Idle));
        w.run_for(SimDuration::from_millis(1));
        // A TxId no slab record ever matched (generation 7 of slot 0).
        let stale = crate::radio::TxId(7u64 << 32);
        w.inject_rx_end(w.now() + SimDuration::from_millis(1), b, stale);
        w.run_for(SimDuration::from_millis(2));
        assert_eq!(w.medium().stats().lost_expired, 1);
        assert_eq!(w.stats().get_node(b, "expired_txid"), 1.0);
    }
}
