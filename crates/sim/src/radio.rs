//! The shared wireless medium: propagation, packet loss, collisions,
//! carrier sensing, channels and partitions.
//!
//! The model is deliberately protocol-level rather than RF-accurate (see
//! DESIGN.md §0): what the experiments need is a medium in which duty
//! cycling, contention, funneling near border routers and co-channel
//! interference all have the right *shape*. Three link models are
//! provided, from fully deterministic (for unit tests) to lossy sigmoid
//! PRR curves (for experiments).

use crate::ids::NodeId;
use crate::spatial::SpatialGrid;
use crate::time::{SimDuration, SimTime};
use crate::topology::Pos;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Destination of a frame at the link layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Dst {
    /// A single link-layer destination.
    Unicast(NodeId),
    /// All nodes in radio range on the same channel.
    Broadcast,
}

impl Dst {
    /// Whether `node` should accept a frame with this destination
    /// (ignoring promiscuous mode).
    pub fn accepts(self, node: NodeId) -> bool {
        match self {
            Dst::Unicast(n) => n == node,
            Dst::Broadcast => true,
        }
    }
}

/// A link-layer frame on the air.
///
/// `port` is a one-byte demultiplexing field (similar in role to an
/// EtherType or an 802.15.4 payload dispatch byte) that lets several
/// protocols share one radio.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Frame {
    /// Link-layer source.
    pub src: NodeId,
    /// Link-layer destination.
    pub dst: Dst,
    /// Protocol demultiplexing byte.
    pub port: u8,
    /// Payload bytes (on-air length adds [`RadioConfig::overhead_bytes`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame.
    pub fn new(src: NodeId, dst: Dst, port: u8, payload: Vec<u8>) -> Self {
        Frame {
            src,
            dst,
            port,
            payload,
        }
    }
}

/// Reception metadata handed to protocols alongside a frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RxInfo {
    /// Received signal strength in dBm.
    pub rssi_dbm: f64,
    /// Channel the frame was received on.
    pub channel: u8,
    /// When the transmission started.
    pub started: SimTime,
}

/// Outcome of a transmission, reported to the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxOutcome {
    /// Number of link-layer candidates that actually received the frame.
    /// A real radio does not know this; it is exposed for tracing and
    /// must not be used for protocol decisions (use ACKs instead).
    pub oracle_receivers: usize,
}

/// State of a node's radio.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RadioState {
    /// Radio powered down (sleep current).
    #[default]
    Off,
    /// Radio on and listening (receive current).
    Listening,
    /// Radio transmitting a frame.
    Transmitting,
}

/// Errors returned by radio operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RadioError {
    /// The radio is powered off.
    Off,
    /// The radio is already transmitting.
    Busy,
    /// Payload exceeds [`RadioConfig::max_payload`].
    FrameTooLarge,
    /// The node has been killed by fault injection.
    NodeDead,
}

impl core::fmt::Display for RadioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RadioError::Off => write!(f, "radio is powered off"),
            RadioError::Busy => write!(f, "radio is already transmitting"),
            RadioError::FrameTooLarge => write!(f, "payload exceeds maximum frame size"),
            RadioError::NodeDead => write!(f, "node is dead"),
        }
    }
}

impl std::error::Error for RadioError {}

/// Propagation / loss model for the medium.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LinkModel {
    /// Perfect delivery within `range_m`; silence beyond. Interference is
    /// heard up to `interference_range_m`. The fully deterministic model
    /// used by most unit tests.
    UnitDisk {
        /// Communication range in meters.
        range_m: f64,
        /// Range within which a transmission still raises the noise floor.
        interference_range_m: f64,
    },
    /// Like `UnitDisk` but every in-range frame is independently lost
    /// with probability `1 - prr`.
    LossyDisk {
        /// Communication range in meters.
        range_m: f64,
        /// Interference range in meters.
        interference_range_m: f64,
        /// Packet reception ratio within range, in `[0, 1]`.
        prr: f64,
    },
    /// Log-distance path loss with a sigmoid PRR-vs-RSSI curve: the
    /// standard empirical model for low-power wireless links, featuring
    /// a "gray zone" of intermediate-quality links.
    LogDistance {
        /// Path-loss exponent (2.0 free space, 3.0-4.0 indoor).
        path_loss_exp: f64,
        /// Loss at the 1 m reference distance, in dB.
        ref_loss_db: f64,
        /// RSSI at which PRR is 50%, in dBm.
        rssi50_dbm: f64,
        /// Width of the transition region, in dB.
        spread_db: f64,
    },
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::UnitDisk {
            range_m: 30.0,
            interference_range_m: 45.0,
        }
    }
}

/// Static configuration of every radio in the deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Radio bitrate in bits per second (802.15.4: 250 kbit/s).
    pub bitrate_bps: u64,
    /// Per-frame on-air overhead (preamble, SFD, length, MAC header, FCS).
    pub overhead_bytes: usize,
    /// Largest allowed payload per frame.
    pub max_payload: usize,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Weakest decodable signal in dBm.
    pub sensitivity_dbm: f64,
    /// Clear-channel-assessment threshold in dBm.
    pub cca_threshold_dbm: f64,
    /// A frame survives interference if it is at least this much
    /// stronger than every interferer (capture effect), in dB.
    pub capture_db: f64,
    /// Propagation and loss model.
    pub link: LinkModel,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            bitrate_bps: 250_000,
            overhead_bytes: 17,
            max_payload: 110,
            tx_power_dbm: 0.0,
            sensitivity_dbm: -94.0,
            cca_threshold_dbm: -85.0,
            capture_db: 6.0,
            link: LinkModel::default(),
        }
    }
}

impl RadioConfig {
    /// On-air duration of a frame with `payload_len` payload bytes.
    pub fn airtime(&self, payload_len: usize) -> SimDuration {
        let bits = (self.overhead_bytes + payload_len) as u64 * 8;
        SimDuration::from_micros(bits * 1_000_000 / self.bitrate_bps)
    }

    /// Received power at distance `d` meters, in dBm, or `None` if the
    /// model treats the nodes as fully out of range of each other.
    pub fn rssi_at(&self, d: f64) -> Option<f64> {
        match &self.link {
            LinkModel::UnitDisk {
                interference_range_m,
                ..
            }
            | LinkModel::LossyDisk {
                interference_range_m,
                ..
            } => {
                if d <= *interference_range_m {
                    // Synthetic monotone RSSI so traces remain meaningful.
                    Some(self.tx_power_dbm - 40.0 - 20.0 * (d.max(1.0)).log10())
                } else {
                    None
                }
            }
            LinkModel::LogDistance {
                path_loss_exp,
                ref_loss_db,
                ..
            } => {
                let rssi =
                    self.tx_power_dbm - ref_loss_db - 10.0 * path_loss_exp * d.max(1.0).log10();
                if rssi >= self.sensitivity_dbm - 10.0 {
                    Some(rssi)
                } else {
                    None
                }
            }
        }
    }

    /// The distance in meters beyond which [`RadioConfig::rssi_at`] is
    /// guaranteed to return `None` — the radius the medium's spatial
    /// index must cover. `None` if the link model has no finite cutoff
    /// (the medium then falls back to exhaustive candidate scans).
    pub fn max_range(&self) -> Option<f64> {
        match &self.link {
            LinkModel::UnitDisk {
                interference_range_m,
                ..
            }
            | LinkModel::LossyDisk {
                interference_range_m,
                ..
            } => Some(*interference_range_m),
            LinkModel::LogDistance {
                path_loss_exp,
                ref_loss_db,
                ..
            } => {
                if *path_loss_exp <= 0.0 {
                    return None;
                }
                // rssi_at yields Some while
                //   tx_power - ref_loss - 10*ple*log10(max(d,1)) >= sens - 10;
                // solve for d at equality. `rssi_at` clamps d below 1 m,
                // so the cutoff is at least 1 m.
                let exp = (self.tx_power_dbm - ref_loss_db - (self.sensitivity_dbm - 10.0))
                    / (10.0 * path_loss_exp);
                let d = 10f64.powf(exp).max(1.0);
                d.is_finite().then_some(d)
            }
        }
    }

    /// Packet reception ratio on a link of length `d` meters with
    /// received power `rssi` dBm, ignoring collisions.
    pub fn prr(&self, d: f64, rssi: f64) -> f64 {
        match &self.link {
            LinkModel::UnitDisk { range_m, .. } => {
                if d <= *range_m {
                    1.0
                } else {
                    0.0
                }
            }
            LinkModel::LossyDisk { range_m, prr, .. } => {
                if d <= *range_m {
                    *prr
                } else {
                    0.0
                }
            }
            LinkModel::LogDistance {
                rssi50_dbm,
                spread_db,
                ..
            } => {
                if rssi < self.sensitivity_dbm {
                    0.0
                } else {
                    1.0 / (1.0 + (-(rssi - rssi50_dbm) / spread_db).exp())
                }
            }
        }
    }
}

/// Identifier of a transmission on the medium.
///
/// Encodes a slot index in the medium's transmission slab plus a
/// generation counter, so a stale id held after its record was pruned
/// resolves to "unknown transmission" instead of aliasing a newer one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(pub(crate) u64);

impl TxId {
    fn compose(slot: u32, generation: u32) -> Self {
        TxId(((generation as u64) << 32) | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

#[derive(Clone, Debug)]
struct NodeRadio {
    pos: Pos,
    alive: bool,
    state: RadioState,
    channel: u8,
    /// When the radio last entered `Listening`.
    listen_since: SimTime,
    promiscuous: bool,
    group: u16,
}

#[derive(Clone, Debug)]
struct TxRecord {
    src: NodeId,
    channel: u8,
    start: SimTime,
    end: SimTime,
    frame: Frame,
    /// (receiver, rssi, passed-PRR-draw)
    candidates: Vec<(NodeId, f64, bool)>,
}

impl Default for TxRecord {
    fn default() -> Self {
        TxRecord {
            src: NodeId(0),
            channel: 0,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            frame: Frame::new(NodeId(0), Dst::Broadcast, 0, Vec::new()),
            candidates: Vec::new(),
        }
    }
}

/// One slab slot of the medium's transmission store. Slots are reused
/// (bumping `generation`) once their record is both fully evaluated
/// (`pending == 0`) and old enough to never matter for collision
/// checks again; the candidate and payload buffers inside are recycled
/// across transmissions.
#[derive(Clone, Debug, Default)]
struct TxSlot {
    generation: u32,
    live: bool,
    /// Outstanding kernel events referencing this record: one `TxEnd`
    /// plus one `RxEnd` per scheduled candidate. A record with pending
    /// events is never evicted, whatever its age.
    pending: u32,
    rec: TxRecord,
}

/// Result of evaluating one candidate reception at transmission end.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum RxEval {
    /// Frame delivered to the node's protocol stack.
    Deliver(Frame, RxInfo),
    /// Frame lost (PRR draw, collision, radio moved, address filter),
    /// with the link-layer source when the medium still knows it —
    /// observability needs the drop *and* who caused it.
    Dropped(DropReason, Option<NodeId>),
}

/// Why a candidate reception failed; recorded in medium statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Lost to the link-loss model.
    Prr,
    /// Destroyed by an overlapping transmission.
    Collision,
    /// The receiver's radio left the listening state mid-frame.
    RadioMoved,
    /// Unicast frame for someone else (not an error; address filter).
    Filtered,
    /// The receiver died mid-frame.
    Dead,
    /// The medium no longer knows the transmission (its record aged out
    /// of the history slab). Structurally unreachable for scheduled
    /// receptions — records with pending evaluations are never evicted —
    /// but stale [`TxId`]s resolve here instead of panicking.
    Expired,
}

impl DropReason {
    /// Stable cause name used by structured observability events.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Prr => "prr",
            DropReason::Collision => "collision",
            DropReason::RadioMoved => "radio_moved",
            DropReason::Filtered => "filtered",
            DropReason::Dead => "dead",
            DropReason::Expired => "expired",
        }
    }
}

/// Aggregate medium statistics, for experiment reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MediumStats {
    /// Transmissions started.
    pub tx_started: u64,
    /// Frames delivered to a protocol stack.
    pub delivered: u64,
    /// Candidate receptions lost to the PRR draw.
    pub lost_prr: u64,
    /// Candidate receptions lost to collisions.
    pub lost_collision: u64,
    /// Candidate receptions lost because the radio left listening state.
    pub lost_radio_moved: u64,
    /// Unicast frames dropped by the address filter.
    pub filtered: u64,
    /// Evaluations of transmissions the medium no longer knew
    /// (see [`DropReason::Expired`]); nonzero only for stale ids.
    pub lost_expired: u64,
}

/// A radio-state snapshot of one node, exchanged between shard
/// replicas at lookahead barriers. Only the fields that *remote*
/// evaluations read (candidate filtering in `start_tx_into`, CCA and
/// collision scans): energy meters and promiscuous flags stay local to
/// the owning shard, which is the only place receptions evaluate.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NodeStateSnap {
    /// Node index.
    pub(crate) node: u32,
    /// Liveness under fault injection.
    pub(crate) alive: bool,
    /// Radio power/TX state.
    pub(crate) state: RadioState,
    /// Tuned channel.
    pub(crate) channel: u8,
    /// When the radio last entered `Listening`.
    pub(crate) listen_since: SimTime,
}

/// A border transmission's record as shipped to an audible neighbour
/// shard, which adopts it into its own slab so local CCA and collision
/// scans see the foreign traffic.
#[derive(Clone, Debug)]
pub(crate) struct EchoTx {
    /// Transmitting node.
    pub(crate) src: NodeId,
    /// Channel transmitted on.
    pub(crate) channel: u8,
    /// Transmission start time.
    pub(crate) start: SimTime,
    /// Transmission end time.
    pub(crate) end: SimTime,
    /// The frame on the air.
    pub(crate) frame: Frame,
    /// Candidate receivers with their origin-side PRR draws, so the
    /// adopting shard evaluates its own nodes' receptions against
    /// exactly the draws the origin's deterministic RNG produced.
    pub(crate) candidates: Vec<(NodeId, f64, bool)>,
}

/// The shared wireless medium.
///
/// Owned by the [`World`](crate::world::World); protocols interact with it
/// through [`Ctx`](crate::world::Ctx) radio methods.
#[derive(Clone, Debug)]
pub struct Medium {
    config: RadioConfig,
    nodes: Vec<NodeRadio>,
    /// Transmission slab: records addressed by [`TxId`] slot index in
    /// O(1), slots recycled once evaluated and aged out.
    slots: Vec<TxSlot>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    /// Live slot indices, for the (small) scans that genuinely need
    /// every in-flight/recent transmission: CCA and collision checks.
    active: Vec<u32>,
    /// Spatial index over node positions with cell size =
    /// [`RadioConfig::max_range`]; `None` when the link model has no
    /// finite cutoff.
    grid: Option<SpatialGrid>,
    /// When `false`, candidate enumeration falls back to the exhaustive
    /// O(nodes) scan (the pre-index baseline, kept for benchmarking and
    /// equivalence tests).
    use_index: bool,
    /// Reused candidate-id gather buffer for `start_tx`.
    scratch: Vec<u32>,
    /// Per-source cached neighbour lists (sorted ascending), built
    /// lazily from the grid on a node's first transmission. Positions
    /// are static, so a node's 3x3-cell gather never changes — caching
    /// it turns the per-transmission cost into a straight copy.
    neigh: Vec<Vec<u32>>,
    /// Which `neigh` entries are built; all invalidated by `add_node`.
    neigh_built: Vec<bool>,
    /// Recycled payload buffers backing delivered frame clones.
    payload_pool: Vec<Vec<u8>>,
    /// How long a fully evaluated record can still matter: a record
    /// whose end is older than this can no longer overlap any
    /// transmission evaluated now or later (every evaluation happens
    /// at most one max-size airtime after its frame started), so the
    /// collision scan never misses it. Twice the max airtime, for
    /// slack.
    history: SimDuration,
    /// Symmetric pairs of node indices whose link is administratively
    /// severed (fault injection).
    blocked_links: HashSet<(u32, u32)>,
    /// When `true`, nodes in different groups cannot hear each other.
    partitioned: bool,
    stats: MediumStats,
    /// Indices of nodes whose radio state changed since the last drain.
    /// `None` (the default, every standalone world) disables tracking so
    /// the hot paths pay a single branch; the sharded engine enables it
    /// to ship state deltas to neighbour shards at barriers.
    dirty: Option<Vec<u32>>,
}

/// Most payload buffers the delivery pool will hold on to.
const PAYLOAD_POOL_CAP: usize = 64;

impl Medium {
    /// Creates a medium with the given radio configuration.
    pub fn new(config: RadioConfig) -> Self {
        let grid = config
            .max_range()
            .filter(|r| r.is_finite() && *r > 0.0)
            .map(|r| SpatialGrid::new(r.max(1.0)));
        let history = config.airtime(config.max_payload) * 2;
        Medium {
            config,
            nodes: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            active: Vec::new(),
            grid,
            use_index: true,
            scratch: Vec::new(),
            neigh: Vec::new(),
            neigh_built: Vec::new(),
            payload_pool: Vec::new(),
            history,
            blocked_links: HashSet::new(),
            partitioned: false,
            stats: MediumStats::default(),
            dirty: None,
        }
    }

    /// Enables dirty-node tracking (sharded engine only).
    pub(crate) fn enable_dirty_tracking(&mut self) {
        self.dirty = Some(Vec::new());
    }

    #[inline]
    fn mark_dirty(&mut self, node: u32) {
        if let Some(d) = &mut self.dirty {
            d.push(node);
        }
    }

    /// Drains the dirty set, sorted and deduplicated.
    pub(crate) fn drain_dirty(&mut self) -> Vec<u32> {
        let Some(d) = &mut self.dirty else {
            return Vec::new();
        };
        let mut out = std::mem::take(d);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Snapshot of `node`'s remotely-visible radio state.
    pub(crate) fn snap(&self, node: u32) -> NodeStateSnap {
        let n = &self.nodes[node as usize];
        NodeStateSnap {
            node,
            alive: n.alive,
            state: n.state,
            channel: n.channel,
            listen_since: n.listen_since,
        }
    }

    /// Applies a foreign node's state snapshot verbatim. No meter sync,
    /// no dirty marking: the local copy of a foreign node is a mirror,
    /// never a source of truth.
    pub(crate) fn apply_snap(&mut self, s: &NodeStateSnap) {
        let n = &mut self.nodes[s.node as usize];
        n.alive = s.alive;
        n.state = s.state;
        n.channel = s.channel;
        n.listen_since = s.listen_since;
    }

    /// Releases one pending evaluation of `tx` without evaluating it —
    /// the shard router claims receptions destined for foreign nodes,
    /// which evaluate against the adopted copy in the owning shard.
    pub(crate) fn release_pending(&mut self, tx: TxId) {
        if let Some(slot) = self.lookup(tx) {
            let s = &mut self.slots[slot];
            s.pending = s.pending.saturating_sub(1);
        }
    }

    /// Clones the record of `tx` for export to an audible neighbour
    /// shard. `None` only for stale ids (cannot happen for records
    /// exported in the window they were created).
    pub(crate) fn export_echo(&self, tx: TxId) -> Option<EchoTx> {
        let slot = self.lookup(tx)?;
        let rec = &self.slots[slot].rec;
        Some(EchoTx {
            src: rec.src,
            channel: rec.channel,
            start: rec.start,
            end: rec.end,
            frame: rec.frame.clone(),
            candidates: rec.candidates.clone(),
        })
    }

    /// Adopts a foreign transmission record into the local slab so CCA
    /// and collision scans see it; returns the local id under which
    /// `pending` reception evaluations will arrive. Does not touch the
    /// foreign source's radio state (snapshots carry that) and does not
    /// count in `tx_started` (the origin shard already did).
    pub(crate) fn adopt_echo(&mut self, echo: &EchoTx, pending: u32) -> TxId {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(TxSlot::default());
                self.slots.len() - 1
            }
        };
        let id = TxId::compose(slot as u32, self.slots[slot].generation);
        let s = &mut self.slots[slot];
        s.live = true;
        s.pending = pending;
        s.rec.src = echo.src;
        s.rec.channel = echo.channel;
        s.rec.start = echo.start;
        s.rec.end = echo.end;
        s.rec.frame = echo.frame.clone();
        s.rec.candidates.clear();
        s.rec.candidates.extend_from_slice(&echo.candidates);
        self.active.push(slot as u32);
        id
    }

    /// Enables or disables the spatial candidate index (enabled by
    /// default). Disabling falls back to the exhaustive O(nodes) scan;
    /// both modes produce byte-identical simulations — the index only
    /// changes how candidates are *found*, never which candidates are
    /// found or in which order the per-candidate RNG draws happen. The
    /// switch exists for benchmarking the win and property-testing the
    /// equivalence.
    pub fn set_spatial_index(&mut self, on: bool) {
        self.use_index = on;
    }

    /// Whether the spatial candidate index is in use (it may be
    /// unavailable if the link model has no finite range cutoff).
    pub fn spatial_index_active(&self) -> bool {
        self.use_index && self.grid.is_some()
    }

    /// The radio configuration.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// Medium statistics so far.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    pub(crate) fn add_node(&mut self, pos: Pos) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if let Some(grid) = &mut self.grid {
            grid.insert(id.0, pos);
        }
        // A new node may be in range of any existing one: every cached
        // neighbour list is stale.
        self.neigh_built.iter_mut().for_each(|b| *b = false);
        self.neigh.push(Vec::new());
        self.neigh_built.push(false);
        self.nodes.push(NodeRadio {
            pos,
            alive: true,
            state: RadioState::Off,
            channel: 0,
            listen_since: SimTime::ZERO,
            promiscuous: false,
            group: 0,
        });
        id
    }

    /// Number of nodes attached to the medium.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Position of `node`.
    pub fn pos(&self, node: NodeId) -> Pos {
        self.nodes[node.index()].pos
    }

    /// Current radio state of `node`.
    pub fn state(&self, node: NodeId) -> RadioState {
        self.nodes[node.index()].state
    }

    /// Current channel of `node`.
    pub fn channel(&self, node: NodeId) -> u8 {
        self.nodes[node.index()].channel
    }

    pub(crate) fn set_alive(&mut self, node: NodeId, alive: bool) {
        let n = &mut self.nodes[node.index()];
        n.alive = alive;
        if !alive {
            n.state = RadioState::Off;
        }
        self.mark_dirty(node.0);
    }

    /// Whether `node` is alive (not killed by fault injection).
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.index()].alive
    }

    /// Administratively severs the link between `a` and `b` (both ways).
    pub fn block_link(&mut self, a: NodeId, b: NodeId) {
        let (x, y) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.blocked_links.insert((x, y));
    }

    /// Restores a previously severed link.
    pub fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        let (x, y) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.blocked_links.remove(&(x, y));
    }

    /// Assigns `node` to a partition group (see [`Medium::set_partitioned`]).
    pub fn set_group(&mut self, node: NodeId, group: u16) {
        self.nodes[node.index()].group = group;
    }

    /// Enables or disables the partition: while enabled, nodes in
    /// different groups cannot hear each other at all.
    pub fn set_partitioned(&mut self, on: bool) {
        self.partitioned = on;
    }

    /// Whether the partition is currently active.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    fn link_open(&self, a: NodeId, b: NodeId) -> bool {
        let (x, y) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if self.blocked_links.contains(&(x, y)) {
            return false;
        }
        if self.partitioned && self.nodes[a.index()].group != self.nodes[b.index()].group {
            return false;
        }
        true
    }

    pub(crate) fn set_promiscuous(&mut self, node: NodeId, on: bool) {
        self.nodes[node.index()].promiscuous = on;
    }

    pub(crate) fn radio_on(&mut self, node: NodeId, now: SimTime) -> Result<(), RadioError> {
        let n = &mut self.nodes[node.index()];
        if !n.alive {
            return Err(RadioError::NodeDead);
        }
        if n.state == RadioState::Off {
            n.state = RadioState::Listening;
            n.listen_since = now;
            self.mark_dirty(node.0);
        }
        Ok(())
    }

    pub(crate) fn radio_off(&mut self, node: NodeId) -> Result<(), RadioError> {
        let n = &mut self.nodes[node.index()];
        if !n.alive {
            return Err(RadioError::NodeDead);
        }
        if n.state == RadioState::Transmitting {
            return Err(RadioError::Busy);
        }
        n.state = RadioState::Off;
        self.mark_dirty(node.0);
        Ok(())
    }

    pub(crate) fn set_channel(
        &mut self,
        node: NodeId,
        channel: u8,
        now: SimTime,
    ) -> Result<(), RadioError> {
        let n = &mut self.nodes[node.index()];
        if !n.alive {
            return Err(RadioError::NodeDead);
        }
        if n.state == RadioState::Transmitting {
            return Err(RadioError::Busy);
        }
        if n.channel != channel {
            n.channel = channel;
            // Retuning interrupts any ongoing reception.
            if n.state == RadioState::Listening {
                n.listen_since = now;
            }
            self.mark_dirty(node.0);
        }
        Ok(())
    }

    /// Is the channel busy at `node` right now (any audible transmission
    /// above the CCA threshold)?
    pub(crate) fn cca_busy(&self, node: NodeId, now: SimTime) -> bool {
        let me = &self.nodes[node.index()];
        self.active
            .iter()
            .map(|&s| &self.slots[s as usize].rec)
            .any(|tx| {
                tx.start <= now
                    && now < tx.end
                    && tx.channel == me.channel
                    && tx.src != node
                    && self.link_open(tx.src, node)
                    && self
                        .config
                        .rssi_at(self.nodes[tx.src.index()].pos.distance(me.pos))
                        .is_some_and(|r| r >= self.config.cca_threshold_dbm)
            })
    }

    /// Resolves `tx` to its slab slot, if the record is still known.
    fn lookup(&self, tx: TxId) -> Option<usize> {
        let slot = tx.slot();
        let s = self.slots.get(slot)?;
        (s.live && s.generation == tx.generation()).then_some(slot)
    }

    /// Drops every record that can no longer matter: fully evaluated
    /// (no pending `TxEnd`/`RxEnd` events) *and* past the collision
    /// horizon. The retain rule is explicit: any record still in
    /// flight (`end >= now`) or with pending evaluations survives,
    /// regardless of its age — eviction can never turn a scheduled
    /// reception into a dangling [`TxId`].
    fn prune(&mut self, now: SimTime) {
        // `history` (two max-size airtimes) bounds how long a fully
        // evaluated record can still overlap a future evaluation; see
        // the field doc for the argument.
        let cutoff = if now.as_micros() > self.history.as_micros() {
            now - self.history
        } else {
            SimTime::ZERO
        };
        let mut i = 0;
        while i < self.active.len() {
            let slot = self.active[i] as usize;
            let s = &mut self.slots[slot];
            if s.pending == 0 && s.rec.end < cutoff && s.rec.end < now {
                s.live = false;
                s.generation = s.generation.wrapping_add(1);
                s.rec.candidates.clear();
                // Recycle the payload allocation into the delivery pool.
                let mut payload = std::mem::take(&mut s.rec.frame.payload);
                if self.payload_pool.len() < PAYLOAD_POOL_CAP && payload.capacity() > 0 {
                    payload.clear();
                    self.payload_pool.push(payload);
                }
                self.free.push(slot as u32);
                self.active.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Hands a payload buffer back to the delivery pool (called by the
    /// kernel once a delivered frame clone has been consumed).
    pub(crate) fn recycle_payload(&mut self, mut payload: Vec<u8>) {
        if self.payload_pool.len() < PAYLOAD_POOL_CAP && payload.capacity() > 0 {
            payload.clear();
            self.payload_pool.push(payload);
        }
    }

    /// Test/compat convenience around [`Medium::start_tx_into`] that
    /// allocates a fresh schedule vector.
    #[cfg(test)]
    fn start_tx<R: Rng>(
        &mut self,
        frame: Frame,
        now: SimTime,
        rng: &mut R,
    ) -> Result<(TxId, SimTime, Vec<NodeId>), RadioError> {
        let mut schedule = Vec::new();
        let (id, end) = self.start_tx_into(frame, now, rng, &mut schedule)?;
        Ok((id, end, schedule))
    }

    /// Starts a transmission. Returns the tx id and its end time, and
    /// fills `schedule` (cleared first) with the candidate receivers for
    /// which `RxEnd` events must be scheduled.
    ///
    /// Candidates are visited in ascending node-id order and the
    /// per-candidate PRR draw happens only for nodes passing the
    /// sensitivity check — with or without the spatial index, so both
    /// paths consume the RNG identically and simulations are
    /// byte-identical by construction.
    pub(crate) fn start_tx_into<R: Rng>(
        &mut self,
        frame: Frame,
        now: SimTime,
        rng: &mut R,
        schedule: &mut Vec<NodeId>,
    ) -> Result<(TxId, SimTime), RadioError> {
        schedule.clear();
        let src = frame.src;
        {
            let n = &self.nodes[src.index()];
            if !n.alive {
                return Err(RadioError::NodeDead);
            }
            match n.state {
                RadioState::Off => return Err(RadioError::Off),
                RadioState::Transmitting => return Err(RadioError::Busy),
                RadioState::Listening => {}
            }
            if frame.payload.len() > self.config.max_payload {
                return Err(RadioError::FrameTooLarge);
            }
        }
        let end = now + self.config.airtime(frame.payload.len());
        let channel = self.nodes[src.index()].channel;
        let src_pos = self.nodes[src.index()].pos;

        self.prune(now);

        // Allocate (or recycle) the record slot up front so its
        // candidate buffer can be filled in place.
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(TxSlot::default());
                self.slots.len() - 1
            }
        };
        let id = TxId::compose(slot as u32, self.slots[slot].generation);
        let mut candidates = std::mem::take(&mut self.slots[slot].rec.candidates);
        candidates.clear();

        // Candidate enumeration: the spatial grid confines the scan to
        // the 3x3 cell neighbourhood that covers max_range; the
        // exhaustive fallback visits every node. Both yield ascending
        // ids into the same filter.
        let mut scratch = std::mem::take(&mut self.scratch);
        match &self.grid {
            Some(grid) if self.use_index => {
                if !self.neigh_built[src.index()] {
                    let mut list = std::mem::take(&mut self.neigh[src.index()]);
                    grid.gather(src_pos, &mut list);
                    // Tighten the 3x3-cell superset to the exact
                    // audibility disk: beyond `cell_size` (= max
                    // range) `rssi_at` is guaranteed `None`, so these
                    // nodes can never become candidates or draw RNG —
                    // dropping them here is invisible to simulations.
                    let cutoff = grid.cell_size();
                    let nodes = &self.nodes;
                    list.retain(|&i| src_pos.distance(nodes[i as usize].pos) <= cutoff);
                    self.neigh[src.index()] = list;
                    self.neigh_built[src.index()] = true;
                }
                scratch.clear();
                scratch.extend_from_slice(&self.neigh[src.index()]);
            }
            _ => {
                scratch.clear();
                scratch.extend(0..self.nodes.len() as u32);
            }
        }
        for &i in &scratch {
            let n = &self.nodes[i as usize];
            let r = NodeId(i);
            if r == src
                || !n.alive
                || n.state != RadioState::Listening
                || n.channel != channel
                || !self.link_open(src, r)
            {
                continue;
            }
            let d = src_pos.distance(n.pos);
            let Some(rssi) = self.config.rssi_at(d) else {
                continue;
            };
            if rssi < self.config.sensitivity_dbm {
                continue;
            }
            let ok = rng.gen::<f64>() < self.config.prr(d, rssi);
            candidates.push((r, rssi, ok));
            schedule.push(r);
        }
        self.scratch = scratch;

        self.nodes[src.index()].state = RadioState::Transmitting;
        self.mark_dirty(src.0);
        let s = &mut self.slots[slot];
        s.live = true;
        s.pending = 1 + schedule.len() as u32; // TxEnd + one RxEnd each
        s.rec.src = src;
        s.rec.channel = channel;
        s.rec.start = now;
        s.rec.end = end;
        s.rec.frame = frame;
        s.rec.candidates = candidates;
        self.active.push(slot as u32);
        self.stats.tx_started += 1;
        Ok((id, end))
    }

    /// Finishes a transmission at the sender side; returns the outcome.
    ///
    /// A stale or unknown `tx` yields a zero-receiver outcome instead
    /// of panicking; by construction the kernel's `TxEnd` event always
    /// finds its record (pending events pin records in the slab).
    pub(crate) fn end_tx(&mut self, tx: TxId, now: SimTime) -> TxOutcome {
        let Some(slot) = self.lookup(tx) else {
            self.stats.lost_expired += 1;
            return TxOutcome {
                oracle_receivers: 0,
            };
        };
        let s = &mut self.slots[slot];
        s.pending = s.pending.saturating_sub(1);
        let src = s.rec.src;
        let oracle = s.rec.candidates.iter().filter(|c| c.2).count();
        let n = &mut self.nodes[src.index()];
        if n.alive && n.state == RadioState::Transmitting {
            n.state = RadioState::Listening;
            n.listen_since = now;
            self.mark_dirty(src.0);
        }
        TxOutcome {
            oracle_receivers: oracle,
        }
    }

    /// Evaluates the candidate reception of `tx` at `node`, at the end of
    /// the transmission.
    pub(crate) fn eval_rx(&mut self, tx: TxId, node: NodeId, _now: SimTime) -> RxEval {
        let Some(rec_idx) = self.lookup(tx) else {
            self.stats.lost_expired += 1;
            return RxEval::Dropped(DropReason::Expired, None);
        };
        self.slots[rec_idx].pending = self.slots[rec_idx].pending.saturating_sub(1);
        let rec = &self.slots[rec_idx].rec;
        let rec_start = rec.start;
        let rec_end = rec.end;
        let rec_channel = rec.channel;
        let rec_src = rec.src;
        let Some(&(_, rssi, prr_ok)) = rec.candidates.iter().find(|c| c.0 == node) else {
            return RxEval::Dropped(DropReason::RadioMoved, Some(rec_src));
        };
        let n = &self.nodes[node.index()];
        if !n.alive {
            self.stats.lost_radio_moved += 1;
            return RxEval::Dropped(DropReason::Dead, Some(rec_src));
        }
        // The radio must have been listening on this channel for the
        // whole frame.
        if n.state != RadioState::Listening
            || n.listen_since > rec_start
            || n.channel != rec_channel
        {
            self.stats.lost_radio_moved += 1;
            return RxEval::Dropped(DropReason::RadioMoved, Some(rec_src));
        }
        if !prr_ok {
            self.stats.lost_prr += 1;
            return RxEval::Dropped(DropReason::Prr, Some(rec_src));
        }
        // Collision check: any other overlapping audible transmission
        // strong enough to defeat capture destroys the frame. Only the
        // (few) live records can overlap, so this scan is O(active).
        let my_pos = n.pos;
        for &other_slot in &self.active {
            if other_slot as usize == rec_idx {
                continue;
            }
            let other = &self.slots[other_slot as usize].rec;
            if other.channel != rec_channel
                || other.end <= rec_start
                || other.start >= rec_end
                || other.src == node
                || !self.link_open(other.src, node)
            {
                continue;
            }
            let d = self.nodes[other.src.index()].pos.distance(my_pos);
            if let Some(int_rssi) = self.config.rssi_at(d) {
                if rssi < int_rssi + self.config.capture_db {
                    self.stats.lost_collision += 1;
                    return RxEval::Dropped(DropReason::Collision, Some(rec_src));
                }
            }
        }
        let rec = &self.slots[rec_idx].rec;
        if !rec.frame.dst.accepts(node) && !n.promiscuous {
            self.stats.filtered += 1;
            return RxEval::Dropped(DropReason::Filtered, Some(rec_src));
        }
        self.stats.delivered += 1;
        // Clone the frame for delivery, backing the payload with a
        // pooled buffer so steady-state delivery allocates nothing.
        let mut payload = self.payload_pool.pop().unwrap_or_default();
        payload.clear();
        payload.extend_from_slice(&rec.frame.payload);
        RxEval::Deliver(
            Frame {
                src: rec.frame.src,
                dst: rec.frame.dst,
                port: rec.frame.port,
                payload,
            },
            RxInfo {
                rssi_dbm: rssi,
                channel: rec_channel,
                started: rec_start,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn medium_with_line(n: usize, spacing: f64) -> Medium {
        let mut m = Medium::new(RadioConfig::default());
        for i in 0..n {
            m.add_node(Pos::new(i as f64 * spacing, 0.0));
        }
        m
    }

    #[test]
    fn airtime_matches_bitrate() {
        let c = RadioConfig::default();
        // (17 + 33) * 8 = 400 bits at 250 kbit/s = 1600 us.
        assert_eq!(c.airtime(33), SimDuration::from_micros(1600));
    }

    #[test]
    fn unit_disk_prr_step() {
        let c = RadioConfig::default();
        assert_eq!(c.prr(29.0, -60.0), 1.0);
        assert_eq!(c.prr(31.0, -60.0), 0.0);
    }

    #[test]
    fn log_distance_prr_monotone() {
        let c = RadioConfig {
            link: LinkModel::LogDistance {
                path_loss_exp: 3.0,
                ref_loss_db: 40.0,
                rssi50_dbm: -88.0,
                spread_db: 3.0,
            },
            ..RadioConfig::default()
        };
        let r10 = c.rssi_at(10.0).unwrap();
        let r40 = c.rssi_at(40.0).unwrap();
        assert!(r10 > r40);
        assert!(c.prr(10.0, r10) > c.prr(40.0, r40));
    }

    #[test]
    fn tx_requires_radio_on() {
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![1, 2, 3]);
        assert_eq!(
            m.start_tx(f, SimTime::ZERO, &mut rng).unwrap_err(),
            RadioError::Off
        );
    }

    #[test]
    fn basic_delivery() {
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let t0 = SimTime::ZERO;
        m.radio_on(NodeId(0), t0).unwrap();
        m.radio_on(NodeId(1), t0).unwrap();
        let f = Frame::new(NodeId(0), Dst::Unicast(NodeId(1)), 7, vec![42]);
        let (tx, end, sched) = m.start_tx(f.clone(), t0, &mut rng).unwrap();
        assert_eq!(sched, vec![NodeId(1)]);
        assert_eq!(m.state(NodeId(0)), RadioState::Transmitting);
        let out = m.end_tx(tx, end);
        assert_eq!(out.oracle_receivers, 1);
        assert_eq!(m.state(NodeId(0)), RadioState::Listening);
        match m.eval_rx(tx, NodeId(1), end) {
            RxEval::Deliver(got, info) => {
                assert_eq!(got, f);
                assert_eq!(info.channel, 0);
                assert_eq!(info.started, t0);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn out_of_range_not_candidate() {
        let mut m = medium_with_line(2, 100.0);
        let mut rng = SmallRng::seed_from_u64(0);
        m.radio_on(NodeId(0), SimTime::ZERO).unwrap();
        m.radio_on(NodeId(1), SimTime::ZERO).unwrap();
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![]);
        let (_, _, sched) = m.start_tx(f, SimTime::ZERO, &mut rng).unwrap();
        assert!(sched.is_empty());
    }

    #[test]
    fn address_filter_drops_foreign_unicast() {
        let mut m = medium_with_line(3, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..3 {
            m.radio_on(NodeId(i), SimTime::ZERO).unwrap();
        }
        let f = Frame::new(NodeId(0), Dst::Unicast(NodeId(1)), 0, vec![]);
        let (tx, end, sched) = m.start_tx(f, SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(sched.len(), 2);
        m.end_tx(tx, end);
        assert!(matches!(
            m.eval_rx(tx, NodeId(2), end),
            RxEval::Dropped(DropReason::Filtered, _)
        ));
        assert!(matches!(m.eval_rx(tx, NodeId(1), end), RxEval::Deliver(..)));
    }

    #[test]
    fn promiscuous_overhears() {
        let mut m = medium_with_line(3, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..3 {
            m.radio_on(NodeId(i), SimTime::ZERO).unwrap();
        }
        m.set_promiscuous(NodeId(2), true);
        let f = Frame::new(NodeId(0), Dst::Unicast(NodeId(1)), 0, vec![]);
        let (tx, end, _) = m.start_tx(f, SimTime::ZERO, &mut rng).unwrap();
        m.end_tx(tx, end);
        assert!(matches!(m.eval_rx(tx, NodeId(2), end), RxEval::Deliver(..)));
    }

    #[test]
    fn radio_off_mid_frame_loses_it() {
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        m.radio_on(NodeId(0), SimTime::ZERO).unwrap();
        m.radio_on(NodeId(1), SimTime::ZERO).unwrap();
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![0; 50]);
        let (tx, end, _) = m.start_tx(f, SimTime::ZERO, &mut rng).unwrap();
        // Receiver cycles its radio in the middle of the frame.
        m.radio_off(NodeId(1)).unwrap();
        m.radio_on(NodeId(1), SimTime::from_micros(100)).unwrap();
        m.end_tx(tx, end);
        assert!(matches!(
            m.eval_rx(tx, NodeId(1), end),
            RxEval::Dropped(DropReason::RadioMoved, _)
        ));
    }

    #[test]
    fn overlapping_transmissions_collide() {
        // Nodes 0 and 2 both in range of node 1, equidistant -> no capture.
        let mut m = medium_with_line(3, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..3 {
            m.radio_on(NodeId(i), SimTime::ZERO).unwrap();
        }
        let f0 = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![0; 50]);
        let f2 = Frame::new(NodeId(2), Dst::Broadcast, 0, vec![0; 50]);
        let (tx0, end0, _) = m.start_tx(f0, SimTime::ZERO, &mut rng).unwrap();
        let (_tx2, _, _) = m.start_tx(f2, SimTime::from_micros(50), &mut rng).unwrap();
        m.end_tx(tx0, end0);
        assert!(matches!(
            m.eval_rx(tx0, NodeId(1), end0),
            RxEval::Dropped(DropReason::Collision, _)
        ));
        assert_eq!(m.stats().lost_collision, 1);
    }

    #[test]
    fn capture_effect_keeps_strong_frame() {
        // Interferer much farther away than the sender: capture wins.
        let mut m = Medium::new(RadioConfig::default());
        m.add_node(Pos::new(0.0, 0.0)); // sender
        m.add_node(Pos::new(2.0, 0.0)); // receiver
        m.add_node(Pos::new(40.0, 0.0)); // weak interferer (interference range only)
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..3 {
            m.radio_on(NodeId(i), SimTime::ZERO).unwrap();
        }
        let f0 = Frame::new(NodeId(0), Dst::Unicast(NodeId(1)), 0, vec![0; 20]);
        let f2 = Frame::new(NodeId(2), Dst::Broadcast, 0, vec![0; 20]);
        let (tx0, end0, _) = m.start_tx(f0, SimTime::ZERO, &mut rng).unwrap();
        m.start_tx(f2, SimTime::from_micros(10), &mut rng).unwrap();
        m.end_tx(tx0, end0);
        assert!(matches!(
            m.eval_rx(tx0, NodeId(1), end0),
            RxEval::Deliver(..)
        ));
    }

    #[test]
    fn different_channels_do_not_interact() {
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        m.radio_on(NodeId(0), SimTime::ZERO).unwrap();
        m.radio_on(NodeId(1), SimTime::ZERO).unwrap();
        m.set_channel(NodeId(1), 5, SimTime::ZERO).unwrap();
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![]);
        let (_, _, sched) = m.start_tx(f, SimTime::ZERO, &mut rng).unwrap();
        assert!(sched.is_empty());
        assert!(!m.cca_busy(NodeId(1), SimTime::from_micros(10)));
    }

    #[test]
    fn cca_sees_ongoing_transmission() {
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        m.radio_on(NodeId(0), SimTime::ZERO).unwrap();
        m.radio_on(NodeId(1), SimTime::ZERO).unwrap();
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![0; 50]);
        let (tx, end, _) = m.start_tx(f, SimTime::ZERO, &mut rng).unwrap();
        assert!(m.cca_busy(NodeId(1), SimTime::from_micros(10)));
        m.end_tx(tx, end);
        assert!(!m.cca_busy(NodeId(1), end));
    }

    #[test]
    fn blocked_link_and_partition() {
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        m.radio_on(NodeId(0), SimTime::ZERO).unwrap();
        m.radio_on(NodeId(1), SimTime::ZERO).unwrap();
        m.block_link(NodeId(0), NodeId(1));
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![]);
        let (tx, end, sched) = m.start_tx(f.clone(), SimTime::ZERO, &mut rng).unwrap();
        assert!(sched.is_empty());
        m.end_tx(tx, end);
        m.unblock_link(NodeId(0), NodeId(1));
        m.set_group(NodeId(1), 1);
        m.set_partitioned(true);
        let (tx, end, sched) = m
            .start_tx(f.clone(), SimTime::from_millis(10), &mut rng)
            .unwrap();
        assert!(sched.is_empty());
        m.end_tx(tx, end);
        m.set_partitioned(false);
        let (_, _, sched) = m.start_tx(f, SimTime::from_millis(20), &mut rng).unwrap();
        assert_eq!(sched, vec![NodeId(1)]);
    }

    #[test]
    fn dead_node_cannot_transmit() {
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        m.radio_on(NodeId(0), SimTime::ZERO).unwrap();
        m.set_alive(NodeId(0), false);
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![]);
        assert_eq!(
            m.start_tx(f, SimTime::ZERO, &mut rng).unwrap_err(),
            RadioError::NodeDead
        );
    }

    #[test]
    fn frame_too_large_rejected() {
        let mut m = medium_with_line(1, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        m.radio_on(NodeId(0), SimTime::ZERO).unwrap();
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![0; 200]);
        assert_eq!(
            m.start_tx(f, SimTime::ZERO, &mut rng).unwrap_err(),
            RadioError::FrameTooLarge
        );
    }

    #[test]
    fn stale_tx_id_is_expired_not_a_panic() {
        // Once a fully evaluated record ages past the history horizon
        // it is pruned and its slot recycled; the old id must resolve
        // to a structured drop, never a panic (regression: end_tx used
        // to `expect` the record).
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let t0 = SimTime::ZERO;
        m.radio_on(NodeId(0), t0).unwrap();
        m.radio_on(NodeId(1), t0).unwrap();
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![1]);
        let (tx, end, sched) = m.start_tx(f.clone(), t0, &mut rng).unwrap();
        assert_eq!(sched, vec![NodeId(1)]);
        m.end_tx(tx, end);
        assert!(matches!(m.eval_rx(tx, NodeId(1), end), RxEval::Deliver(..)));
        // All pending evaluations drained; a transmission far past the
        // horizon triggers pruning and recycles the slot.
        let later = SimTime::from_secs(3);
        let (tx2, end2, _) = m.start_tx(f, later, &mut rng).unwrap();
        assert_ne!(tx, tx2, "recycled slot must carry a new generation");
        assert_eq!(m.end_tx(tx, later).oracle_receivers, 0);
        match m.eval_rx(tx, NodeId(1), later) {
            RxEval::Dropped(DropReason::Expired, None) => {}
            other => panic!("expected Expired drop, got {other:?}"),
        }
        assert_eq!(m.stats().lost_expired, 2);
        m.end_tx(tx2, end2);
    }

    #[test]
    fn pending_evaluations_pin_records_past_horizon() {
        // A record with an un-dispatched RxEnd must survive pruning no
        // matter how old it is: eviction may never turn a scheduled
        // reception into a dangling id.
        let mut m = medium_with_line(2, 10.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let t0 = SimTime::ZERO;
        m.radio_on(NodeId(0), t0).unwrap();
        m.radio_on(NodeId(1), t0).unwrap();
        let f = Frame::new(NodeId(0), Dst::Broadcast, 0, vec![7]);
        let (tx, end, _) = m.start_tx(f.clone(), t0, &mut rng).unwrap();
        m.end_tx(tx, end);
        // Deliberately do NOT eval_rx yet. 10 s later a new
        // transmission prunes history — the pinned record survives.
        let later = SimTime::from_secs(10);
        let (tx2, end2, _) = m.start_tx(f, later, &mut rng).unwrap();
        match m.eval_rx(tx, NodeId(1), later) {
            RxEval::Deliver(got, _) => assert_eq!(got.payload, vec![7]),
            other => panic!("pinned record must still deliver, got {other:?}"),
        }
        m.end_tx(tx2, end2);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(96))]

        /// The spatial index must be invisible: on any topology —
        /// including cell-boundary-straddling and co-located nodes —
        /// the indexed medium yields the exact candidate set, in the
        /// same order, consuming the RNG identically, as the
        /// exhaustive O(nodes) scan.
        #[test]
        fn grid_index_matches_exhaustive_scan(
            raw in proptest::collection::vec((-45.0f64..95.0, -45.0f64..95.0), 2..24),
            dup in proptest::any::<bool>(),
            off_mask in proptest::any::<u64>(),
        ) {
            use proptest::{prop_assert, prop_assert_eq};
            let mut pts: Vec<Pos> = raw.iter().map(|&(x, y)| Pos::new(x, y)).collect();
            if dup {
                // Co-located pair (same cell, same distance).
                let p = pts[0];
                pts.push(p);
            }
            // Drop one node exactly on a cell boundary of the default
            // 37.5 m grid.
            pts.push(Pos::new(37.5, 75.0));
            let build = |indexed: bool| {
                let mut m = Medium::new(RadioConfig::default());
                m.set_spatial_index(indexed);
                for (i, &p) in pts.iter().enumerate() {
                    let id = m.add_node(p);
                    if off_mask >> (i % 64) & 1 == 0 {
                        m.radio_on(id, SimTime::ZERO).unwrap();
                    }
                }
                m
            };
            let mut with_index = build(true);
            let mut exhaustive = build(false);
            prop_assert!(with_index.spatial_index_active());
            prop_assert!(!exhaustive.spatial_index_active());
            for i in 0..pts.len() {
                let src = NodeId(i as u32);
                let mut rng_a = SmallRng::seed_from_u64(0xC0FFEE ^ i as u64);
                let mut rng_b = rng_a.clone();
                let f = Frame::new(src, Dst::Broadcast, 0, vec![i as u8]);
                let res_a = with_index.start_tx(f.clone(), SimTime::ZERO, &mut rng_a);
                let res_b = exhaustive.start_tx(f, SimTime::ZERO, &mut rng_b);
                match (res_a, res_b) {
                    (Ok((tx_a, end_a, sched_a)), Ok((tx_b, end_b, sched_b))) => {
                        prop_assert_eq!(&sched_a, &sched_b);
                        prop_assert_eq!(end_a, end_b);
                        // Identical RNG consumption — the invariant
                        // byte-identical simulations rest on.
                        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
                        with_index.end_tx(tx_a, end_a);
                        exhaustive.end_tx(tx_b, end_b);
                    }
                    (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                    (a, b) => panic!("diverged: indexed={a:?} exhaustive={b:?}"),
                }
            }
        }
    }
}
