//! The protocol interface implemented by simulated node software.

use crate::ids::{NodeId, TimerId};
use crate::radio::{Frame, RxInfo, TxOutcome};
use crate::world::Ctx;
use std::any::Any;

/// A fired timer, as delivered to [`Proto::timer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timer {
    /// The id returned by [`Ctx::set_timer`](crate::world::Ctx::set_timer).
    pub id: TimerId,
    /// The caller-chosen tag, used to multiplex timer purposes.
    pub tag: u64,
}

/// Upcasting support for protocol downcasts.
///
/// Blanket-implemented for every `'static` type, so [`Proto`]
/// implementations get `as_any`/`as_any_mut` for free: the supertrait
/// bound on [`Proto`] is what lets [`World::proto`] downcast a
/// `dyn Proto` back to its concrete type without each protocol writing
/// the two-line boilerplate by hand.
///
/// [`World::proto`]: crate::world::World::proto
pub trait AsAny: Any {
    /// Upcast for downcasting to the concrete type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting to the concrete type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The software running on one simulated node.
///
/// A `Proto` is a state machine driven entirely by callbacks: the world
/// calls [`start`](Proto::start) once (and again after a crash-recovery),
/// then delivers timers, received frames, transmission completions and
/// backhaul ("wire") messages. All side effects go through the [`Ctx`]
/// handed to each callback.
///
/// Downcasting (so experiments can inspect final protocol state) comes
/// for free through the [`AsAny`] supertrait; implementations only
/// write the callbacks they care about.
///
/// # Examples
///
/// ```
/// use iiot_sim::node::{Proto, Timer};
/// use iiot_sim::world::Ctx;
///
/// /// Counts how many times its periodic timer fired.
/// struct Ticker {
///     period_ms: u64,
///     fired: u32,
/// }
///
/// impl Proto for Ticker {
///     fn start(&mut self, ctx: &mut Ctx<'_>) {
///         ctx.set_timer(iiot_sim::time::SimDuration::from_millis(self.period_ms), 0);
///     }
///     fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
///         self.fired += 1;
///         ctx.set_timer(iiot_sim::time::SimDuration::from_millis(self.period_ms), 0);
///     }
/// }
/// ```
pub trait Proto: AsAny + Send {
    /// Called once when the node boots (time of node creation) and again
    /// after every crash-recovery ([`World::revive`](crate::world::World::revive)).
    fn start(&mut self, ctx: &mut Ctx<'_>);

    /// A timer set through [`Ctx::set_timer`](crate::world::Ctx::set_timer)
    /// fired.
    fn timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer) {
        let _ = (ctx, timer);
    }

    /// A frame was received by the radio (and passed address filtering).
    fn frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, info: RxInfo) {
        let _ = (ctx, frame, info);
    }

    /// A transmission started with [`Ctx::transmit`](crate::world::Ctx::transmit)
    /// left the air.
    fn tx_done(&mut self, ctx: &mut Ctx<'_>, outcome: TxOutcome) {
        let _ = (ctx, outcome);
    }

    /// A backhaul message sent with
    /// [`Ctx::wire_send`](crate::world::Ctx::wire_send) arrived. Models
    /// the wired/IP side of border routers.
    fn wire(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        let _ = (ctx, from, payload);
    }

    /// The node crashed (fault injection). Volatile state should be
    /// cleared here; state the implementation considers "persisted to
    /// flash" may be kept. After a later revive, [`start`](Proto::start)
    /// runs again.
    fn crashed(&mut self) {}

    /// The node crashed *and lost its non-volatile storage* (flash
    /// corruption, full reimage). Everything must go — implementations
    /// that persist state across [`crashed`](Proto::crashed) (e.g. a
    /// dissemination page store) must discard it here too. The default
    /// delegates to `crashed`, which is correct for protocols that keep
    /// nothing in "flash". Selected per-world with
    /// [`World::set_state_loss`](crate::world::World::set_state_loss).
    fn wiped(&mut self) {
        self.crashed();
    }
}

/// What a crashed node retains, applied by
/// [`World::kill`](crate::world::World::kill) when dispatching to the
/// protocol.
///
/// Real motes lose RAM on every reboot but keep external flash; a
/// repair-by-reflash or storage fault loses both. The default — RAM
/// loss only — matches how fielded crash-recovery behaves and how this
/// simulator has always behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StateLoss {
    /// RAM is lost, "flash" survives: the crash calls
    /// [`Proto::crashed`]. This is the default.
    #[default]
    Ram,
    /// RAM *and* flash are lost: the crash calls [`Proto::wiped`], so a
    /// revived node restarts truly from zero.
    Full,
}

/// A protocol that does nothing; useful as a placeholder (e.g. for nodes
/// that only relay at the MAC layer in a test).
#[derive(Debug, Default, Clone, Copy)]
pub struct Idle;

impl Proto for Idle {
    fn start(&mut self, _ctx: &mut Ctx<'_>) {}
}
