//! Conservative-lookahead sharded execution.
//!
//! The world is partitioned into spatial shards — contiguous x-stripes
//! over the deployment's bounding box, i.e. contiguous blocks of the
//! medium's uniform grid cells — and each shard advances its own event
//! heap inside lookahead windows. The window bound is
//! `min(segment_end, m + L)` where `m` is the globally earliest pending
//! event and `L` the lookahead, so empty simulated time is skipped
//! automatically. `L` never exceeds the minimum cross-shard event
//! delay, `min(minimum frame airtime, wire latency)`: every event a
//! shard can address to another shard lands at least `L` after the
//! moment it is created, hence always at or beyond the current window
//! edge — delivering staged events at the barrier can never violate
//! timestamp order inside a window.
//!
//! At each barrier shards exchange three things, all produced and
//! routed in deterministic order (origin shard ascending, staging order
//! within an origin):
//!
//! 1. **Radio-state snapshots** of own nodes whose remotely visible
//!    state changed ([`crate::radio::NodeStateSnap`]): candidate
//!    filtering and CCA in other shards read them.
//! 2. **Echoed transmission records** ([`crate::radio::EchoTx`]) for
//!    border transmissions audible across the stripe boundary; the
//!    receiving shard adopts them into its slab so its collision and
//!    CCA scans see the foreign traffic, and evaluates its own nodes'
//!    receptions against the origin's PRR draws.
//! 3. **Cross-shard events** (receptions and backhaul messages)
//!    captured by the kernel's routing hook.
//!
//! # Semantics
//!
//! A sharded run is *not* event-for-event identical to the serial
//! kernel: zero-delay couplings (CCA during an ongoing foreign
//! transmission, collision with a transmission started mid-window in
//! another shard) are only visible from the next barrier on. Instead,
//! `shards = k` defines its own deterministic model: the outcome is a
//! pure function of (workload, seed, k), independent of how many OS
//! threads execute it — the serial and threaded drivers perform
//! byte-identical world operations, which the equivalence proptests
//! assert. Topologies whose radio clusters never straddle a shard
//! border reproduce the serial kernel exactly, up to the interleaving
//! of same-timestamp events from independent clusters in the merged
//! trace (the serial kernel orders those by global queue insertion,
//! the merge by shard).

use crate::ids::NodeId;
use crate::node::{Proto, StateLoss};
use crate::obs::{self, Event, Recorder};
use crate::radio::{EchoTx, MediumStats, NodeStateSnap, TxId};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::Stats;
use crate::world::{ShardRoute, SimConfig, StagedEv, World};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Shared constructor for the protocol stack of node `i`. Shard
/// replicas instantiate every node (foreign ones stay inert), so the
/// factory must be pure: same `i`, same protocol.
pub type ProtoFactory = Arc<dyn Fn(usize) -> Box<dyn Proto> + Send + Sync>;

/// Most shards an engine supports (shard audibility masks are `u64`).
pub(crate) const MAX_SHARDS: usize = 64;

/// A deferred engine-level operation, applied between windows.
pub(crate) enum EngineOp {
    /// Run a closure against the owning shard's replica.
    Closure(NodeId, Box<dyn FnOnce(&mut World) + Send>),
    /// Kill a node (full fault semantics in the owner, mirrors updated
    /// everywhere).
    Kill(NodeId),
    /// Revive a node.
    Revive(NodeId),
}

/// Per-shard buffer for structured events, merged deterministically
/// into the engine-level recorder at each barrier.
#[derive(Debug, Default)]
pub(crate) struct ShardBuf {
    events: Vec<Event>,
}

impl Recorder for ShardBuf {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Everything one shard sends at a barrier, pre-routed per target.
#[derive(Default)]
struct TargetBatch {
    snaps: Vec<NodeStateSnap>,
    /// `(origin tx id, record, pending local receptions)`.
    adopts: Vec<(TxId, EchoTx, u32)>,
    events: Vec<StagedEv>,
}

impl TargetBatch {
    fn is_empty(&self) -> bool {
        self.snaps.is_empty() && self.adopts.is_empty() && self.events.is_empty()
    }
}

struct Outbox {
    per_target: Vec<TargetBatch>,
    obs: Vec<Event>,
}

/// The sharded engine: `k` world replicas plus the barrier scaffolding
/// that keeps them exchanging border traffic in deterministic order.
pub(crate) struct ShardEngine {
    worlds: Vec<World>,
    shard_of: Vec<u8>,
    lookahead: SimDuration,
    /// Run windows inline on the calling thread instead of spawning one
    /// worker per shard. Same world operations in the same order — the
    /// equivalence proptests compare the two drivers byte for byte.
    serial: bool,
    now: SimTime,
    /// Engine-level structured-event sink; the per-replica [`ShardBuf`]s
    /// drain into it at barriers, globally ordered by
    /// `(time, shard, buffer position)`.
    recorder: Option<Box<dyn Recorder>>,
    actions: BTreeMap<(SimTime, u64), EngineOp>,
    action_seq: u64,
    merged_stats: Stats,
}

/// Assigns each node to an x-stripe shard and computes the stripe
/// intervals. Falls back to index chunks when every node shares one x
/// coordinate (stripes would be zero-width); audibility masks then
/// treat all shards as mutually audible, which is exactly right for
/// co-located nodes.
fn partition_x(xs: &[f64], k: usize) -> (Vec<u8>, Vec<(f64, f64)>) {
    let (min_x, max_x) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    let span = max_x - min_x;
    let stripes: Vec<(f64, f64)> = (0..k)
        .map(|i| {
            let w = if span > 0.0 { span / k as f64 } else { 0.0 };
            (min_x + i as f64 * w, min_x + (i + 1) as f64 * w)
        })
        .collect();
    let shard_of = if span > 0.0 {
        xs.iter()
            .map(|&x| {
                let idx = ((x - min_x) / span * k as f64).floor() as usize;
                idx.min(k - 1) as u8
            })
            .collect()
    } else {
        // Degenerate bounding box: chunk by index for balance.
        let n = xs.len().max(1);
        let chunk = n.div_ceil(k);
        (0..xs.len())
            .map(|i| ((i / chunk).min(k - 1)) as u8)
            .collect()
    };
    (shard_of, stripes)
}

/// Distance from `x` to the closed interval `[lo, hi]`.
fn dist_to_stripe(x: f64, (lo, hi): (f64, f64)) -> f64 {
    if x < lo {
        lo - x
    } else if x > hi {
        x - hi
    } else {
        0.0
    }
}

impl ShardEngine {
    /// Builds `shards` replicas of the configured world. Each replica
    /// holds *every* node (identical seeds, positions, clocks by
    /// construction) but only schedules protocol activity for its own;
    /// foreign nodes are inert mirrors refreshed at barriers.
    pub(crate) fn new(
        config: SimConfig,
        groups: &[(Topology, ProtoFactory)],
        shards: usize,
        lookahead: Option<SimDuration>,
        serial: bool,
    ) -> Self {
        assert!(
            (2..=MAX_SHARDS).contains(&shards),
            "shard count must be in 2..={MAX_SHARDS} (1 runs the serial kernel)"
        );
        let min_airtime = config.radio.airtime(0);
        let l_max = min_airtime.min(config.wire_latency);
        assert!(
            l_max >= SimDuration::from_micros(1),
            "sharded execution needs a nonzero minimum frame airtime and wire latency"
        );
        let lookahead = lookahead
            .unwrap_or(l_max)
            .min(l_max)
            .max(SimDuration::from_micros(1));

        let positions: Vec<_> = groups
            .iter()
            .flat_map(|(topo, _)| (0..topo.len()).map(move |i| topo.pos(i)))
            .collect();
        let xs: Vec<f64> = positions.iter().map(|p| p.x).collect();
        let (shard_of, stripes) = partition_x(&xs, shards);

        // Conservative audibility: a node is audible in shard `t` when
        // its x distance to stripe `t` is within the medium's maximum
        // range (y is ignored — a superset mask is always safe).
        let reach = config.radio.max_range().unwrap_or(f64::INFINITY);
        let echo_masks: Vec<u64> = xs
            .iter()
            .zip(&shard_of)
            .map(|(&x, &own)| {
                let mut mask = 0u64;
                for (t, &stripe) in stripes.iter().enumerate() {
                    if t != own as usize && dist_to_stripe(x, stripe) <= reach {
                        mask |= 1 << t;
                    }
                }
                mask
            })
            .collect();

        let recorder = obs::capture_recorder(config.seed);
        let mut worlds = Vec::with_capacity(shards);
        for s in 0..shards {
            let mut w = World::new_uncaptured(config.clone());
            w.medium_mut().enable_dirty_tracking();
            let mut i = 0usize;
            for (topo, make) in groups {
                for g in 0..topo.len() {
                    let pos = topo.pos(g);
                    if shard_of[i] as usize == s {
                        w.add_node(pos, make(g));
                    } else {
                        w.add_node_silent(pos, make(g));
                    }
                    i += 1;
                }
            }
            let own = shard_of.iter().map(|&o| o as usize == s).collect();
            w.set_shard_route(Some(Box::new(ShardRoute {
                own,
                echo_mask: echo_masks.clone(),
                out_events: Vec::new(),
                out_echoes: Vec::new(),
            })));
            if recorder.is_some() {
                w.set_recorder(Box::new(ShardBuf::default()));
            }
            worlds.push(w);
        }

        ShardEngine {
            worlds,
            shard_of,
            lookahead,
            serial,
            now: SimTime::ZERO,
            recorder,
            actions: BTreeMap::new(),
            action_seq: 0,
            merged_stats: Stats::new(),
        }
    }

    /// Current simulation time (the last barrier or deadline).
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Number of shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.worlds.len()
    }

    /// The configured lookahead.
    pub(crate) fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Total nodes across all shards.
    pub(crate) fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning `node`.
    pub(crate) fn owner(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// The owning replica of `node` (authoritative for its protocol,
    /// energy meter and clock).
    pub(crate) fn owner_world(&self, node: NodeId) -> &World {
        &self.worlds[self.owner(node)]
    }

    /// Mutable owning replica of `node`. Callers mutating shared medium
    /// state must follow up with [`ShardEngine::sync`].
    pub(crate) fn owner_world_mut(&mut self, node: NodeId) -> &mut World {
        let s = self.owner(node);
        &mut self.worlds[s]
    }

    /// Flushes staged cross-shard traffic and buffered observability
    /// events after out-of-band world access.
    pub(crate) fn sync(&mut self) {
        self.exchange();
    }

    /// Runs every replica up to `deadline` (inclusive), honouring
    /// scheduled engine operations along the way.
    pub(crate) fn run_until(&mut self, deadline: SimTime) {
        assert!(deadline >= self.now, "cannot run backwards");
        loop {
            let next_at = self
                .actions
                .keys()
                .next()
                .map(|&(t, _)| t)
                .filter(|&t| t <= deadline);
            let Some(at) = next_at else { break };
            if at > self.now {
                self.run_windows(at, false);
            }
            while let Some((&key, _)) = self.actions.first_key_value() {
                if key.0 != at {
                    break;
                }
                let op = self.actions.remove(&key).expect("present");
                self.apply_op(op);
            }
            self.exchange();
        }
        self.run_windows(deadline, true);
    }

    /// Runs until every shard's queue drains or `deadline` passes;
    /// `true` when the engine went idle.
    pub(crate) fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        loop {
            let m = self.worlds.iter().filter_map(World::next_event_time).min();
            match m {
                None if self.actions.is_empty() => {
                    self.exchange();
                    // The exchange may have unblocked cross-shard work.
                    if self.worlds.iter().all(|w| w.next_event_time().is_none()) {
                        return true;
                    }
                }
                Some(t) if t > deadline => return false,
                _ => {
                    let t = m.unwrap_or(deadline).min(deadline);
                    self.run_until(t);
                }
            }
        }
    }

    /// Schedules `f` to run against `node`'s replica at `at`. The
    /// closure sees *one shard's* world; mutations that other shards
    /// must observe (kills, link faults, partitions) should use the
    /// dedicated engine operations instead.
    pub(crate) fn schedule_closure(
        &mut self,
        at: SimTime,
        node: NodeId,
        f: Box<dyn FnOnce(&mut World) + Send>,
    ) {
        self.schedule_op(at, EngineOp::Closure(node, f));
    }

    /// Schedules an engine operation at `at`.
    pub(crate) fn schedule_op(&mut self, at: SimTime, op: EngineOp) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.action_seq;
        self.action_seq += 1;
        self.actions.insert((at, seq), op);
    }

    fn apply_op(&mut self, op: EngineOp) {
        match op {
            EngineOp::Closure(node, f) => {
                let s = self.owner(node);
                f(&mut self.worlds[s]);
            }
            EngineOp::Kill(node) => self.kill_now(node),
            EngineOp::Revive(node) => self.revive_now(node),
        }
    }

    /// Kills `node` immediately: full fault semantics in the owner,
    /// mirror updates everywhere else.
    pub(crate) fn kill_now(&mut self, node: NodeId) {
        let owner = self.owner(node);
        for (s, w) in self.worlds.iter_mut().enumerate() {
            if s == owner {
                w.kill(node);
            } else {
                w.set_foreign_alive(node, false);
            }
        }
    }

    /// Revives `node` immediately.
    pub(crate) fn revive_now(&mut self, node: NodeId) {
        let owner = self.owner(node);
        for (s, w) in self.worlds.iter_mut().enumerate() {
            if s == owner {
                w.revive(node);
            } else {
                w.set_foreign_alive(node, true);
            }
        }
    }

    /// Severs the `a`–`b` link in every replica; the owner of `a` emits
    /// the fault event.
    pub(crate) fn block_link(&mut self, a: NodeId, b: NodeId) {
        let owner = self.owner(a);
        for (s, w) in self.worlds.iter_mut().enumerate() {
            if s == owner {
                w.block_link(a, b);
            } else {
                w.medium_mut().block_link(a, b);
            }
        }
    }

    /// Restores the `a`–`b` link in every replica.
    pub(crate) fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        let owner = self.owner(a);
        for (s, w) in self.worlds.iter_mut().enumerate() {
            if s == owner {
                w.unblock_link(a, b);
            } else {
                w.medium_mut().unblock_link(a, b);
            }
        }
    }

    /// Enables or disables the global partition in every replica.
    pub(crate) fn set_partitioned(&mut self, on: bool) {
        for (s, w) in self.worlds.iter_mut().enumerate() {
            if s == 0 {
                w.set_partitioned(on); // emits the fault event (node 0)
            } else {
                w.medium_mut().set_partitioned(on);
            }
        }
    }

    /// Assigns a partition group in every replica.
    pub(crate) fn set_group(&mut self, node: NodeId, group: u16) {
        for w in &mut self.worlds {
            w.medium_mut().set_group(node, group);
        }
    }

    /// Sets the crash state-loss policy in every replica.
    pub(crate) fn set_state_loss(&mut self, loss: StateLoss) {
        for w in &mut self.worlds {
            w.set_state_loss(loss);
        }
    }

    /// Toggles the spatial candidate index in every replica.
    pub(crate) fn set_spatial_index(&mut self, on: bool) {
        for w in &mut self.worlds {
            w.set_spatial_index(on);
        }
    }

    /// Whether the spatial index is active (uniform across replicas).
    pub(crate) fn spatial_index_active(&self) -> bool {
        self.worlds[0].spatial_index_active()
    }

    /// Statistics merged across shards, in shard order.
    pub(crate) fn stats(&mut self) -> &Stats {
        let mut merged = Stats::new();
        for w in &self.worlds {
            merged.merge(w.stats());
        }
        self.merged_stats = merged;
        &self.merged_stats
    }

    /// Medium statistics summed across shards. Each counter increments
    /// only in the shard where the event evaluates, so the sum is the
    /// global count without double counting.
    pub(crate) fn medium_stats(&self) -> MediumStats {
        let mut total = MediumStats::default();
        for w in &self.worlds {
            let s = w.medium().stats();
            total.tx_started += s.tx_started;
            total.delivered += s.delivered;
            total.lost_prr += s.lost_prr;
            total.lost_collision += s.lost_collision;
            total.lost_radio_moved += s.lost_radio_moved;
            total.filtered += s.filtered;
            total.lost_expired += s.lost_expired;
        }
        total
    }

    /// Events dispatched, summed across shards.
    pub(crate) fn events_dispatched(&self) -> u64 {
        self.worlds.iter().map(World::events_dispatched).sum()
    }

    /// Installs an engine-level recorder (and per-shard buffers).
    pub(crate) fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.flush_obs();
        self.recorder = Some(recorder);
        for w in &mut self.worlds {
            if w.recorder_as::<ShardBuf>().is_none() {
                w.set_recorder(Box::new(ShardBuf::default()));
            }
        }
    }

    /// Removes and returns the engine-level recorder after flushing
    /// buffered events; per-shard buffers are removed too.
    pub(crate) fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.flush_obs();
        for w in &mut self.worlds {
            w.take_recorder();
        }
        self.recorder.take()
    }

    /// Whether an engine-level recorder is installed.
    pub(crate) fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// The engine recorder downcast to `T`.
    pub(crate) fn recorder_as<T: Recorder>(&self) -> Option<&T> {
        self.recorder
            .as_deref()
            .and_then(|r| r.as_any().downcast_ref::<T>())
    }

    /// Mutable engine recorder downcast to `T`.
    pub(crate) fn recorder_as_mut<T: Recorder>(&mut self) -> Option<&mut T> {
        self.recorder
            .as_deref_mut()
            .and_then(|r| r.as_any_mut().downcast_mut::<T>())
    }

    /// Drains per-shard observability buffers into the engine recorder
    /// without exchanging simulation state.
    fn flush_obs(&mut self) {
        let mut outs: Vec<Outbox> = Vec::with_capacity(self.worlds.len());
        for w in &mut self.worlds {
            let obs = w
                .recorder_as_mut::<ShardBuf>()
                .map(|b| std::mem::take(&mut b.events))
                .unwrap_or_default();
            outs.push(Outbox {
                per_target: Vec::new(),
                obs,
            });
        }
        merge_obs(&mut self.recorder, &mut outs);
    }

    /// Advances all shards in lookahead windows until `end`. The final
    /// pass is inclusive of events at `end` when `inclusive` (matching
    /// [`World::run_until`]'s deadline semantics) and exclusive when the
    /// stop is an action boundary.
    fn run_windows(&mut self, end: SimTime, inclusive: bool) {
        if self.serial {
            loop {
                let m = self.worlds.iter().filter_map(World::next_event_time).min();
                let Some(m) = m.filter(|&m| m < end) else {
                    break;
                };
                let w_end = end.min(m + self.lookahead);
                for w in &mut self.worlds {
                    w.run_until_before(w_end);
                }
                self.exchange();
            }
            for w in &mut self.worlds {
                if inclusive {
                    w.run_until(end);
                } else {
                    w.run_until_before(end);
                }
            }
            self.exchange();
        } else {
            self.run_windows_threaded(end, inclusive);
        }
        self.now = end;
    }

    /// The threaded window driver: one persistent worker per shard, the
    /// calling thread coordinating. Performs exactly the same world
    /// operations in the same order as the serial driver.
    fn run_windows_threaded(&mut self, end: SimTime, inclusive: bool) {
        #[derive(Clone, Copy, PartialEq)]
        enum Cmd {
            /// Run strictly before the bound (one lookahead window).
            Window(SimTime),
            /// Final pass up to `end` (inclusive or not per the outer call).
            Final,
            Stop,
        }

        let k = self.worlds.len();
        let shard_of = &self.shard_of;
        let lookahead = self.lookahead;
        let recorder = &mut self.recorder;
        let barrier = Barrier::new(k + 1);
        let cmd = Mutex::new(Cmd::Final);
        let next_ev: Vec<AtomicU64> = self
            .worlds
            .iter()
            .map(|w| AtomicU64::new(w.next_event_time().map_or(u64::MAX, |t| t.as_micros())))
            .collect();
        let outboxes: Vec<Mutex<Option<Outbox>>> = (0..k).map(|_| Mutex::new(None)).collect();
        let inboxes: Vec<Mutex<Vec<TargetBatch>>> =
            (0..k).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|scope| {
            for (i, w) in self.worlds.iter_mut().enumerate() {
                let barrier = &barrier;
                let cmd = &cmd;
                let next_ev = &next_ev;
                let outboxes = &outboxes;
                let inboxes = &inboxes;
                scope.spawn(move || loop {
                    barrier.wait(); // (a) command published
                    let c = *cmd.lock().expect("cmd");
                    match c {
                        Cmd::Stop => break,
                        Cmd::Window(w_end) => w.run_until_before(w_end),
                        Cmd::Final => {
                            if inclusive {
                                w.run_until(end);
                            } else {
                                w.run_until_before(end);
                            }
                        }
                    }
                    *outboxes[i].lock().expect("outbox") = Some(drain_outbox(w, i, shard_of, k));
                    barrier.wait(); // (b) outboxes ready
                    barrier.wait(); // (c) inboxes routed
                    let batches = std::mem::take(&mut *inboxes[i].lock().expect("inbox"));
                    apply_inbox(w, batches);
                    next_ev[i].store(
                        w.next_event_time().map_or(u64::MAX, |t| t.as_micros()),
                        Ordering::Relaxed,
                    );
                    barrier.wait(); // (d) window applied
                });
            }

            loop {
                let m = next_ev
                    .iter()
                    .map(|a| a.load(Ordering::Relaxed))
                    .min()
                    .unwrap_or(u64::MAX);
                let c = if m != u64::MAX && SimTime::from_micros(m) < end {
                    Cmd::Window(end.min(SimTime::from_micros(m) + lookahead))
                } else {
                    Cmd::Final
                };
                *cmd.lock().expect("cmd") = c;
                barrier.wait(); // (a)
                barrier.wait(); // (b)
                let mut outs: Vec<Outbox> = outboxes
                    .iter()
                    .map(|m| m.lock().expect("outbox").take().expect("drained"))
                    .collect();
                merge_obs(recorder, &mut outs);
                for (i, out) in outs.into_iter().enumerate() {
                    for (j, batch) in out.per_target.into_iter().enumerate() {
                        if i != j && !batch.is_empty() {
                            inboxes[j].lock().expect("inbox").push(batch);
                        }
                    }
                }
                barrier.wait(); // (c)
                barrier.wait(); // (d)
                if c == Cmd::Final {
                    *cmd.lock().expect("cmd") = Cmd::Stop;
                    barrier.wait(); // (a) — workers observe Stop and exit
                    break;
                }
            }
        });
    }

    /// One barrier exchange driven serially (window loop in serial
    /// mode, and all out-of-band flushes).
    fn exchange(&mut self) {
        let k = self.worlds.len();
        let mut outs: Vec<Outbox> = Vec::with_capacity(k);
        for (i, w) in self.worlds.iter_mut().enumerate() {
            outs.push(drain_outbox(w, i, &self.shard_of, k));
        }
        merge_obs(&mut self.recorder, &mut outs);
        let mut inboxes: Vec<Vec<TargetBatch>> = (0..k).map(|_| Vec::new()).collect();
        for (i, out) in outs.into_iter().enumerate() {
            for (j, batch) in out.per_target.into_iter().enumerate() {
                if i != j && !batch.is_empty() {
                    inboxes[j].push(batch);
                }
            }
        }
        for (j, inbox) in inboxes.into_iter().enumerate() {
            apply_inbox(&mut self.worlds[j], inbox);
        }
    }
}

/// Drains shard `i`'s staged cross-shard traffic into per-target
/// batches, plus its buffered observability events.
fn drain_outbox(w: &mut World, i: usize, shard_of: &[u8], k: usize) -> Outbox {
    let (events, echo_notes) = w.take_staged();
    let dirty = w.medium_mut().drain_dirty();
    let mut per_target: Vec<TargetBatch> = (0..k).map(|_| TargetBatch::default()).collect();

    // State snapshots of own nodes, broadcast to every other shard.
    for &n in &dirty {
        if shard_of[n as usize] as usize != i {
            continue; // a mirror changed; its owner broadcasts the truth
        }
        let snap = w.medium().snap(n);
        for (j, tb) in per_target.iter_mut().enumerate() {
            if j != i {
                tb.snaps.push(snap);
            }
        }
    }

    // Echo records for border transmissions, with the number of
    // receptions each target will evaluate against its adopted copy.
    for (tx, mask) in echo_notes {
        let Some(echo) = w.medium().export_echo(tx) else {
            continue; // structurally unreachable: records outlive their window
        };
        for (j, tb) in per_target.iter_mut().enumerate() {
            if j == i || mask & (1 << j) == 0 {
                continue;
            }
            let pending = events
                .iter()
                .filter(|e| {
                    matches!(e, StagedEv::RxEnd { node, tx: etx, .. }
                        if *etx == tx && shard_of[node.index()] as usize == j)
                })
                .count() as u32;
            tb.adopts.push((tx, echo.clone(), pending));
        }
    }

    // Events in staging order (relative order fixes queue tie-breaks).
    for ev in events {
        let j = match &ev {
            StagedEv::RxEnd { node, .. } => shard_of[node.index()],
            StagedEv::Wire { to, .. } => shard_of[to.index()],
        } as usize;
        per_target[j].events.push(ev);
    }

    let obs = w
        .recorder_as_mut::<ShardBuf>()
        .map(|b| std::mem::take(&mut b.events))
        .unwrap_or_default();
    Outbox { per_target, obs }
}

/// Applies inbound batches (origins ascending): snapshots, then record
/// adoption, then event injection with transmission ids rewritten to
/// the adopted copies.
fn apply_inbox(w: &mut World, batches: Vec<TargetBatch>) {
    for b in batches {
        for s in &b.snaps {
            w.apply_foreign_snap(s);
        }
        let mut map: Vec<(TxId, TxId)> = Vec::with_capacity(b.adopts.len());
        for (otx, echo, pending) in &b.adopts {
            let ltx = w.medium_mut().adopt_echo(echo, *pending);
            map.push((*otx, ltx));
        }
        for ev in b.events {
            match ev {
                StagedEv::RxEnd { time, node, tx } => {
                    let ltx = map
                        .iter()
                        .find(|(o, _)| *o == tx)
                        .map(|(_, l)| *l)
                        .expect("staged reception without an adopted record");
                    w.inject_rx_end(time, node, ltx);
                }
                StagedEv::Wire {
                    time,
                    to,
                    from,
                    payload,
                } => w.inject_wire(time, to, from, payload),
            }
        }
    }
}

/// Merges per-shard observability buffers into the engine recorder,
/// stably ordered by `(time, shard, buffer position)`.
fn merge_obs(recorder: &mut Option<Box<dyn Recorder>>, outs: &mut [Outbox]) {
    let Some(rec) = recorder.as_deref_mut() else {
        return;
    };
    let total: usize = outs.iter().map(|o| o.obs.len()).sum();
    if total == 0 {
        return;
    }
    let mut merged: Vec<(SimTime, usize, usize, Event)> = Vec::with_capacity(total);
    for (i, out) in outs.iter_mut().enumerate() {
        for (p, ev) in out.obs.drain(..).enumerate() {
            merged.push((ev.t, i, p, ev));
        }
    }
    merged.sort_unstable_by_key(|&(t, i, p, _)| (t, i, p));
    for (_, _, _, ev) in &merged {
        rec.record(ev);
    }
}
