//! The composable front door of the simulator: [`SimBuilder`] → [`Sim`].
//!
//! Earlier revisions of this crate accreted parallel entry points — a
//! config struct here, an `add_nodes` loop there, fan-out helpers in the
//! bench crate — and every new kernel capability (spatial index, crash
//! state-loss policy, now sharding) grew another knob on another
//! surface. [`SimBuilder`] folds them into one declarative builder:
//! topology, radio, clocks, faults, observability and
//! [`ShardConfig`] compose in a single place and [`SimBuilder::build`]
//! yields a [`Sim`] handle that runs the same API whether the kernel
//! executes on one thread or on one worker per shard.
//!
//! With `shards = 1` (the default) a [`Sim`] *is* the classic serial
//! [`World`] — byte-identical schedules, RNG streams and traces — and
//! [`Sim::world`] exposes it for tests that poke kernel internals. With
//! `shards = k ≥ 2` the nodes are partitioned into `k` spatial stripes
//! advanced by the conservative-lookahead engine (see the `shard`
//! module's docs for the synchronization protocol and its semantics).
//!
//! [`Sim::checkpoint`] captures a replayable description of the run so
//! far — the build spec plus the timestamped operation log — and
//! [`Checkpoint::resume`] replays it into a fresh `Sim`, the enabler
//! for snapshot/fork experiment designs.
//!
//! # Examples
//!
//! ```
//! use iiot_sim::prelude::*;
//! use iiot_sim::sim::SimBuilder;
//!
//! /// Broadcast one hello and count how many neighbours answer.
//! struct Hello { replies: u32 }
//!
//! impl Proto for Hello {
//!     fn start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.radio_on().expect("radio");
//!         if ctx.id() == NodeId(0) {
//!             ctx.set_timer(SimDuration::from_millis(10), 0);
//!         }
//!     }
//!     fn timer(&mut self, ctx: &mut Ctx<'_>, _t: Timer) {
//!         ctx.transmit(Dst::Broadcast, 0, b"hi".to_vec()).expect("tx");
//!     }
//!     fn frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, _info: RxInfo) {
//!         if frame.payload == b"hi" {
//!             ctx.transmit(Dst::Unicast(frame.src), 0, b"yo".to_vec()).ok();
//!         } else {
//!             self.replies += 1;
//!         }
//!     }
//! }
//!
//! let mut sim = SimBuilder::new()
//!     .seed(7)
//!     .nodes(Topology::line(3, 20.0), |_| Box::new(Hello { replies: 0 }))
//!     .build();
//! sim.run(SimDuration::from_secs(1));
//! // Only the immediate neighbour is in the 30 m unit-disk range.
//! assert_eq!(sim.proto::<Hello>(NodeId(0)).replies, 1);
//! ```

use crate::clock::ClockModel;
use crate::energy::{EnergyModel, EnergyUsage};
use crate::ids::NodeId;
use crate::node::{Proto, StateLoss};
use crate::obs::Recorder;
use crate::radio::{LinkModel, MediumStats, RadioConfig};
use crate::shard::{EngineOp, ShardEngine, MAX_SHARDS};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::Stats;
use crate::world::{Ctx, SimConfig, World};
use std::sync::Arc;

pub use crate::shard::ProtoFactory;

/// How a [`Sim`] is split across worker threads.
///
/// `shards = 1` (the default) runs the classic serial kernel,
/// byte-identical to pre-sharding builds. `shards = k ≥ 2` partitions
/// the deployment into `k` spatial stripes synchronized at
/// conservative-lookahead barriers; the result is deterministic in
/// `(workload, seed, k)` and independent of `serial`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards (1 = serial kernel, max 64).
    pub shards: usize,
    /// Synchronization lookahead. `None` uses the largest safe value,
    /// `min(minimum frame airtime, wire latency)`; explicit values are
    /// clamped into `[1 µs, that bound]`.
    pub lookahead: Option<SimDuration>,
    /// Drive shard windows from the calling thread instead of one
    /// worker thread per shard. Same results either way; useful for
    /// debugging, for the equivalence tests, and on single-core
    /// machines, where the per-shard medium's smaller scans still pay
    /// but extra threads would only add scheduling overhead.
    pub serial: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            lookahead: None,
            serial: false,
        }
    }
}

impl ShardConfig {
    /// A config running `shards` threaded shards with default lookahead.
    pub fn threaded(shards: usize) -> Self {
        ShardConfig {
            shards,
            ..Self::default()
        }
    }

    /// A config running `shards` shards serially on the calling thread.
    pub fn serial(shards: usize) -> Self {
        ShardConfig {
            shards,
            serial: true,
            ..Self::default()
        }
    }
}

/// One node group: a topology plus the factory that builds each node's
/// protocol stack.
type Group = (Topology, ProtoFactory);

/// The cloneable description a [`Sim`] is built from; kept by the sim
/// for [`Sim::checkpoint`].
#[derive(Clone)]
struct SimSpec {
    config: SimConfig,
    groups: Vec<Group>,
    shard: ShardConfig,
    spatial_index: Option<bool>,
    state_loss: Option<StateLoss>,
}

/// A replayable operation, logged by [`Sim`] mutators in call order so
/// [`Checkpoint::resume`] can reproduce the run.
#[derive(Clone, Debug)]
enum OpRec {
    RunUntil(SimTime),
    Kill(NodeId),
    Revive(NodeId),
    KillAt(SimTime, NodeId),
    ReviveAt(SimTime, NodeId),
    BlockLink(NodeId, NodeId),
    UnblockLink(NodeId, NodeId),
    SetPartitioned(bool),
    SetGroup(NodeId, u16),
    SetStateLoss(StateLoss),
    SetSpatialIndex(bool),
}

/// Builder for a [`Sim`]: one composable surface for topology, radio,
/// clocks, energy, faults, observability and sharding. See the
/// [module docs](self) for a quickstart.
pub struct SimBuilder {
    config: SimConfig,
    groups: Vec<Group>,
    shard: ShardConfig,
    spatial_index: Option<bool>,
    state_loss: Option<StateLoss>,
    recorder: Option<Box<dyn Recorder>>,
}

impl Default for SimBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimBuilder {
    /// A builder with the default [`SimConfig`] and no nodes.
    pub fn new() -> Self {
        SimBuilder {
            config: SimConfig::default(),
            groups: Vec::new(),
            shard: ShardConfig::default(),
            spatial_index: None,
            state_loss: None,
            recorder: None,
        }
    }

    /// Replaces the whole kernel configuration at once.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the master seed (see [`SimConfig::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.seed(seed);
        self
    }

    /// Sets a unit-disk radio range in meters (see [`SimConfig::radius`]).
    pub fn radius(mut self, range: f64) -> Self {
        self.config = self.config.radius(range);
        self
    }

    /// Sets the link model (see [`SimConfig::link`]).
    pub fn link(mut self, link: LinkModel) -> Self {
        self.config = self.config.link(link);
        self
    }

    /// Replaces the radio configuration (see [`SimConfig::radio`]).
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.config = self.config.radio(radio);
        self
    }

    /// Replaces the energy model (see [`SimConfig::energy`]).
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.config = self.config.energy(energy);
        self
    }

    /// Sets the backhaul latency (see [`SimConfig::wire_latency`]).
    pub fn wire_latency(mut self, latency: SimDuration) -> Self {
        self.config = self.config.wire_latency(latency);
        self
    }

    /// Sets the oscillator model (see [`SimConfig::clock`]).
    pub fn clock(mut self, clock: ClockModel) -> Self {
        self.config = self.config.clock(clock);
        self
    }

    /// Adds a group of nodes: one per position in `topo`, with `make(i)`
    /// building the protocol stack of the group's `i`-th node. Node ids
    /// are assigned in position order, groups in the order added.
    ///
    /// The factory must be pure (same `i` → same protocol): sharded
    /// builds call it once per shard replica.
    pub fn nodes<F>(mut self, topo: Topology, make: F) -> Self
    where
        F: Fn(usize) -> Box<dyn Proto> + Send + Sync + 'static,
    {
        self.groups.push((topo, Arc::new(make)));
        self
    }

    /// Adds a node group with an already-shared factory (useful when one
    /// factory serves several groups or is reused across trials).
    pub fn nodes_shared(mut self, topo: Topology, make: ProtoFactory) -> Self {
        self.groups.push((topo, make));
        self
    }

    /// Configures sharded execution (see [`ShardConfig`]).
    pub fn sharding(mut self, shard: ShardConfig) -> Self {
        self.shard = shard;
        self
    }

    /// Shorthand for [`sharding`](Self::sharding) with `shards` threaded
    /// shards and default lookahead.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shard.shards = shards;
        self
    }

    /// Forces the spatial candidate index on or off (defaults to the
    /// kernel's own heuristic).
    pub fn spatial_index(mut self, on: bool) -> Self {
        self.spatial_index = Some(on);
        self
    }

    /// Sets what crashed nodes lose (see [`StateLoss`]).
    pub fn state_loss(mut self, loss: StateLoss) -> Self {
        self.state_loss = Some(loss);
        self
    }

    /// Installs a structured-event recorder on the built sim.
    pub fn recorder(mut self, recorder: Box<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the [`Sim`].
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0 or exceeds 64, or when a sharded build
    /// has a zero minimum frame airtime or wire latency (the lookahead
    /// would be empty).
    pub fn build(self) -> Sim {
        let SimBuilder {
            config,
            groups,
            shard,
            spatial_index,
            state_loss,
            recorder,
        } = self;
        assert!(
            (1..=MAX_SHARDS).contains(&shard.shards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        let spec = SimSpec {
            config: config.clone(),
            groups: groups.clone(),
            shard,
            spatial_index,
            state_loss,
        };
        let mut inner = if shard.shards == 1 {
            let mut world = World::new(config);
            for (topo, make) in &groups {
                world.add_nodes(topo, |i| make(i));
            }
            Inner::Single(Box::new(world))
        } else {
            Inner::Sharded(Box::new(ShardEngine::new(
                config,
                &groups,
                shard.shards,
                shard.lookahead,
                shard.serial,
            )))
        };
        if let Some(on) = spatial_index {
            match &mut inner {
                Inner::Single(w) => w.set_spatial_index(on),
                Inner::Sharded(e) => e.set_spatial_index(on),
            }
        }
        if let Some(loss) = state_loss {
            match &mut inner {
                Inner::Single(w) => w.set_state_loss(loss),
                Inner::Sharded(e) => e.set_state_loss(loss),
            }
        }
        let mut sim = Sim {
            inner,
            spec,
            ops: Vec::new(),
            opaque: false,
        };
        if let Some(r) = recorder {
            sim.set_recorder(r);
        }
        sim
    }
}

enum Inner {
    // Both variants boxed: a serial World is ~1 kB and the shard
    // engine a few hundred bytes, while Sim moves by value through
    // builders and fan-out closures.
    Single(Box<World>),
    Sharded(Box<ShardEngine>),
}

/// A running simulation built by [`SimBuilder`]: the same control,
/// inspection and fault-injection API over the serial kernel
/// (`shards = 1`) and the sharded engine (`shards ≥ 2`).
pub struct Sim {
    inner: Inner,
    spec: SimSpec,
    ops: Vec<OpRec>,
    /// Set when a non-replayable mutation happened (closures, direct
    /// protocol/world access); [`Sim::checkpoint`] then refuses.
    opaque: bool,
}

impl Sim {
    /// Advances the simulation by `d`.
    pub fn run(&mut self, d: SimDuration) {
        self.run_until(self.now() + d);
    }

    /// Alias of [`run`](Self::run), matching [`World::run_for`].
    pub fn run_for(&mut self, d: SimDuration) {
        self.run(d);
    }

    /// Advances the simulation to `deadline` (inclusive of events at
    /// `deadline`, like [`World::run_until`]).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ops.push(OpRec::RunUntil(deadline));
        match &mut self.inner {
            Inner::Single(w) => w.run_until(deadline),
            Inner::Sharded(e) => e.run_until(deadline),
        }
    }

    /// Runs until the event queue drains or `deadline` passes; `true`
    /// when the simulation went idle.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        self.opaque = true; // idle time depends on the queue, not the log
        match &mut self.inner {
            Inner::Single(w) => w.run_until_idle(deadline),
            Inner::Sharded(e) => e.run_until_idle(deadline),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Inner::Single(w) => w.now(),
            Inner::Sharded(e) => e.now(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match &self.inner {
            Inner::Single(w) => w.node_count(),
            Inner::Sharded(e) => e.node_count(),
        }
    }

    /// Number of shards (1 for the serial kernel).
    pub fn shards(&self) -> usize {
        match &self.inner {
            Inner::Single(_) => 1,
            Inner::Sharded(e) => e.shard_count(),
        }
    }

    /// The effective synchronization lookahead (`None` when serial).
    pub fn lookahead(&self) -> Option<SimDuration> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Sharded(e) => Some(e.lookahead()),
        }
    }

    /// Events dispatched so far (summed across shards).
    pub fn events_dispatched(&self) -> u64 {
        match &self.inner {
            Inner::Single(w) => w.events_dispatched(),
            Inner::Sharded(e) => e.events_dispatched(),
        }
    }

    /// Experiment statistics (merged across shards in shard order).
    pub fn stats(&mut self) -> &Stats {
        match &mut self.inner {
            Inner::Single(w) => w.stats(),
            Inner::Sharded(e) => e.stats(),
        }
    }

    /// Medium-level delivery statistics (summed across shards).
    pub fn medium_stats(&self) -> MediumStats {
        match &self.inner {
            Inner::Single(w) => w.medium().stats(),
            Inner::Sharded(e) => e.medium_stats(),
        }
    }

    /// Energy usage of `node` so far.
    pub fn energy(&self, node: NodeId) -> EnergyUsage {
        match &self.inner {
            Inner::Single(w) => w.energy(node),
            Inner::Sharded(e) => e.owner_world(node).energy(node),
        }
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        match &self.inner {
            Inner::Single(w) => w.energy_model(),
            Inner::Sharded(e) => e.owner_world(NodeId(0)).energy_model(),
        }
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        match &self.inner {
            Inner::Single(w) => w.is_alive(node),
            Inner::Sharded(e) => e.owner_world(node).is_alive(node),
        }
    }

    /// `node`'s protocol downcast to `T`; panics on a type mismatch.
    pub fn proto<T: Proto>(&self, node: NodeId) -> &T {
        match &self.inner {
            Inner::Single(w) => w.proto(node),
            Inner::Sharded(e) => e.owner_world(node).proto(node),
        }
    }

    /// Mutable access to `node`'s protocol. Marks the sim
    /// non-checkpointable (the mutation cannot be replayed).
    pub fn proto_mut<T: Proto>(&mut self, node: NodeId) -> &mut T {
        self.opaque = true;
        match &mut self.inner {
            Inner::Single(w) => w.proto_mut(node),
            Inner::Sharded(e) => e.owner_world_mut(node).proto_mut(node),
        }
    }

    /// `node`'s drifting local clock reading at the current time.
    pub fn local_time_of(&mut self, node: NodeId) -> SimTime {
        match &mut self.inner {
            Inner::Single(w) => w.local_time_of(node),
            Inner::Sharded(e) => e.owner_world_mut(node).local_time_of(node),
        }
    }

    /// Runs `f` with `node`'s protocol and a live [`Ctx`], outside any
    /// event dispatch. Marks the sim non-checkpointable.
    pub fn with_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn Proto, &mut Ctx<'_>) -> R,
    ) -> R {
        self.opaque = true;
        match &mut self.inner {
            Inner::Single(w) => w.with_ctx(node, f),
            Inner::Sharded(e) => {
                let r = e.owner_world_mut(node).with_ctx(node, f);
                e.sync();
                r
            }
        }
    }

    /// Schedules `f` to run against `node`'s [`World`] at `at`. Under
    /// sharding the closure sees the owning shard's replica; mutations
    /// other shards must observe should use the dedicated `Sim` methods.
    /// Marks the sim non-checkpointable.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        node: NodeId,
        f: impl FnOnce(&mut World) + Send + 'static,
    ) {
        self.opaque = true;
        match &mut self.inner {
            Inner::Single(w) => w.schedule(at, f),
            Inner::Sharded(e) => e.schedule_closure(at, node, Box::new(f)),
        }
    }

    /// Crashes `node` immediately (see [`World::kill`]).
    pub fn kill(&mut self, node: NodeId) {
        self.ops.push(OpRec::Kill(node));
        match &mut self.inner {
            Inner::Single(w) => w.kill(node),
            Inner::Sharded(e) => e.kill_now(node),
        }
    }

    /// Revives `node` immediately (see [`World::revive`]).
    pub fn revive(&mut self, node: NodeId) {
        self.ops.push(OpRec::Revive(node));
        match &mut self.inner {
            Inner::Single(w) => w.revive(node),
            Inner::Sharded(e) => e.revive_now(node),
        }
    }

    /// Schedules a crash of `node` at `at`.
    pub fn kill_at(&mut self, at: SimTime, node: NodeId) {
        self.ops.push(OpRec::KillAt(at, node));
        match &mut self.inner {
            Inner::Single(w) => w.kill_at(at, node),
            Inner::Sharded(e) => e.schedule_op(at, EngineOp::Kill(node)),
        }
    }

    /// Schedules a revival of `node` at `at`.
    pub fn revive_at(&mut self, at: SimTime, node: NodeId) {
        self.ops.push(OpRec::ReviveAt(at, node));
        match &mut self.inner {
            Inner::Single(w) => w.revive_at(at, node),
            Inner::Sharded(e) => e.schedule_op(at, EngineOp::Revive(node)),
        }
    }

    /// Severs the bidirectional `a`–`b` link.
    pub fn block_link(&mut self, a: NodeId, b: NodeId) {
        self.ops.push(OpRec::BlockLink(a, b));
        match &mut self.inner {
            Inner::Single(w) => w.block_link(a, b),
            Inner::Sharded(e) => e.block_link(a, b),
        }
    }

    /// Restores the `a`–`b` link.
    pub fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        self.ops.push(OpRec::UnblockLink(a, b));
        match &mut self.inner {
            Inner::Single(w) => w.unblock_link(a, b),
            Inner::Sharded(e) => e.unblock_link(a, b),
        }
    }

    /// Enables or disables the administrative partition.
    pub fn set_partitioned(&mut self, on: bool) {
        self.ops.push(OpRec::SetPartitioned(on));
        match &mut self.inner {
            Inner::Single(w) => w.set_partitioned(on),
            Inner::Sharded(e) => e.set_partitioned(on),
        }
    }

    /// Assigns `node` to partition `group`.
    pub fn set_group(&mut self, node: NodeId, group: u16) {
        self.ops.push(OpRec::SetGroup(node, group));
        match &mut self.inner {
            Inner::Single(w) => w.medium_mut().set_group(node, group),
            Inner::Sharded(e) => e.set_group(node, group),
        }
    }

    /// Sets what crashed nodes lose (see [`StateLoss`]).
    pub fn set_state_loss(&mut self, loss: StateLoss) {
        self.ops.push(OpRec::SetStateLoss(loss));
        match &mut self.inner {
            Inner::Single(w) => w.set_state_loss(loss),
            Inner::Sharded(e) => e.set_state_loss(loss),
        }
    }

    /// Forces the spatial candidate index on or off.
    pub fn set_spatial_index(&mut self, on: bool) {
        self.ops.push(OpRec::SetSpatialIndex(on));
        match &mut self.inner {
            Inner::Single(w) => w.set_spatial_index(on),
            Inner::Sharded(e) => e.set_spatial_index(on),
        }
    }

    /// Whether the spatial candidate index is active.
    pub fn spatial_index_active(&self) -> bool {
        match &self.inner {
            Inner::Single(w) => w.spatial_index_active(),
            Inner::Sharded(e) => e.spatial_index_active(),
        }
    }

    /// Installs a structured-event recorder.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        match &mut self.inner {
            Inner::Single(w) => w.set_recorder(recorder),
            Inner::Sharded(e) => e.set_recorder(recorder),
        }
    }

    /// Removes and returns the recorder, flushing buffered events.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        match &mut self.inner {
            Inner::Single(w) => w.take_recorder(),
            Inner::Sharded(e) => e.take_recorder(),
        }
    }

    /// Whether a recorder is installed.
    pub fn has_recorder(&self) -> bool {
        match &self.inner {
            Inner::Single(w) => w.has_recorder(),
            Inner::Sharded(e) => e.has_recorder(),
        }
    }

    /// The recorder downcast to `T`.
    pub fn recorder_as<T: Recorder>(&self) -> Option<&T> {
        match &self.inner {
            Inner::Single(w) => w.recorder_as::<T>(),
            Inner::Sharded(e) => e.recorder_as::<T>(),
        }
    }

    /// The recorder downcast to a mutable `T`.
    pub fn recorder_as_mut<T: Recorder>(&mut self) -> Option<&mut T> {
        match &mut self.inner {
            Inner::Single(w) => w.recorder_as_mut::<T>(),
            Inner::Sharded(e) => e.recorder_as_mut::<T>(),
        }
    }

    /// The underlying serial [`World`].
    ///
    /// # Panics
    ///
    /// Panics for sharded sims — there is no single world to hand out.
    /// Kernel-internal tests that need this bridge run at `shards = 1`.
    pub fn world(&self) -> &World {
        match &self.inner {
            Inner::Single(w) => w,
            Inner::Sharded(_) => panic!("Sim::world: sharded sims have no single World"),
        }
    }

    /// Mutable access to the underlying serial [`World`]. Marks the sim
    /// non-checkpointable.
    ///
    /// # Panics
    ///
    /// Panics for sharded sims, like [`world`](Self::world).
    pub fn world_mut(&mut self) -> &mut World {
        self.opaque = true;
        match &mut self.inner {
            Inner::Single(w) => w,
            Inner::Sharded(_) => panic!("Sim::world_mut: sharded sims have no single World"),
        }
    }

    /// Consumes the sim and returns the underlying serial [`World`]
    /// (the bridge for code that owns a long-lived world, e.g.
    /// deployments that add nodes at runtime).
    ///
    /// # Panics
    ///
    /// Panics for sharded sims, like [`world`](Self::world).
    pub fn into_world(self) -> World {
        match self.inner {
            Inner::Single(w) => *w,
            Inner::Sharded(_) => panic!("Sim::into_world: sharded sims have no single World"),
        }
    }

    /// Captures a replayable checkpoint: the build spec plus every
    /// logged operation. [`Checkpoint::resume`] reruns them into a
    /// fresh `Sim` in the same state — cheap to store, deterministic to
    /// restore, and forkable (resume twice, diverge the copies).
    ///
    /// # Panics
    ///
    /// Panics when the run used non-replayable mutations
    /// ([`proto_mut`](Self::proto_mut), [`with_ctx`](Self::with_ctx),
    /// [`schedule_at`](Self::schedule_at), [`world_mut`](Self::world_mut),
    /// [`run_until_idle`](Self::run_until_idle)).
    pub fn checkpoint(&self) -> Checkpoint {
        assert!(
            !self.opaque,
            "Sim::checkpoint: the run used non-replayable mutations \
             (closures or direct world/protocol access)"
        );
        Checkpoint {
            spec: self.spec.clone(),
            ops: self.ops.clone(),
        }
    }
}

/// A replayable snapshot of a [`Sim`], produced by [`Sim::checkpoint`].
///
/// Holds the build spec and the operation log, not kernel state: resume
/// rebuilds the sim and replays the log, which the deterministic kernel
/// turns into the identical state. Recorders are not part of a
/// checkpoint; install one on the resumed sim if needed.
#[derive(Clone)]
pub struct Checkpoint {
    spec: SimSpec,
    ops: Vec<OpRec>,
}

impl Checkpoint {
    /// Rebuilds a [`Sim`] and replays the logged operations.
    pub fn resume(&self) -> Sim {
        let mut b = SimBuilder::new()
            .config(self.spec.config.clone())
            .sharding(self.spec.shard);
        for (topo, make) in &self.spec.groups {
            b = b.nodes_shared(topo.clone(), make.clone());
        }
        if let Some(on) = self.spec.spatial_index {
            b = b.spatial_index(on);
        }
        if let Some(loss) = self.spec.state_loss {
            b = b.state_loss(loss);
        }
        let mut sim = b.build();
        for op in &self.ops {
            match *op {
                OpRec::RunUntil(t) => sim.run_until(t),
                OpRec::Kill(n) => sim.kill(n),
                OpRec::Revive(n) => sim.revive(n),
                OpRec::KillAt(t, n) => sim.kill_at(t, n),
                OpRec::ReviveAt(t, n) => sim.revive_at(t, n),
                OpRec::BlockLink(a, b) => sim.block_link(a, b),
                OpRec::UnblockLink(a, b) => sim.unblock_link(a, b),
                OpRec::SetPartitioned(on) => sim.set_partitioned(on),
                OpRec::SetGroup(n, g) => sim.set_group(n, g),
                OpRec::SetStateLoss(loss) => sim.set_state_loss(loss),
                OpRec::SetSpatialIndex(on) => sim.set_spatial_index(on),
            }
        }
        sim
    }
}
