//! Per-node energy accounting.
//!
//! Devices at the sensing and actuation layer are "constrained in their
//! power supply" (paper §II-B); the experiments therefore track how long
//! each node's radio spends in each power state and convert that into
//! charge and energy using a configurable current profile. The default
//! profile matches a classic 802.15.4 transceiver (CC2420-class).

use crate::radio::RadioState;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Current draw (mA) of the radio in each state, plus supply voltage.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Current in deep sleep, mA.
    pub sleep_ma: f64,
    /// Current while listening / receiving, mA.
    pub listen_ma: f64,
    /// Current while transmitting, mA.
    pub tx_ma: f64,
    /// Supply voltage, V.
    pub voltage_v: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // CC2420-class: RX 18.8 mA, TX(0 dBm) 17.4 mA, sleep 21 uA.
        EnergyModel {
            sleep_ma: 0.021,
            listen_ma: 18.8,
            tx_ma: 17.4,
            voltage_v: 3.0,
        }
    }
}

impl EnergyModel {
    fn current_ma(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Off => self.sleep_ma,
            RadioState::Listening => self.listen_ma,
            RadioState::Transmitting => self.tx_ma,
        }
    }
}

/// Accumulated radio-state residency for one node.
///
/// # Examples
///
/// ```
/// use iiot_sim::energy::{EnergyMeter, EnergyModel};
/// use iiot_sim::radio::RadioState;
/// use iiot_sim::time::SimTime;
///
/// let mut m = EnergyMeter::new();
/// m.transition(SimTime::ZERO, RadioState::Listening);
/// m.transition(SimTime::from_secs(1), RadioState::Off);
/// let usage = m.finish(SimTime::from_secs(10));
/// assert_eq!(usage.listen, iiot_sim::time::SimDuration::from_secs(1));
/// assert!(usage.duty_cycle() < 0.11);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyMeter {
    state: RadioState,
    since: SimTime,
    sleep: SimDuration,
    listen: SimDuration,
    tx: SimDuration,
}

/// Final per-state residency and derived energy figures.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyUsage {
    /// Time spent with the radio off.
    pub sleep: SimDuration,
    /// Time spent listening / receiving.
    pub listen: SimDuration,
    /// Time spent transmitting.
    pub tx: SimDuration,
}

impl EnergyMeter {
    /// A meter starting in the `Off` state at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the radio entered `state` at `now`.
    pub fn transition(&mut self, now: SimTime, state: RadioState) {
        self.accumulate(now);
        self.state = state;
        self.since = now;
    }

    fn accumulate(&mut self, now: SimTime) {
        let d = now.duration_since(self.since);
        match self.state {
            RadioState::Off => self.sleep += d,
            RadioState::Listening => self.listen += d,
            RadioState::Transmitting => self.tx += d,
        }
        self.since = now;
    }

    /// Closes the books at `now` and returns the usage summary.
    pub fn finish(mut self, now: SimTime) -> EnergyUsage {
        self.accumulate(now);
        EnergyUsage {
            sleep: self.sleep,
            listen: self.listen,
            tx: self.tx,
        }
    }

    /// A snapshot of the usage as of `now`, without consuming the meter.
    pub fn snapshot(&self, now: SimTime) -> EnergyUsage {
        let mut copy = *self;
        copy.accumulate(now);
        EnergyUsage {
            sleep: copy.sleep,
            listen: copy.listen,
            tx: copy.tx,
        }
    }
}

impl EnergyUsage {
    /// Total measured time.
    pub fn total(&self) -> SimDuration {
        self.sleep + self.listen + self.tx
    }

    /// Fraction of time with the radio on (listening or transmitting).
    /// Returns 0 for an empty measurement.
    pub fn duty_cycle(&self) -> f64 {
        let total = self.total().as_micros();
        if total == 0 {
            return 0.0;
        }
        (self.listen.as_micros() + self.tx.as_micros()) as f64 / total as f64
    }

    /// Consumed charge in millicoulombs under `model`.
    pub fn charge_mc(&self, model: &EnergyModel) -> f64 {
        model.current_ma(RadioState::Off) * self.sleep.as_secs_f64()
            + model.current_ma(RadioState::Listening) * self.listen.as_secs_f64()
            + model.current_ma(RadioState::Transmitting) * self.tx.as_secs_f64()
    }

    /// Consumed energy in millijoules under `model`.
    pub fn energy_mj(&self, model: &EnergyModel) -> f64 {
        self.charge_mc(model) * model.voltage_v
    }

    /// Projected lifetime in days on a battery of `capacity_mah`
    /// milliamp-hours, assuming the measured behaviour continues.
    /// Returns `f64::INFINITY` for an empty measurement.
    pub fn lifetime_days(&self, model: &EnergyModel, capacity_mah: f64) -> f64 {
        let secs = self.total().as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        let avg_ma = self.charge_mc(model) / secs;
        if avg_ma <= 0.0 {
            return f64::INFINITY;
        }
        capacity_mah / avg_ma / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_accumulates_per_state() {
        let mut m = EnergyMeter::new();
        m.transition(SimTime::from_secs(1), RadioState::Listening);
        m.transition(SimTime::from_secs(3), RadioState::Transmitting);
        m.transition(SimTime::from_secs(4), RadioState::Off);
        let u = m.finish(SimTime::from_secs(10));
        assert_eq!(u.sleep, SimDuration::from_secs(7)); // 0-1 and 4-10
        assert_eq!(u.listen, SimDuration::from_secs(2));
        assert_eq!(u.tx, SimDuration::from_secs(1));
        assert_eq!(u.total(), SimDuration::from_secs(10));
    }

    #[test]
    fn duty_cycle_fraction() {
        let mut m = EnergyMeter::new();
        m.transition(SimTime::ZERO, RadioState::Listening);
        m.transition(SimTime::from_secs(1), RadioState::Off);
        let u = m.finish(SimTime::from_secs(100));
        assert!((u.duty_cycle() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn energy_with_default_model() {
        let model = EnergyModel::default();
        let mut m = EnergyMeter::new();
        m.transition(SimTime::ZERO, RadioState::Listening);
        let u = m.finish(SimTime::from_secs(1));
        // 18.8 mA * 1 s * 3 V = 56.4 mJ
        assert!((u.energy_mj(&model) - 56.4).abs() < 1e-9);
    }

    #[test]
    fn always_on_lifetime_much_shorter_than_duty_cycled() {
        let model = EnergyModel::default();
        let mut on = EnergyMeter::new();
        on.transition(SimTime::ZERO, RadioState::Listening);
        let on = on.finish(SimTime::from_secs(1000));

        let mut dc = EnergyMeter::new();
        dc.transition(SimTime::ZERO, RadioState::Listening);
        dc.transition(SimTime::from_secs(10), RadioState::Off);
        let dc = dc.finish(SimTime::from_secs(1000));

        let batt = 2600.0; // AA pair
        let on_days = on.lifetime_days(&model, batt);
        let dc_days = dc.lifetime_days(&model, batt);
        assert!(on_days < 10.0, "always-on lasts days: {on_days}");
        assert!(
            dc_days > 20.0 * on_days,
            "1% duty cycle extends lifetime by >20x: {dc_days} vs {on_days}"
        );
    }

    #[test]
    fn snapshot_does_not_consume() {
        let mut m = EnergyMeter::new();
        m.transition(SimTime::ZERO, RadioState::Listening);
        let s1 = m.snapshot(SimTime::from_secs(1));
        let s2 = m.snapshot(SimTime::from_secs(2));
        assert_eq!(s1.listen, SimDuration::from_secs(1));
        assert_eq!(s2.listen, SimDuration::from_secs(2));
    }

    #[test]
    fn empty_usage_edge_cases() {
        let u = EnergyUsage::default();
        assert_eq!(u.duty_cycle(), 0.0);
        assert_eq!(
            u.lifetime_days(&EnergyModel::default(), 1000.0),
            f64::INFINITY
        );
    }
}
