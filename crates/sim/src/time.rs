//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** since the start
//! of the simulation. Integer time makes the event queue totally ordered
//! and the whole simulation deterministic; microsecond resolution is fine
//! enough to model the airtime of single bytes at 250 kbit/s (32 µs) while
//! still allowing multi-day simulations within a `u64`.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

/// An instant in simulated time, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use iiot_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use iiot_sim::time::SimDuration;
///
/// assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds, as a float (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns `self * num / den`, useful for jittering timers.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn mul_frac(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "mul_frac: zero denominator");
        SimDuration(self.0 * num / den)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d.mul_frac(3, 4), SimDuration::from_secs(3));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_micros(1) < SimTime::MAX);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{:?}", SimDuration::from_micros(7)), "7us");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }
}
