//! Node placement and deployment-topology generators.
//!
//! The sensing and actuation layer is peculiar in that node placement is
//! dictated by the physical points a deployment must monitor (paper §IV-A).
//! These generators produce the canonical shapes used by the experiments:
//! lines (pipelines, conveyor belts), grids (warehouses, office floors),
//! uniform random scatters (construction sites) and clustered layouts
//! (machine groups on a factory floor).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A position on the deployment plane, in meters.
///
/// # Examples
///
/// ```
/// use iiot_sim::topology::Pos;
///
/// let a = Pos::new(0.0, 0.0);
/// let b = Pos::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Pos {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Pos {
    /// Creates a position from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Pos { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance(self, other: Pos) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A set of node positions; index `i` is the position of node `i`.
///
/// Construct via the generator methods, or collect from an iterator of
/// [`Pos`] values for fully custom layouts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Pos>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// A straight line of `n` nodes spaced `spacing` meters apart,
    /// starting at the origin. Node 0 is at the origin (typically the
    /// border router / sink).
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not finite and positive.
    pub fn line(n: usize, spacing: f64) -> Self {
        assert!(
            spacing.is_finite() && spacing > 0.0,
            "spacing must be positive"
        );
        Topology {
            positions: (0..n).map(|i| Pos::new(i as f64 * spacing, 0.0)).collect(),
        }
    }

    /// A `cols x rows` grid with `spacing` meters between neighbours.
    /// Node 0 sits at the origin corner; nodes are laid out row-major.
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not finite and positive.
    pub fn grid(cols: usize, rows: usize, spacing: f64) -> Self {
        assert!(
            spacing.is_finite() && spacing > 0.0,
            "spacing must be positive"
        );
        let mut positions = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Pos::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        Topology { positions }
    }

    /// `n` nodes placed uniformly at random in a `width x height` meter
    /// rectangle. Node 0 is pinned to the rectangle center so experiments
    /// have a well-defined sink.
    pub fn uniform<R: Rng>(n: usize, width: f64, height: f64, rng: &mut R) -> Self {
        let mut positions = Vec::with_capacity(n);
        if n > 0 {
            positions.push(Pos::new(width / 2.0, height / 2.0));
        }
        for _ in 1..n {
            positions.push(Pos::new(
                rng.gen::<f64>() * width,
                rng.gen::<f64>() * height,
            ));
        }
        Topology { positions }
    }

    /// `clusters` groups of `per_cluster` nodes each. Cluster heads are
    /// spread uniformly over the rectangle; members are scattered with a
    /// Gaussian-ish offset of scale `sigma` around their head.
    pub fn clustered<R: Rng>(
        clusters: usize,
        per_cluster: usize,
        width: f64,
        height: f64,
        sigma: f64,
        rng: &mut R,
    ) -> Self {
        let mut positions = Vec::with_capacity(clusters * per_cluster);
        for _ in 0..clusters {
            let cx = rng.gen::<f64>() * width;
            let cy = rng.gen::<f64>() * height;
            for _ in 0..per_cluster {
                // Irwin-Hall(4) approximation of a Gaussian: cheap and
                // deterministic with only the `Rng` trait available.
                let gx: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 2.0 - 1.0;
                let gy: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 2.0 - 1.0;
                positions.push(Pos::new(
                    (cx + gx * sigma).clamp(0.0, width),
                    (cy + gy * sigma).clamp(0.0, height),
                ));
            }
        }
        Topology { positions }
    }

    /// Number of nodes in the topology.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn pos(&self, i: usize) -> Pos {
        self.positions[i]
    }

    /// Adds a node position, returning its index.
    pub fn push(&mut self, p: Pos) -> usize {
        self.positions.push(p);
        self.positions.len() - 1
    }

    /// Iterates over positions in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = Pos> + '_ {
        self.positions.iter().copied()
    }

    /// The bounding box `(min, max)` of all positions, or `None` if empty.
    pub fn bounds(&self) -> Option<(Pos, Pos)> {
        let first = *self.positions.first()?;
        let mut min = first;
        let mut max = first;
        for p in &self.positions {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }

    /// The network diameter in meters (largest pairwise distance).
    /// O(n^2); intended for experiment setup, not inner loops.
    pub fn diameter(&self) -> f64 {
        let mut d: f64 = 0.0;
        for i in 0..self.positions.len() {
            for j in (i + 1)..self.positions.len() {
                d = d.max(self.positions[i].distance(self.positions[j]));
            }
        }
        d
    }
}

impl FromIterator<Pos> for Topology {
    fn from_iter<T: IntoIterator<Item = Pos>>(iter: T) -> Self {
        Topology {
            positions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Pos> for Topology {
    fn extend<T: IntoIterator<Item = Pos>>(&mut self, iter: T) {
        self.positions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn line_layout() {
        let t = Topology::line(4, 10.0);
        assert_eq!(t.len(), 4);
        assert_eq!(t.pos(0), Pos::new(0.0, 0.0));
        assert_eq!(t.pos(3), Pos::new(30.0, 0.0));
        assert_eq!(t.diameter(), 30.0);
    }

    #[test]
    fn grid_layout_row_major() {
        let t = Topology::grid(3, 2, 5.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.pos(0), Pos::new(0.0, 0.0));
        assert_eq!(t.pos(2), Pos::new(10.0, 0.0));
        assert_eq!(t.pos(3), Pos::new(0.0, 5.0));
    }

    #[test]
    fn uniform_pins_sink_to_center() {
        let mut rng = SmallRng::seed_from_u64(42);
        let t = Topology::uniform(50, 100.0, 60.0, &mut rng);
        assert_eq!(t.len(), 50);
        assert_eq!(t.pos(0), Pos::new(50.0, 30.0));
        let (min, max) = t.bounds().unwrap();
        assert!(min.x >= 0.0 && max.x <= 100.0);
        assert!(min.y >= 0.0 && max.y <= 60.0);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = Topology::uniform(20, 50.0, 50.0, &mut SmallRng::seed_from_u64(7));
        let b = Topology::uniform(20, 50.0, 50.0, &mut SmallRng::seed_from_u64(7));
        let c = Topology::uniform(20, 50.0, 50.0, &mut SmallRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = Topology::clustered(4, 10, 200.0, 100.0, 15.0, &mut rng);
        assert_eq!(t.len(), 40);
        let (min, max) = t.bounds().unwrap();
        assert!(min.x >= 0.0 && max.x <= 200.0);
        assert!(min.y >= 0.0 && max.y <= 100.0);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Topology = [Pos::new(0.0, 0.0), Pos::new(1.0, 1.0)]
            .into_iter()
            .collect();
        t.extend([Pos::new(2.0, 2.0)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn empty_topology_bounds() {
        assert!(Topology::new().bounds().is_none());
        assert_eq!(Topology::new().diameter(), 0.0);
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn line_rejects_bad_spacing() {
        let _ = Topology::line(3, 0.0);
    }
}
