//! Metric collection: counters, sample series and bounded histograms
//! for experiments.

use crate::ids::NodeId;
use crate::obs::Histogram;
use std::collections::BTreeMap;

/// Summary statistics over one sample series.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Minimum (0 if empty).
    pub min: f64,
    /// Maximum (0 if empty).
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Counters and sample series collected during a simulation.
///
/// Counters are keyed by name (and optionally node); series accumulate
/// raw samples, e.g. per-packet latencies, and can be summarized.
///
/// # Examples
///
/// ```
/// use iiot_sim::trace::Stats;
/// use iiot_sim::NodeId;
///
/// let mut s = Stats::new();
/// s.inc("tx", 1.0);
/// s.inc_node(NodeId(3), "tx", 1.0);
/// s.record("latency_s", 0.25);
/// assert_eq!(s.get("tx"), 1.0);
/// assert_eq!(s.get_node(NodeId(3), "tx"), 1.0);
/// assert_eq!(s.summary("latency_s").count, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: BTreeMap<String, f64>,
    node_counters: BTreeMap<(String, NodeId), f64>,
    series: BTreeMap<String, Vec<f64>>,
    histograms: BTreeMap<String, Histogram>,
}

impl Stats {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the global counter `name`.
    pub fn inc(&mut self, name: &str, v: f64) {
        *self.counters.entry(name.to_owned()).or_insert(0.0) += v;
    }

    /// Adds `v` to the per-node counter `name` for `node`.
    pub fn inc_node(&mut self, node: NodeId, name: &str, v: f64) {
        *self
            .node_counters
            .entry((name.to_owned(), node))
            .or_insert(0.0) += v;
    }

    /// Value of the global counter `name`, or 0 if never touched.
    pub fn get(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Value of the per-node counter, or 0 if never touched.
    pub fn get_node(&self, node: NodeId, name: &str) -> f64 {
        self.node_counters
            .get(&(name.to_owned(), node))
            .copied()
            .unwrap_or(0.0)
    }

    /// Sum of the per-node counter `name` over all nodes.
    pub fn node_total(&self, name: &str) -> f64 {
        self.node_counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Per-node values of counter `name`, in node-id order.
    pub fn node_values(&self, name: &str) -> Vec<(NodeId, f64)> {
        self.node_counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((_, id), v)| (*id, *v))
            .collect()
    }

    /// Appends a raw sample to the series `name`.
    pub fn record(&mut self, name: &str, v: f64) {
        self.series.entry(name.to_owned()).or_default().push(v);
    }

    /// The raw samples of series `name` (empty slice if absent).
    pub fn samples(&self, name: &str) -> &[f64] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summary statistics of series `name`.
    pub fn summary(&self, name: &str) -> Summary {
        summarize(self.samples(name))
    }

    /// Records `v` into the bounded log-scale histogram `name`. Unlike
    /// [`Stats::record`], memory stays constant no matter how many
    /// samples arrive — the right choice for hot-path metrics such as
    /// queue depths and per-packet latencies.
    ///
    /// # Examples
    ///
    /// ```
    /// use iiot_sim::trace::Stats;
    ///
    /// let mut s = Stats::new();
    /// for depth in [1.0, 2.0, 4.0] {
    ///     s.observe("queue_depth", depth);
    /// }
    /// let h = s.histogram("queue_depth").unwrap();
    /// assert_eq!(h.count(), 3);
    /// assert_eq!(h.max(), 4.0);
    /// ```
    pub fn observe(&mut self, name: &str, v: f64) {
        // Allocate the key only on first use; steady state is a lookup.
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            self.histograms
                .entry(name.to_owned())
                .or_default()
                .observe(v);
        }
    }

    /// The histogram `name`, if any sample was observed into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all histograms, in name order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Names of all global counters, for debugging dumps.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All global counters as `(name, value)` pairs, in name order.
    /// The stable export surface used by trial runners and JSON dumps.
    ///
    /// # Examples
    ///
    /// ```
    /// use iiot_sim::trace::Stats;
    ///
    /// let mut s = Stats::new();
    /// s.inc("rx", 2.0);
    /// s.inc("tx", 5.0);
    /// let all: Vec<_> = s.counters().collect();
    /// assert_eq!(all, vec![("rx", 2.0), ("tx", 5.0)]);
    /// ```
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Names of all sample series, in name order.
    ///
    /// # Examples
    ///
    /// ```
    /// use iiot_sim::trace::Stats;
    ///
    /// let mut s = Stats::new();
    /// s.record("latency_s", 0.2);
    /// assert_eq!(s.series_names().collect::<Vec<_>>(), vec!["latency_s"]);
    /// ```
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Merges another `Stats` into this one (counters add, series append).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.node_counters {
            *self.node_counters.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.series {
            self.series.entry(k.clone()).or_default().extend(v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }
}

/// Summarizes an arbitrary sample slice.
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary::default();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let pct = |p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).floor() as usize;
        sorted[idx]
    };
    Summary {
        count: sorted.len(),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.inc("a", 1.0);
        s.inc("a", 2.0);
        assert_eq!(s.get("a"), 3.0);
        assert_eq!(s.get("missing"), 0.0);
    }

    #[test]
    fn node_counters() {
        let mut s = Stats::new();
        s.inc_node(NodeId(0), "fwd", 2.0);
        s.inc_node(NodeId(1), "fwd", 3.0);
        s.inc_node(NodeId(1), "other", 9.0);
        assert_eq!(s.get_node(NodeId(1), "fwd"), 3.0);
        assert_eq!(s.node_total("fwd"), 5.0);
        assert_eq!(
            s.node_values("fwd"),
            vec![(NodeId(0), 2.0), (NodeId(1), 3.0)]
        );
    }

    #[test]
    fn series_summary() {
        let mut s = Stats::new();
        for i in 1..=100 {
            s.record("lat", i as f64);
        }
        let sum = s.summary("lat");
        assert_eq!(sum.count, 100);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 100.0);
        assert!((sum.mean - 50.5).abs() < 1e-9);
        assert_eq!(sum.p50, 50.0);
        assert_eq!(sum.p95, 95.0);
        assert_eq!(sum.p99, 99.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(summarize(&[]), Summary::default());
        let s = Stats::new();
        assert_eq!(s.summary("none").count, 0);
        assert!(s.samples("none").is_empty());
    }

    #[test]
    fn merge_combines() {
        let mut a = Stats::new();
        a.inc("x", 1.0);
        a.record("r", 1.0);
        let mut b = Stats::new();
        b.inc("x", 2.0);
        b.record("r", 2.0);
        b.inc_node(NodeId(0), "n", 1.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.samples("r"), &[1.0, 2.0]);
        assert_eq!(a.get_node(NodeId(0), "n"), 1.0);
    }
}
