//! Per-node oscillator model: drifting local clocks.
//!
//! Every node owns a crystal oscillator whose frequency deviates from
//! nominal by a seeded constant part-per-million offset plus a bounded
//! random walk (temperature and aging effects). Protocols read the
//! resulting *local* clock through [`crate::world::Ctx::local_time`]
//! and arm timers measured in local ticks through
//! [`crate::world::Ctx::set_timer_local`]; the world keeps running on
//! the hidden perfect clock ([`crate::world::Ctx::now`]), which real
//! motes never see.
//!
//! The model is fully deterministic: clock state advances lazily in
//! fixed whole intervals of world time, so the sequence of random-walk
//! steps — and therefore every reading — depends only on the world
//! seed and the query *time*, never on how often the clock is read.
//!
//! The default [`ClockModel`] is ideal (zero drift), in which case
//! local time *is* world time and every local-timer call degenerates
//! to its world-time equivalent, bit for bit.

use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deployment-wide oscillator fault model. Each node draws its own
/// constant frequency offset, initial phase and random-walk stream
/// from the world seed.
///
/// The default model is ideal: all fields zero, local clocks identical
/// to the world clock.
#[derive(Clone, Debug, PartialEq)]
pub struct ClockModel {
    /// Maximum magnitude of the constant frequency offset, in parts
    /// per million. Each node draws uniformly from
    /// `[-offset_ppm, +offset_ppm]`.
    pub offset_ppm: f64,
    /// Bound on the random-walk frequency component, in ppm. The walk
    /// is clamped to `[-walk_ppm, +walk_ppm]` around the constant
    /// offset.
    pub walk_ppm: f64,
    /// Maximum magnitude of one random-walk step, in ppm, applied once
    /// per [`ClockModel::walk_interval`].
    pub walk_step_ppm: f64,
    /// World-time interval between random-walk steps.
    pub walk_interval: SimDuration,
    /// Maximum initial phase offset; each node's clock starts uniformly
    /// ahead of world time by up to this much.
    pub phase: SimDuration,
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel {
            offset_ppm: 0.0,
            walk_ppm: 0.0,
            walk_step_ppm: 0.0,
            walk_interval: SimDuration::from_secs(1),
            phase: SimDuration::ZERO,
        }
    }
}

impl ClockModel {
    /// A realistic drifting-crystal model scaled by `ppm`: constant
    /// offsets up to `±ppm`, a random walk bounded at 5% of `ppm`
    /// stepping by up to 1% of `ppm` each second, and no initial phase
    /// error ("synced at deployment, then left to drift").
    /// `drifting(0.0)` is the ideal model.
    #[must_use]
    pub fn drifting(ppm: f64) -> Self {
        ClockModel {
            offset_ppm: ppm,
            walk_ppm: ppm * 0.05,
            walk_step_ppm: ppm * 0.01,
            walk_interval: SimDuration::from_secs(1),
            phase: SimDuration::ZERO,
        }
    }

    /// Sets the maximum initial phase offset.
    #[must_use]
    pub fn phase(mut self, phase: SimDuration) -> Self {
        self.phase = phase;
        self
    }

    /// Whether this model degenerates to the perfect world clock.
    pub fn is_ideal(&self) -> bool {
        self.offset_ppm == 0.0 && self.walk_ppm == 0.0 && self.phase.is_zero()
    }
}

/// One node's oscillator state. Owned by the kernel, advanced lazily.
///
/// Internally the clock accumulates local time in nanoseconds at fixed
/// world-time interval boundaries; between boundaries readings are
/// linear extrapolations at the current rate, so the clock is piecewise
/// linear and strictly monotone (rates are parts-per-million, never
/// anywhere near -100%).
#[derive(Clone, Debug)]
pub(crate) struct LocalClock {
    /// Constant frequency offset in parts per billion.
    rate_ppb: i64,
    /// Current random-walk component in ppb.
    walk_ppb: i64,
    /// Walk clamp in ppb.
    walk_max_ppb: i64,
    /// Max per-interval walk step in ppb.
    step_ppb: i64,
    /// World-time µs between walk steps.
    interval_us: u64,
    /// World time (µs) of the last interval boundary crossed.
    epoch_world_us: u64,
    /// Local clock reading at `epoch_world_us`, in nanoseconds.
    epoch_local_ns: i64,
    rng: SmallRng,
    /// Fast path: ideal model, local time == world time.
    ideal: bool,
}

impl LocalClock {
    /// Creates the clock for one node, drawing its constant offset and
    /// initial phase from `seed` (a stream derived from the world seed,
    /// disjoint from the node's protocol RNG).
    pub(crate) fn new(model: &ClockModel, seed: u64, born_at: SimTime) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        if model.is_ideal() {
            return LocalClock {
                rate_ppb: 0,
                walk_ppb: 0,
                walk_max_ppb: 0,
                step_ppb: 0,
                interval_us: model.walk_interval.as_micros().max(1),
                epoch_world_us: born_at.as_micros(),
                epoch_local_ns: (born_at.as_micros() as i64) * 1000,
                rng,
                ideal: true,
            };
        }
        let offset_ppb_max = (model.offset_ppm * 1000.0).round() as i64;
        let rate_ppb = if offset_ppb_max > 0 {
            rng.gen_range(-offset_ppb_max..=offset_ppb_max)
        } else {
            0
        };
        let phase_us = model.phase.as_micros();
        let phase_ns = if phase_us > 0 {
            rng.gen_range(0..=phase_us) as i64 * 1000
        } else {
            0
        };
        LocalClock {
            rate_ppb,
            walk_ppb: 0,
            walk_max_ppb: (model.walk_ppm * 1000.0).round() as i64,
            step_ppb: (model.walk_step_ppm * 1000.0).round() as i64,
            interval_us: model.walk_interval.as_micros().max(1),
            epoch_world_us: born_at.as_micros(),
            epoch_local_ns: (born_at.as_micros() as i64) * 1000 + phase_ns,
            rng,
            ideal: false,
        }
    }

    /// Local nanoseconds spanned by `d` world-µs at the current rate
    /// (`d` may be negative: extrapolation works both ways).
    fn ticks_ns(&self, d: i64) -> i64 {
        d * 1000 + d * (self.rate_ppb + self.walk_ppb) / 1_000_000
    }

    /// Advances the epoch over every whole interval up to `world_us`,
    /// stepping the random walk once per interval.
    fn advance(&mut self, world_us: u64) {
        while self.epoch_world_us + self.interval_us <= world_us {
            self.epoch_local_ns += self.ticks_ns(self.interval_us as i64);
            self.epoch_world_us += self.interval_us;
            if self.step_ppb > 0 {
                let step = self.rng.gen_range(-self.step_ppb..=self.step_ppb);
                self.walk_ppb = (self.walk_ppb + step).clamp(-self.walk_max_ppb, self.walk_max_ppb);
            }
        }
    }

    /// The local clock reading at world time `world` (µs resolution).
    pub(crate) fn read(&mut self, world: SimTime) -> SimTime {
        if self.ideal {
            return world;
        }
        let world_us = world.as_micros();
        self.advance(world_us);
        let ns = self.epoch_local_ns + self.ticks_ns(world_us as i64 - self.epoch_world_us as i64);
        SimTime::from_micros((ns / 1000).max(0) as u64)
    }

    /// Converts a delay measured in local clock ticks into the world
    /// duration a hardware timer counting those ticks would take, at
    /// the clock's current rate.
    pub(crate) fn world_delay(&mut self, world_now: SimTime, local: SimDuration) -> SimDuration {
        if self.ideal {
            return local;
        }
        self.advance(world_now.as_micros());
        let rate = 1_000_000_000 + self.rate_ppb + self.walk_ppb;
        debug_assert!(rate > 0);
        let l = local.as_micros() as i128;
        let r = rate as i128;
        let w = (l * 1_000_000_000 + r / 2) / r;
        SimDuration::from_micros(w as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drift_after(clock: &mut LocalClock, secs: u64) -> i64 {
        let world = SimTime::from_secs(secs);
        clock.read(world).as_micros() as i64 - world.as_micros() as i64
    }

    #[test]
    fn ideal_clock_is_world_time() {
        let mut c = LocalClock::new(&ClockModel::default(), 42, SimTime::ZERO);
        for us in [0u64, 1, 999_999, 1_000_000, 123_456_789] {
            let t = SimTime::from_micros(us);
            assert_eq!(c.read(t), t);
        }
        assert_eq!(
            c.world_delay(SimTime::from_secs(5), SimDuration::from_micros(123)),
            SimDuration::from_micros(123)
        );
    }

    #[test]
    fn drifting_zero_is_ideal() {
        assert!(ClockModel::drifting(0.0).is_ideal());
        assert!(!ClockModel::drifting(10.0).is_ideal());
    }

    #[test]
    fn constant_offset_accumulates_linearly() {
        // Pure constant offset (no walk): after T seconds the error is
        // rate * T within quantization.
        let model = ClockModel {
            offset_ppm: 50.0,
            ..ClockModel::default()
        };
        let mut c = LocalClock::new(&model, 7, SimTime::ZERO);
        let d10 = drift_after(&mut c, 10);
        let d100 = drift_after(&mut c, 100);
        assert!(d10.abs() <= 500, "|{d10}| <= 50ppm * 10s");
        assert!(d10 != 0, "a 50ppm draw is almost surely nonzero");
        // Linearity: error at 100 s is 10x the error at 10 s.
        assert!((d100 - 10 * d10).abs() <= 10, "d100={d100} d10={d10}");
    }

    #[test]
    fn drift_stays_within_model_bounds() {
        let model = ClockModel::drifting(100.0);
        for seed in 0..20 {
            let mut c = LocalClock::new(&model, seed, SimTime::ZERO);
            // Max rate magnitude: offset + walk bound = 105 ppm.
            let d = drift_after(&mut c, 300);
            assert!(d.abs() <= 105 * 300 + 1, "seed {seed}: drift {d} us");
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let model = ClockModel::drifting(50.0);
        let sample = |seed: u64| {
            let mut c = LocalClock::new(&model, seed, SimTime::ZERO);
            (1..=30)
                .map(|s| c.read(SimTime::from_secs(10 * s)).as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(5), sample(5), "same seed, same trajectory");
        assert_ne!(sample(5), sample(6), "different seed, different draw");
    }

    #[test]
    fn reading_pattern_does_not_change_the_trajectory() {
        // Query the clock at every second vs only at the end: the final
        // reading must be identical (lazy interval advancement).
        let model = ClockModel::drifting(80.0);
        let mut dense = LocalClock::new(&model, 11, SimTime::ZERO);
        let mut sparse = dense.clone();
        for s in 1..=60 {
            dense.read(SimTime::from_secs(s));
        }
        let end = SimTime::from_secs(60);
        assert_eq!(dense.read(end), sparse.read(end));
    }

    #[test]
    fn clock_is_monotone() {
        let model = ClockModel::drifting(200.0);
        let mut c = LocalClock::new(&model, 3, SimTime::ZERO);
        let mut prev = c.read(SimTime::ZERO);
        for us in (0..30_000_000u64).step_by(333_333) {
            let t = c.read(SimTime::from_micros(us));
            assert!(t >= prev, "clock went backwards at {us} us");
            prev = t;
        }
    }

    #[test]
    fn world_delay_inverts_the_rate() {
        // A fast clock (positive ppm) reaches N local ticks in slightly
        // less world time; the round trip world->local over that window
        // recovers the requested local delay.
        let model = ClockModel {
            offset_ppm: 100.0,
            ..ClockModel::default()
        };
        let mut c = LocalClock::new(&model, 9, SimTime::ZERO);
        let now = SimTime::from_secs(100);
        let local = SimDuration::from_secs(10);
        let w = c.world_delay(now, local);
        let got = c.read(now + w).as_micros() as i64 - c.read(now).as_micros() as i64;
        let want = local.as_micros() as i64;
        assert!((got - want).abs() <= 2, "got {got} want {want}");
    }
}
