//! Splittable seed derivation for multi-trial experiments.
//!
//! Experiment harnesses replicate one configuration across many trials
//! and fan trials out over worker threads. For the results to be
//! independent of scheduling, every trial's seed must be a pure
//! function of the experiment's master seed and the trial's position —
//! never of execution order. This module provides that derivation: a
//! SplitMix64-style finalizer over `(master, stream)` pairs, giving
//! well-mixed, stable, distinct seeds for distinct streams.
//!
//! The same construction (golden-ratio increment + avalanching
//! finalizer) is what seeds the per-node RNGs inside
//! [`World`](crate::world::World); this module exposes it for the layer
//! above, where one experiment seed has to split into per-trial seeds.

/// SplitMix64's avalanching finalizer: a bijective mix of 64 bits.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `stream` from `master`.
///
/// For a fixed `master` the map `stream -> derive(master, stream)` is
/// injective (it composes bijections), so distinct trials can never
/// alias. The result is stable across runs, platforms and worker
/// counts.
///
/// # Examples
///
/// ```
/// use iiot_sim::seed::derive;
///
/// let a = derive(0xE5, 0);
/// let b = derive(0xE5, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive(0xE5, 0)); // stable
/// ```
pub fn derive(master: u64, stream: u64) -> u64 {
    // Golden-ratio spacing keeps nearby streams far apart before the
    // finalizer avalanches them.
    mix(master
        ^ mix(stream
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// Derives a seed from `master` and a textual label (FNV-1a over the
/// label selects the stream). Useful when trials are naturally named
/// rather than numbered.
///
/// # Examples
///
/// ```
/// use iiot_sim::seed::derive_labeled;
///
/// assert_ne!(derive_labeled(1, "csma"), derive_labeled(1, "lpl"));
/// assert_eq!(derive_labeled(1, "csma"), derive_labeled(1, "csma"));
/// ```
pub fn derive_labeled(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    derive(master, h)
}

/// The seeds of `replicas` replicated trials of a config point whose
/// canonical single-trial seed is `base`.
///
/// Replica 0 keeps `base` itself so a single-replica run is seed-for-
/// seed identical to the harness's plain sequential path; replicas
/// `1..` get derived streams.
///
/// # Examples
///
/// ```
/// use iiot_sim::seed::replica_seeds;
///
/// let seeds = replica_seeds(0xE2, 3);
/// assert_eq!(seeds.len(), 3);
/// assert_eq!(seeds[0], 0xE2);
/// assert_ne!(seeds[1], seeds[2]);
/// ```
pub fn replica_seeds(base: u64, replicas: u32) -> Vec<u64> {
    (0..replicas as u64)
        .map(|r| if r == 0 { base } else { derive(base, r) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_do_not_collide() {
        let mut seen = HashSet::new();
        for master in [0u64, 1, 0xE5, u64::MAX] {
            for stream in 0..1000 {
                assert!(seen.insert(derive(master, stream)), "collision");
            }
            seen.clear();
        }
    }

    #[test]
    fn derivation_is_stable() {
        // Pinned values: changing the scheme silently would invalidate
        // recorded experiment tables.
        assert_eq!(derive(0, 0), derive(0, 0));
        assert_ne!(derive(0, 0), derive(1, 0));
        assert_ne!(derive(0, 0), derive(0, 1));
    }

    #[test]
    fn labels_select_streams() {
        assert_ne!(derive_labeled(9, "a"), derive_labeled(9, "b"));
        assert_ne!(derive_labeled(9, "a"), derive_labeled(10, "a"));
    }

    #[test]
    fn replica_zero_keeps_base() {
        let s = replica_seeds(42, 4);
        assert_eq!(s[0], 42);
        let uniq: HashSet<u64> = s.iter().copied().collect();
        assert_eq!(uniq.len(), 4);
    }
}
