//! A standalone FTSP node: the engine paced by its own jittered beacon
//! timer over an always-on radio. This is synchronization *alone* —
//! use it to measure sync quality (e.g. error vs hop distance) without
//! a MAC or routing stack in the way; duty-cycled stacks embed the
//! [`FtspEngine`] into their own schedules instead.

use crate::ftsp::{FtspConfig, FtspEngine};
use crate::SyncedClock;
use iiot_sim::{Ctx, Dst, Frame, Proto, RxInfo, SimDuration, Timer};
use rand::Rng;

/// Default radio demux port for standalone sync beacons.
pub const FTSP_PORT: u8 = 9;

/// Beat timer tag (below the MAC-reserved tag space).
const TAG_BEAT: u64 = 0x157;

/// A [`Proto`] running only FTSP synchronization.
///
/// Every node keeps its radio listening and broadcasts one sync beacon
/// per (jittered) beacon period once it has something to say: the
/// elected reference floods its own clock, synced nodes re-flood their
/// estimate one hop further out.
#[derive(Debug)]
pub struct FtspNode {
    engine: FtspEngine,
    port: u8,
}

impl FtspNode {
    /// Creates a node with the given engine configuration.
    pub fn new(cfg: FtspConfig) -> Self {
        FtspNode {
            engine: FtspEngine::new(cfg),
            port: FTSP_PORT,
        }
    }

    /// Overrides the radio demux port.
    #[must_use]
    pub fn with_port(mut self, port: u8) -> Self {
        self.port = port;
        self
    }

    /// The underlying engine (e.g. to inspect depth or sync state).
    pub fn engine(&self) -> &FtspEngine {
        &self.engine
    }

    /// A handle to this node's synchronized clock.
    pub fn clock(&self) -> SyncedClock {
        self.engine.clock()
    }

    fn arm_beat(&mut self, ctx: &mut Ctx<'_>, first: bool) {
        let p = self.engine.config().beacon_period;
        let delay = if first {
            // Desynchronize boot: a uniform phase over one period.
            SimDuration::from_micros(ctx.rng().gen_range(0..p.as_micros().max(1)))
        } else {
            // 0.9p..1.1p jitter keeps neighbours from beaconing in
            // lockstep (persistent collisions).
            p.mul_frac(9, 10) + SimDuration::from_micros(ctx.rng().gen_range(0..=p.as_micros() / 5))
        };
        ctx.set_timer_local(delay, TAG_BEAT);
    }
}

impl Proto for FtspNode {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.radio_on().expect("ftsp: radio on");
        self.engine.start(ctx.id());
        self.arm_beat(ctx, true);
    }

    fn timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer) {
        if timer.tag == TAG_BEAT {
            if let Some(payload) = self.engine.beat(ctx) {
                // A busy radio (our previous tx still on air) only
                // happens with absurdly short periods; drop the round.
                let _ = ctx.transmit(Dst::Broadcast, self.port, payload);
            }
            self.arm_beat(ctx, false);
        }
    }

    fn frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, _info: RxInfo) {
        if frame.port == self.port {
            self.engine
                .on_beacon(ctx, &frame.payload, frame.payload.len());
        }
    }

    fn crashed(&mut self) {
        self.engine.crashed();
    }
}
