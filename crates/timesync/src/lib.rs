//! # iiot-timesync — FTSP-style flooding time synchronization
//!
//! Time-slotted MACs (TDMA, §IV-B of the paper) stand on the quality of
//! network-wide time synchronization: every determinism and latency
//! claim assumes nodes agree on when a slot starts. Real motes drift
//! tens of ppm apart; this crate earns the assumption back in the style
//! of the classic Flooding Time Synchronization Protocol:
//!
//! * **reference election** — the lowest node id left talking becomes
//!   the reference (or pin one with
//!   [`FtspConfig::with_reference`]);
//! * **MAC-timestamped beacons** — the reference floods its clock; each
//!   beacon embeds the sender's global-time estimate at transmission
//!   start, and receivers correct for the frame airtime;
//! * **regression estimation** — every node fits offset *and* skew over
//!   a sliding window of `(local, global)` samples
//!   ([`DriftEstimator`]), so estimates stay accurate between beacons;
//! * **re-flooding** — synced nodes rebroadcast one hop further out,
//!   so sync error grows with hop distance (FTSP's classic multi-hop
//!   result — measured in experiment E13);
//! * a [`SyncedClock`] facade other protocols consult to convert
//!   between local and global time.
//!
//! The [`FtspEngine`] is transport-agnostic; [`FtspNode`] hosts it
//! standalone on an always-on radio, and `iiot-mac`'s TDMA embeds it
//! into dedicated sync slots.
//!
//! # Examples
//!
//! A 4-node line with drifting clocks elects node 0 and synchronizes
//! every hop to well under a slot guard time:
//!
//! ```
//! use iiot_sim::prelude::*;
//! use iiot_timesync::{FtspConfig, FtspNode};
//!
//! let cfg = SimConfig::default()
//!     .seed(7)
//!     .clock(ClockModel::drifting(50.0)); // ±50 ppm crystals
//! let mut world = World::new(cfg);
//! let cfg = FtspConfig::default().with_period(SimDuration::from_millis(500));
//! let ids = world.add_nodes(&Topology::line(4, 25.0), |_| {
//!     Box::new(FtspNode::new(cfg.clone())) as Box<dyn Proto>
//! });
//! world.run_for(SimDuration::from_secs(20));
//!
//! // Node 0 won the election; everyone is synced to it.
//! let root_now = world.local_time_of(ids[0]);
//! for (hops, &id) in ids.iter().enumerate().skip(1) {
//!     let node = world.proto::<FtspNode>(id);
//!     assert!(node.engine().is_synced());
//!     assert_eq!(node.engine().root(), ids[0]);
//!     assert_eq!(node.engine().depth() as usize, hops);
//!     let err = node.clock().global(world.local_time_of(id)).as_micros() as i64
//!         - root_now.as_micros() as i64;
//!     assert!(err.abs() < 500, "{hops} hops out by {err} us");
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod estimator;
pub mod ftsp;
pub mod node;

pub use clock::{ClockEstimate, SyncedClock};
pub use estimator::DriftEstimator;
pub use ftsp::{decode_beacon, encode_beacon, Beacon, FtspConfig, FtspEngine, BEACON_LEN};
pub use node::{FtspNode, FTSP_PORT};
