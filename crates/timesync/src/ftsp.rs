//! The FTSP-style synchronization engine: reference election, flooded
//! MAC-timestamped beacons, and per-node regression over the sample
//! window.
//!
//! The engine is transport-agnostic: a host (the standalone
//! [`crate::node::FtspNode`], or a MAC weaving sync beacons into its
//! schedule) calls [`FtspEngine::beat`] whenever this node gets a
//! chance to speak and [`FtspEngine::on_beacon`] for every received
//! beacon. The engine maintains the believed reference, the hop depth,
//! the flood sequence number, and the [`SyncedClock`] estimate.

use crate::clock::SyncedClock;
use crate::estimator::DriftEstimator;
use iiot_sim::obs::EventKind;
use iiot_sim::{Ctx, NodeId, SimDuration, SimTime};

/// Size of an encoded sync beacon: root (4) + seq (4) + depth (1) +
/// global time in µs (8).
pub const BEACON_LEN: usize = 17;

/// A decoded sync beacon.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Beacon {
    /// The reference node whose timebase the beacon carries.
    pub root: NodeId,
    /// Flood sequence number (one per reference beacon round).
    pub seq: u32,
    /// Hop distance of the *sender* from the reference.
    pub depth: u8,
    /// The sender's estimate of global time at transmission start, µs.
    pub global_us: u64,
}

/// Encodes a beacon into its [`BEACON_LEN`]-byte wire form.
pub fn encode_beacon(b: &Beacon) -> Vec<u8> {
    let mut out = Vec::with_capacity(BEACON_LEN);
    out.extend_from_slice(&b.root.0.to_le_bytes());
    out.extend_from_slice(&b.seq.to_le_bytes());
    out.push(b.depth);
    out.extend_from_slice(&b.global_us.to_le_bytes());
    out
}

/// Decodes a beacon; `None` for truncated or oversized payloads.
pub fn decode_beacon(bytes: &[u8]) -> Option<Beacon> {
    if bytes.len() != BEACON_LEN {
        return None;
    }
    Some(Beacon {
        root: NodeId(u32::from_le_bytes(bytes[0..4].try_into().ok()?)),
        seq: u32::from_le_bytes(bytes[4..8].try_into().ok()?),
        depth: bytes[8],
        global_us: u64::from_le_bytes(bytes[9..17].try_into().ok()?),
    })
}

/// Configuration of the [`FtspEngine`].
#[derive(Clone, Debug)]
pub struct FtspConfig {
    /// Regression window: sync samples kept per node. A window of 1
    /// degrades to offset-only synchronization (no skew compensation).
    pub window: usize,
    /// Nominal beacon period (used by hosts that let the engine pace
    /// itself, e.g. [`crate::node::FtspNode`]).
    pub beacon_period: SimDuration,
    /// Pinned reference node, or `None` for dynamic election (lowest
    /// node id wins after [`FtspConfig::root_timeout`] silent rounds).
    pub reference: Option<NodeId>,
    /// Beacon rounds without hearing the reference before a node
    /// declares itself reference (ignored with a pinned reference).
    pub root_timeout: u32,
}

impl Default for FtspConfig {
    fn default() -> Self {
        FtspConfig {
            window: 8,
            beacon_period: SimDuration::from_secs(10),
            reference: None,
            root_timeout: 3,
        }
    }
}

impl FtspConfig {
    /// Pins the reference to `node`, disabling election.
    #[must_use]
    pub fn with_reference(mut self, node: NodeId) -> Self {
        self.reference = Some(node);
        self
    }

    /// Sets the regression window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the nominal beacon period.
    #[must_use]
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.beacon_period = period;
        self
    }
}

/// Per-node FTSP state machine. See the module docs for the protocol.
#[derive(Debug)]
pub struct FtspEngine {
    cfg: FtspConfig,
    me: NodeId,
    /// Currently believed reference; equal to `me` while a candidate
    /// (election mode) or while actually reference.
    root: NodeId,
    /// Hop distance from the reference (0 at the reference itself).
    depth: u8,
    /// Highest flood sequence number accepted for the current root.
    highest_seq: u32,
    /// Our own flood counter while reference.
    my_seq: u32,
    /// Beacon rounds since the reference was last heard.
    silent: u32,
    est: DriftEstimator,
    clock: SyncedClock,
}

impl FtspEngine {
    /// Creates an engine; call [`FtspEngine::start`] from the host's
    /// `start` callback before using it.
    pub fn new(cfg: FtspConfig) -> Self {
        let window = cfg.window;
        FtspEngine {
            cfg,
            me: NodeId(u32::MAX),
            root: NodeId(u32::MAX),
            depth: 0,
            highest_seq: 0,
            my_seq: 0,
            silent: 0,
            est: DriftEstimator::new(window),
            clock: SyncedClock::new(),
        }
    }

    /// Binds the engine to this node's identity (idempotent; safe to
    /// call again after a crash-restart).
    pub fn start(&mut self, me: NodeId) {
        self.me = me;
        self.root = self.cfg.reference.unwrap_or(me);
        self.depth = 0;
        self.highest_seq = 0;
        self.silent = 0;
        self.est.clear();
        self.clock.clear();
    }

    /// A clone of the [`SyncedClock`] this engine maintains; hand it to
    /// whatever protocol needs the global timebase.
    pub fn clock(&self) -> SyncedClock {
        self.clock.clone()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &FtspConfig {
        &self.cfg
    }

    /// Whether this node currently believes it is the reference.
    pub fn is_reference(&self) -> bool {
        self.root == self.me
    }

    /// Whether this node can place itself on the global timebase (it is
    /// the reference, or it holds an estimate).
    pub fn is_synced(&self) -> bool {
        self.is_reference() || self.clock.is_synced()
    }

    /// The currently believed reference node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Hop distance from the reference (0 at the reference).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// This node's estimate of the current global time.
    pub fn global_now(&self, ctx: &mut Ctx<'_>) -> SimTime {
        let local = ctx.local_time();
        if self.is_reference() {
            local
        } else {
            self.clock.global(local)
        }
    }

    /// One beacon round: returns the beacon payload this node should
    /// broadcast right now, or `None` if it must stay silent (not yet
    /// elected, or not yet synced). The caller transmits the payload
    /// immediately — the embedded timestamp is taken in this call.
    pub fn beat(&mut self, ctx: &mut Ctx<'_>) -> Option<Vec<u8>> {
        let b = if self.is_reference() {
            if self.cfg.reference != Some(self.me) {
                // Election: stay silent until the floor has been quiet
                // for root_timeout rounds, then claim the reference
                // role (lowest id wins on collision, see on_beacon).
                self.silent += 1;
                if self.silent <= self.cfg.root_timeout {
                    return None;
                }
            }
            self.my_seq += 1;
            Beacon {
                root: self.me,
                seq: self.my_seq,
                depth: 0,
                global_us: ctx.local_time().as_micros(),
            }
        } else {
            self.silent += 1;
            if self.cfg.reference.is_none() && self.silent > self.cfg.root_timeout {
                // Reference lost: fall back to candidacy and re-elect.
                let me = self.me;
                self.start(me);
                return None;
            }
            let est = self.clock.estimate()?;
            Beacon {
                root: self.root,
                seq: self.highest_seq,
                depth: self.depth,
                global_us: est.global(ctx.local_time()).as_micros(),
            }
        };
        ctx.emit(EventKind::SyncBeacon {
            root: b.root,
            seq: b.seq,
            hops: b.depth,
        });
        ctx.count("ftsp_tx", 1.0);
        Some(encode_beacon(&b))
    }

    /// Processes a received beacon whose on-air radio payload was
    /// `radio_len` bytes (for MAC-layer timestamp correction: the
    /// sender stamped transmission *start*, the receiver sees the frame
    /// at transmission *end*, one airtime later). Returns `true` if the
    /// beacon was accepted as a new sync sample.
    pub fn on_beacon(&mut self, ctx: &mut Ctx<'_>, payload: &[u8], radio_len: usize) -> bool {
        let Some(b) = decode_beacon(payload) else {
            return false;
        };
        if b.root.0 > self.root.0 {
            // Worse (higher-id) reference: ignore; our flood will
            // eventually reach and demote it.
            return false;
        }
        if b.root == self.me {
            // Our own flood echoed back.
            return false;
        }
        if b.root.0 < self.root.0 {
            // Better reference: adopt it and restart estimation.
            self.root = b.root;
            self.highest_seq = 0;
            self.est.clear();
            self.clock.clear();
        } else if b.seq <= self.highest_seq {
            // Already sampled this flood round (or stale).
            return false;
        }
        self.silent = 0;
        self.highest_seq = b.seq;
        self.depth = b.depth.saturating_add(1);
        // MAC-layer timestamp: local time at the sender's tx start.
        let airtime = ctx.radio().airtime(radio_len);
        let rx_local = ctx.local_time();
        let tx_local =
            SimTime::from_micros(rx_local.as_micros().saturating_sub(airtime.as_micros()));
        self.est
            .add_sample(tx_local, SimTime::from_micros(b.global_us));
        if let Some(e) = self.est.estimate() {
            self.clock.set(e);
            ctx.emit(EventKind::OffsetEstimate {
                offset_us: e.offset_us(tx_local),
                skew_ppm: e.skew_ppm(),
            });
            ctx.count("ftsp_samples", 1.0);
        }
        true
    }

    /// Crash handler: volatile sync state is lost; the oscillator (in
    /// the simulator's kernel) keeps drifting through the reboot.
    pub fn crashed(&mut self) {
        let me = self.me;
        self.my_seq = 0;
        self.start(me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_codec_round_trips() {
        let b = Beacon {
            root: NodeId(7),
            seq: 0xDEAD_BEEF,
            depth: 13,
            global_us: u64::MAX - 42,
        };
        let enc = encode_beacon(&b);
        assert_eq!(enc.len(), BEACON_LEN);
        assert_eq!(decode_beacon(&enc), Some(b));
        assert_eq!(decode_beacon(&enc[..16]), None);
        let mut long = enc.clone();
        long.push(0);
        assert_eq!(decode_beacon(&long), None);
    }
}
