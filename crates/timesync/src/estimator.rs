//! Sliding-window linear-regression drift estimation, FTSP-style.
//!
//! Each accepted sync beacon yields one `(local, global)` timestamp
//! pair. The estimator keeps the most recent `window` pairs and fits
//! `global - local` against `local` by ordinary least squares, which
//! recovers both the clock *offset* and the clock *skew* (relative
//! rate). Regressing the offset instead of raw global time keeps the
//! fit numerically benign: offsets are microseconds to milliseconds
//! while absolute timestamps are ~1e9 µs.

use crate::clock::ClockEstimate;
use iiot_sim::SimTime;
use std::collections::VecDeque;

/// Sliding-window offset/skew estimator.
///
/// # Examples
///
/// ```
/// use iiot_sim::SimTime;
/// use iiot_timesync::DriftEstimator;
///
/// // A local clock running 100 ppm fast, sampled every 10 s.
/// let mut est = DriftEstimator::new(8);
/// for k in 0..6u64 {
///     let global = SimTime::from_secs(10 * k);
///     let local = SimTime::from_micros(global.as_micros() * 1_000_100 / 1_000_000);
///     est.add_sample(local, global);
/// }
/// let e = est.estimate().expect("enough samples");
/// // Rate of global per local tick ~ 1/(1 + 100e-6): about -100 ppm.
/// assert!((e.skew_ppm() + 100.0).abs() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct DriftEstimator {
    window: usize,
    /// `(local_us, global_us)` pairs, oldest first.
    samples: VecDeque<(i64, i64)>,
}

impl DriftEstimator {
    /// Creates an estimator keeping the latest `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "estimator window must be positive");
        DriftEstimator {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are held.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Forgets all samples (crash recovery, reference change).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Records one `(local, global)` timestamp pair, evicting the
    /// oldest sample once the window is full.
    pub fn add_sample(&mut self, local: SimTime, global: SimTime) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples
            .push_back((local.as_micros() as i64, global.as_micros() as i64));
    }

    /// The current linear fit, or `None` without samples. One sample
    /// gives an offset-only estimate (rate 1.0); two or more also
    /// estimate skew.
    pub fn estimate(&self) -> Option<ClockEstimate> {
        let (l0, _) = *self.samples.front()?;
        let n = self.samples.len() as f64;
        // x: local time relative to the first sample; y: global-local
        // offset. Both stay small, so f64 sums keep full precision.
        let mut sx = 0.0;
        let mut sy = 0.0;
        for &(l, g) in &self.samples {
            sx += (l - l0) as f64;
            sy += (g - l) as f64;
        }
        let (mx, my) = (sx / n, sy / n);
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(l, g) in &self.samples {
            let dx = (l - l0) as f64 - mx;
            let dy = (g - l) as f64 - my;
            sxx += dx * dx;
            sxy += dx * dy;
        }
        // Offset-only fallback: a single sample, or duplicate x values.
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let base_local = l0 + mx.round() as i64;
        let base_global = base_local + my.round() as i64;
        Some(ClockEstimate {
            base_local: SimTime::from_micros(base_local.max(0) as u64),
            base_global: SimTime::from_micros(base_global.max(0) as u64),
            rate: 1.0 + slope,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds samples from a synthetic clock `local = global * (1+ppm) +
    /// phase` and returns the estimate.
    fn fit(ppm: f64, phase_us: i64, n: usize, spacing_s: u64) -> ClockEstimate {
        let mut est = DriftEstimator::new(8);
        for k in 0..n as u64 {
            let g = (spacing_s * 1_000_000 * k) as i64;
            let l = (g as f64 * (1.0 + ppm * 1e-6)).round() as i64 + phase_us;
            est.add_sample(
                SimTime::from_micros(l as u64),
                SimTime::from_micros(g.max(0) as u64),
            );
        }
        est.estimate().expect("samples")
    }

    #[test]
    fn recovers_synthetic_skew_within_tolerance() {
        for ppm in [-200.0, -50.0, -1.0, 1.0, 40.0, 150.0] {
            let e = fit(ppm, 12_345, 8, 10);
            // global per local tick = 1/(1+ppm) => skew ~ -ppm.
            assert!(
                (e.skew_ppm() + ppm).abs() < 0.5,
                "ppm {ppm}: estimated {}",
                e.skew_ppm()
            );
        }
    }

    #[test]
    fn recovers_offset_and_predicts_forward() {
        let ppm = 80.0;
        let e = fit(ppm, 5_000, 8, 10);
        // Predict global time from a local reading 30 s past the last
        // sample; compare against the synthetic ground truth.
        let g_true = 100_000_000i64; // 100 s
        let l = (g_true as f64 * (1.0 + ppm * 1e-6)).round() as i64 + 5_000;
        let g_est = e.global(SimTime::from_micros(l as u64)).as_micros() as i64;
        assert!(
            (g_est - g_true).abs() <= 2,
            "extrapolation error {} us",
            g_est - g_true
        );
    }

    #[test]
    fn single_sample_is_offset_only() {
        let mut est = DriftEstimator::new(4);
        assert!(est.estimate().is_none());
        est.add_sample(SimTime::from_micros(1_000), SimTime::from_micros(3_500));
        let e = est.estimate().expect("one sample");
        assert_eq!(e.rate, 1.0);
        assert_eq!(e.offset_us(SimTime::from_micros(1_000)), 2_500);
    }

    #[test]
    fn window_slides() {
        let mut est = DriftEstimator::new(3);
        for k in 0..10u64 {
            est.add_sample(SimTime::from_secs(k), SimTime::from_secs(k));
            assert!(est.len() <= 3);
        }
        assert_eq!(est.len(), 3);
        est.clear();
        assert!(est.is_empty());
    }

    #[test]
    fn duplicate_sample_times_fall_back_to_offset() {
        let mut est = DriftEstimator::new(4);
        est.add_sample(SimTime::from_secs(1), SimTime::from_secs(2));
        est.add_sample(SimTime::from_secs(1), SimTime::from_secs(2));
        let e = est.estimate().expect("estimate");
        assert_eq!(e.rate, 1.0);
        assert_eq!(e.global(SimTime::from_secs(1)), SimTime::from_secs(2));
    }
}
