//! The estimate a node holds of the global timebase, and the shared
//! [`SyncedClock`] facade other protocols consult.

use iiot_sim::SimTime;
use std::sync::{Arc, Mutex};

/// A linear map between this node's local clock and the global (i.e.
/// the reference node's) timebase: `global ≈ base_global +
/// rate * (local - base_local)`.
///
/// Produced by [`crate::estimator::DriftEstimator`]; consumed through
/// [`SyncedClock`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockEstimate {
    /// Local-clock anchor of the linear map.
    pub base_local: SimTime,
    /// Global-time value at `base_local`.
    pub base_global: SimTime,
    /// Estimated rate of global time per local tick (1.0 = no skew).
    pub rate: f64,
}

impl ClockEstimate {
    /// The identity map: local time *is* global time.
    pub fn identity() -> Self {
        ClockEstimate {
            base_local: SimTime::ZERO,
            base_global: SimTime::ZERO,
            rate: 1.0,
        }
    }

    /// Converts a local clock reading to estimated global time.
    pub fn global(&self, local: SimTime) -> SimTime {
        let d = local.as_micros() as i64 - self.base_local.as_micros() as i64;
        let g = self.base_global.as_micros() as i64 + (d as f64 * self.rate).round() as i64;
        SimTime::from_micros(g.max(0) as u64)
    }

    /// Converts an estimated global time back to the local clock
    /// reading at which it occurs.
    pub fn local(&self, global: SimTime) -> SimTime {
        let d = global.as_micros() as i64 - self.base_global.as_micros() as i64;
        let l = self.base_local.as_micros() as i64 + (d as f64 / self.rate).round() as i64;
        SimTime::from_micros(l.max(0) as u64)
    }

    /// Estimated skew of the local clock against the global timebase,
    /// in parts per million (positive = local runs slow).
    pub fn skew_ppm(&self) -> f64 {
        (self.rate - 1.0) * 1e6
    }

    /// Estimated `global - local` offset at local time `local`, in µs.
    pub fn offset_us(&self, local: SimTime) -> i64 {
        self.global(local).as_micros() as i64 - local.as_micros() as i64
    }
}

/// A cheaply clonable handle to a node's current synchronization
/// estimate: the sync engine writes it, and any protocol on the same
/// node (e.g. a TDMA MAC computing slot boundaries) reads it through
/// its own clone.
///
/// Unsynced clocks apply the identity map, so consumers can use
/// [`SyncedClock::global`]/[`SyncedClock::local`] unconditionally.
///
/// # Examples
///
/// ```
/// use iiot_sim::SimTime;
/// use iiot_timesync::{ClockEstimate, SyncedClock};
///
/// let clock = SyncedClock::new();
/// assert!(!clock.is_synced());
/// assert_eq!(clock.global(SimTime::from_secs(5)), SimTime::from_secs(5));
///
/// let reader = clock.clone(); // e.g. handed to the MAC
/// clock.set(ClockEstimate {
///     base_local: SimTime::ZERO,
///     base_global: SimTime::from_millis(2),
///     rate: 1.0,
/// });
/// assert!(reader.is_synced());
/// assert_eq!(reader.global(SimTime::ZERO), SimTime::from_millis(2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SyncedClock {
    // An Arc<Mutex> rather than Rc<Cell> only so protocols holding a
    // handle stay `Send` (the sharded kernel moves nodes to worker
    // threads); both handles still live on one node, so the lock is
    // never contended.
    inner: Arc<Mutex<Option<ClockEstimate>>>,
}

impl SyncedClock {
    /// A fresh, unsynced clock handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether an estimate has been installed.
    pub fn is_synced(&self) -> bool {
        self.estimate().is_some()
    }

    /// The current estimate, if synced.
    pub fn estimate(&self) -> Option<ClockEstimate> {
        *self.inner.lock().expect("clock estimate")
    }

    /// Installs a new estimate (normally only the sync engine does
    /// this).
    pub fn set(&self, est: ClockEstimate) {
        *self.inner.lock().expect("clock estimate") = Some(est);
    }

    /// Drops the estimate, reverting to the identity map (e.g. after a
    /// crash or a reference change).
    pub fn clear(&self) {
        *self.inner.lock().expect("clock estimate") = None;
    }

    /// Local-to-global conversion; identity while unsynced.
    pub fn global(&self, local: SimTime) -> SimTime {
        match self.estimate() {
            Some(e) => e.global(local),
            None => local,
        }
    }

    /// Global-to-local conversion; identity while unsynced.
    pub fn local(&self, global: SimTime) -> SimTime {
        match self.estimate() {
            Some(e) => e.local(global),
            None => global,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips() {
        let e = ClockEstimate::identity();
        let t = SimTime::from_micros(123_456_789);
        assert_eq!(e.global(t), t);
        assert_eq!(e.local(t), t);
        assert_eq!(e.skew_ppm(), 0.0);
        assert_eq!(e.offset_us(t), 0);
    }

    #[test]
    fn skewed_estimate_inverts() {
        let e = ClockEstimate {
            base_local: SimTime::from_secs(10),
            base_global: SimTime::from_secs(11),
            rate: 1.0 + 80e-6,
        };
        let l = SimTime::from_secs(200);
        let g = e.global(l);
        // Round trip within quantization.
        let back = e.local(g).as_micros() as i64;
        assert!((back - l.as_micros() as i64).abs() <= 1);
        assert!((e.skew_ppm() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn handles_share_state() {
        let a = SyncedClock::new();
        let b = a.clone();
        assert!(!b.is_synced());
        a.set(ClockEstimate {
            base_local: SimTime::ZERO,
            base_global: SimTime::from_micros(500),
            rate: 1.0,
        });
        assert!(b.is_synced());
        assert_eq!(b.global(SimTime::ZERO), SimTime::from_micros(500));
        b.clear();
        assert!(!a.is_synced());
        assert_eq!(a.global(SimTime::from_secs(1)), SimTime::from_secs(1));
    }
}
