//! CRDT-backed digital twins: convergent cloud-side device state.
//!
//! The [`DeviceRegistry`](crate::registry::DeviceRegistry) answers *who
//! may speak* — credentials per `(tenant, device)` pair. This module is
//! its state-plane sibling over the same namespace: a [`DeviceTwin`]
//! per device holding the last **reported** configuration (written by
//! gateway replicas as uplinks arrive) and the **desired**
//! configuration (written by the cloud control plane), plus operator
//! tags and a vector-clock provenance trail.
//!
//! Every field is a state-based CRDT from `iiot-crdt`, so twin state
//! merged from many gateway replicas — across partitions, delayed
//! uplinks and retries — converges regardless of merge order:
//!
//! * `reported` / `desired` are [`LwwMap`]s keyed by config point,
//!   timestamped in simulation microseconds;
//! * `tags` is an add-wins [`OrSet`] (concurrent tag/untag keeps the
//!   tag);
//! * `clock` is a [`VClock`] counting the writes each replica
//!   contributed — the provenance a fleet operator reads to tell a
//!   silent device from a partitioned one.
//!
//! A [`TwinStore`] is the composition: one twin per `(tenant, device)`
//! key, itself a CRDT (per-device merge). Gateways keep a replica per
//! network and the cloud holds the join; the fleet harness
//! (`iiot-fleet`) merges gateway replicas into the cloud store at each
//! ingest drain point, and the drift detector diffs `desired` against
//! `reported` on the converged state.
//!
//! # Examples
//!
//! Two gateway replicas report concurrently during a backhaul
//! partition; the cloud joins them after the heal and sees both writes:
//!
//! ```
//! use iiot_cloud::{DeviceTwin, TenantId, TwinStore};
//! use iiot_crdt::{Crdt, ReplicaId};
//!
//! let t = TenantId(0);
//! let mut east = TwinStore::new();
//! let mut west = TwinStore::new();
//! east.report(t, 1, 100, ReplicaId(1), "fw", 2.0);
//! west.report(t, 2, 101, ReplicaId(2), "fw", 1.0);
//!
//! let mut cloud = TwinStore::new();
//! cloud.desire(t, 1, 0, ReplicaId(0), "fw", 2.0);
//! cloud.merge(&east);
//! cloud.merge(&west);
//! assert_eq!(cloud.len(), 2);
//! assert_eq!(cloud.twin(t, 1).unwrap().reported.get(&"fw".into()), Some(&2.0));
//! assert!(cloud.twin(t, 1).unwrap().drift(1e-9).is_empty(), "in sync");
//! ```

use crate::tenant::TenantId;
use iiot_crdt::{Crdt, LwwMap, OrSet, ReplicaId, VClock};
use iiot_sim::SimTime;
use iiot_stream::{WindowAggregator, WindowKey};
use std::collections::BTreeMap;

/// One device's convergent cloud-side state; see the [module
/// docs](self).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DeviceTwin {
    /// Last-reported config/telemetry points (gateway-written).
    pub reported: LwwMap<String, f64>,
    /// Desired config points (control-plane-written).
    pub desired: LwwMap<String, f64>,
    /// Operator tags (add-wins under concurrency).
    pub tags: OrSet<String>,
    /// Writes absorbed per replica — the twin's provenance.
    pub clock: VClock,
}

impl DeviceTwin {
    /// An empty twin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a device-reported value for `key` at `t_us` on behalf
    /// of `writer` (a gateway replica).
    pub fn report(&mut self, t_us: u64, writer: ReplicaId, key: &str, value: f64) {
        self.reported.insert(t_us, writer, key.to_owned(), value);
        self.clock.increment(writer);
    }

    /// Records a desired value for `key` at `t_us` on behalf of
    /// `writer` (the control plane).
    pub fn desire(&mut self, t_us: u64, writer: ReplicaId, key: &str, value: f64) {
        self.desired.insert(t_us, writer, key.to_owned(), value);
        self.clock.increment(writer);
    }

    /// Adds an operator tag on behalf of `writer`.
    pub fn tag(&mut self, writer: ReplicaId, tag: &str) {
        self.tags.insert(writer, tag.to_owned());
        self.clock.increment(writer);
    }

    /// Desired keys whose reported value is missing or differs by more
    /// than `tolerance`: `(key, desired, reported)` in key order.
    pub fn drift(&self, tolerance: f64) -> Vec<(&str, f64, Option<f64>)> {
        self.desired
            .iter()
            .filter_map(|(k, &want)| match self.reported.get(k) {
                Some(&have) if (have - want).abs() <= tolerance => None,
                have => Some((k.as_str(), want, have.copied())),
            })
            .collect()
    }
}

impl Crdt for DeviceTwin {
    fn merge(&mut self, other: &Self) {
        self.reported.merge(&other.reported);
        self.desired.merge(&other.desired);
        self.tags.merge(&other.tags);
        self.clock.merge(&other.clock);
    }
}

/// A registry-shaped map of twins keyed by `(tenant, device)`; itself a
/// CRDT (twins merge pointwise, unknown devices are adopted whole).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TwinStore {
    twins: BTreeMap<(TenantId, u32), DeviceTwin>,
}

impl TwinStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The twin of `device` under `tenant`, if any writer touched it.
    pub fn twin(&self, tenant: TenantId, device: u32) -> Option<&DeviceTwin> {
        self.twins.get(&(tenant, device))
    }

    /// The twin of `device` under `tenant`, created empty on first use.
    pub fn twin_mut(&mut self, tenant: TenantId, device: u32) -> &mut DeviceTwin {
        self.twins.entry((tenant, device)).or_default()
    }

    /// Records a device-reported value (see [`DeviceTwin::report`]).
    pub fn report(
        &mut self,
        tenant: TenantId,
        device: u32,
        t_us: u64,
        writer: ReplicaId,
        key: &str,
        value: f64,
    ) {
        self.twin_mut(tenant, device)
            .report(t_us, writer, key, value);
    }

    /// Records a desired value (see [`DeviceTwin::desire`]).
    pub fn desire(
        &mut self,
        tenant: TenantId,
        device: u32,
        t_us: u64,
        writer: ReplicaId,
        key: &str,
        value: f64,
    ) {
        self.twin_mut(tenant, device)
            .desire(t_us, writer, key, value);
    }

    /// Tags a device (see [`DeviceTwin::tag`]).
    pub fn tag(&mut self, tenant: TenantId, device: u32, writer: ReplicaId, tag: &str) {
        self.twin_mut(tenant, device).tag(writer, tag);
    }

    /// Number of known twins.
    pub fn len(&self) -> usize {
        self.twins.len()
    }

    /// Whether no twin exists yet.
    pub fn is_empty(&self) -> bool {
        self.twins.is_empty()
    }

    /// Iterates over `((tenant, device), twin)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(TenantId, u32), &DeviceTwin)> {
        self.twins.iter()
    }

    /// Devices whose twin currently drifts (desired vs reported beyond
    /// `tolerance`), with the number of drifting keys, in key order.
    pub fn drifted(&self, tolerance: f64) -> Vec<((TenantId, u32), u32)> {
        self.twins
            .iter()
            .filter_map(|(k, twin)| {
                let n = twin.drift(tolerance).len() as u32;
                (n > 0).then_some((*k, n))
            })
            .collect()
    }

    /// Total writes absorbed across all twins and replicas.
    pub fn total_events(&self) -> u64 {
        self.twins.values().map(|t| t.clock.total_events()).sum()
    }

    /// Merges `other` (a gateway replica reaching the cloud at a
    /// backhaul drain point) and feeds every reported point that is
    /// **new to this store** into `windows`, keyed tenant × device,
    /// with the point's LWW write timestamp as its *event time*.
    ///
    /// Event-time attribution is what makes windowed aggregates honest
    /// across partitions: a replica that buffered reports through an
    /// outage delivers them late, but each value still lands in the
    /// window of the virtual instant it was written on the device —
    /// provided the window's `allowed_lateness` covers the outage.
    /// Points whose window already closed are counted late-dropped by
    /// the aggregator, never silently mis-binned. The caller advances
    /// the aggregator's watermark with the merge's *arrival* time.
    pub fn merge_windowed(&mut self, other: &TwinStore, windows: &mut WindowAggregator) {
        for ((tenant, device), twin) in other.iter() {
            let mine = self.twins.get(&(*tenant, *device));
            for (key, &value) in twin.reported.iter() {
                let Some(theirs) = twin.reported.version(key) else {
                    continue;
                };
                let newer = match mine.and_then(|m| m.reported.version(key)) {
                    // LWW order: (timestamp, writer) — only a write
                    // that would win the merge is a new observation.
                    Some(ours) => theirs > ours,
                    None => true,
                };
                if newer {
                    let key = WindowKey {
                        tenant: tenant.0,
                        metric: *device,
                    };
                    windows.observe(key, value, SimTime::from_micros(theirs.0));
                }
            }
        }
        self.merge(other);
    }
}

impl Crdt for TwinStore {
    fn merge(&mut self, other: &Self) {
        for (k, twin) in &other.twins {
            match self.twins.get_mut(k) {
                Some(mine) => mine.merge(twin),
                None => {
                    self.twins.insert(*k, twin.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TenantId = TenantId(0);
    const GW1: ReplicaId = ReplicaId(1);
    const GW2: ReplicaId = ReplicaId(2);
    const CLOUD: ReplicaId = ReplicaId(0);

    #[test]
    fn lww_keeps_the_newest_report_per_key() {
        let mut a = TwinStore::new();
        let mut b = TwinStore::new();
        a.report(T, 0, 10, GW1, "fw", 1.0);
        b.report(T, 0, 20, GW2, "fw", 2.0);
        b.report(T, 0, 5, GW2, "rssi", -70.0);
        a.merge(&b);
        let twin = a.twin(T, 0).expect("twin");
        assert_eq!(twin.reported.get(&"fw".into()), Some(&2.0));
        assert_eq!(twin.reported.get(&"rssi".into()), Some(&-70.0));
        assert_eq!(twin.clock.get(GW1), 1);
        assert_eq!(twin.clock.get(GW2), 2);
    }

    #[test]
    fn merge_is_commutative_and_idempotent_across_replicas() {
        let mut a = TwinStore::new();
        a.report(T, 0, 10, GW1, "fw", 1.0);
        a.tag(T, 0, GW1, "line-3");
        let mut b = TwinStore::new();
        b.report(T, 1, 11, GW2, "fw", 1.0);
        b.desire(T, 0, 12, CLOUD, "interval", 60.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        let mut twice = ab.clone();
        twice.merge(&b);
        assert_eq!(twice, ab, "re-merging must be a no-op");
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.total_events(), 4);
    }

    #[test]
    fn drift_is_desired_minus_reported() {
        let mut s = TwinStore::new();
        s.desire(T, 3, 10, CLOUD, "interval", 60.0);
        s.desire(T, 3, 10, CLOUD, "gain", 2.5);
        assert_eq!(
            s.drifted(1e-9),
            vec![((T, 3), 2)],
            "unreported desired keys drift"
        );
        s.report(T, 3, 20, GW1, "interval", 60.0);
        s.report(T, 3, 20, GW1, "gain", 2.0);
        let twin = s.twin(T, 3).expect("twin");
        assert_eq!(twin.drift(1e-9), vec![("gain", 2.5, Some(2.0))]);
        s.report(T, 3, 30, GW1, "gain", 2.5);
        assert!(s.drifted(1e-9).is_empty(), "converged state has no drift");
    }

    #[test]
    fn merge_windowed_attributes_buffered_reports_by_event_time() {
        use iiot_sim::SimDuration;
        use iiot_stream::{WindowAggregator, WindowSpec};
        let secs = SimDuration::from_secs;
        // A gateway buffers two reports through a ~35 s backhaul
        // outage; the cloud merges them all at once at t=50 s.
        let mut gw = TwinStore::new();
        gw.report(T, 1, 5_000_000, GW1, "temp", 20.0); // event time 5 s
        gw.report(T, 1, 15_000_000, GW1, "rssi", -70.0); // event time 15 s

        // Lateness covering the outage: both land in their event-time
        // windows despite arriving long after.
        let mut w = WindowAggregator::new(WindowSpec::tumbling(secs(10)).with_lateness(secs(45)));
        let mut cloud = TwinStore::new();
        cloud.merge_windowed(&gw, &mut w);
        w.advance_watermark(iiot_sim::SimTime::from_secs(50));
        // Re-merging the same replica contributes no new observations.
        cloud.merge_windowed(&gw, &mut w);
        let results = w.flush();
        assert_eq!(results.len(), 2, "one window per event time");
        assert!(results.iter().all(|r| r.count == 1));
        assert_eq!(w.late_total(), 0);

        // No lateness budget: the same delayed merge finds both windows
        // closed — counted late per key, never mis-binned.
        let mut w0 = WindowAggregator::new(WindowSpec::tumbling(secs(10)));
        w0.advance_watermark(iiot_sim::SimTime::from_secs(50));
        let mut cloud0 = TwinStore::new();
        cloud0.merge_windowed(&gw, &mut w0);
        assert_eq!(w0.late_total(), 2);
        assert_eq!(w0.observed(), 0);
    }

    #[test]
    fn tags_are_add_wins() {
        let mut a = TwinStore::new();
        a.tag(T, 0, GW1, "canary");
        let mut b = a.clone();
        a.twin_mut(T, 0).tags.remove(&"canary".to_owned());
        b.tag(T, 0, GW2, "canary");
        a.merge(&b);
        assert!(a.twin(T, 0).unwrap().tags.contains(&"canary".to_owned()));
    }
}
