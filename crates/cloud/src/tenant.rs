//! Tenancy vocabulary: identities and per-tenant ingest policy.
//!
//! A *tenant* is a northbound account — a plant operator, an OEM fleet,
//! an analytics customer — that owns a namespace of devices and a slice
//! of the platform's ingest capacity. This is deliberately a different
//! concept from `iiot_mac::coex::TenantId`-style radio-channel
//! tenancy: the cloud tier multiplexes *queues and workers*, not
//! spectrum.

/// A northbound tenant account id.
///
/// Dense small integers: tenants index per-tenant queues and stats
/// tables directly, and the static `tenant → shard` assignment is
/// `id % shards`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The shard this tenant's queue lives on, for `shards` shards.
    pub fn shard(self, shards: usize) -> usize {
        self.0 as usize % shards.max(1)
    }
}

/// What the front door does with a new message when the tenant's
/// bounded queue is full.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShedPolicy {
    /// Reject the arriving message (tail drop). The device sees
    /// explicit backpressure; queued history is preserved.
    RejectNew,
    /// Evict the oldest queued message to admit the new one (head
    /// drop). Freshness wins; the shed count is the same, but latency
    /// of what *is* delivered stays bounded.
    DropOldest,
}

/// How tenant traffic maps onto queues.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Isolation {
    /// One bounded queue per tenant (the default): a tenant that
    /// overruns its queue sheds only its own traffic.
    PerTenant,
    /// All tenants on a shard share one bounded queue — the classic
    /// noisy-neighbor topology, kept as the experimental control for
    /// E16's fairness comparison.
    Shared,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_static_and_total() {
        for t in 0..64u16 {
            assert_eq!(TenantId(t).shard(4), (t % 4) as usize);
            assert_eq!(TenantId(t).shard(0), 0, "degenerate shard count clamps");
        }
    }
}
