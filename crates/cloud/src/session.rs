//! Deterministic synthetic device sessions: the load generator that
//! feeds E16 its 10^5–10^6 uplinks.
//!
//! Every registered device runs one *session*: it wakes at a seeded
//! phase inside its reporting interval and then reports periodically
//! with seeded jitter, for a configured number of messages. The
//! generator merges all sessions into one globally time-ordered stream
//! with a binary-heap calendar — O(log n) per message — and every
//! quantity (phase, jitter, value) derives from the master seed via
//! [`iiot_sim::seed::derive`], so the stream is a pure function of
//! `(plan, seed)`: same bytes on every machine, every `--jobs`.

use crate::ingest::UplinkMsg;
use crate::registry::DeviceRegistry;
use crate::tenant::TenantId;
use iiot_sim::seed;
use iiot_sim::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shape of the synthetic fleet's traffic.
#[derive(Clone, Copy, Debug)]
pub struct SessionPlan {
    /// Messages each device sends before its session ends.
    pub msgs_per_device: u32,
    /// Mean reporting interval.
    pub interval: SimDuration,
    /// Uniform jitter added to each interval, `[0, jitter)`.
    pub jitter: SimDuration,
    /// Optional noisy-neighbor tenant: reports `multiplier`× faster
    /// than everyone else — its interval *and* jitter are both
    /// compressed by the multiplier (E16's cross-tenant pressure
    /// source).
    pub noisy: Option<(TenantId, u32)>,
}

impl Default for SessionPlan {
    fn default() -> Self {
        SessionPlan {
            msgs_per_device: 4,
            interval: SimDuration::from_millis(1000),
            jitter: SimDuration::from_millis(200),
            noisy: None,
        }
    }
}

/// One pending session wake-up in the calendar.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Wakeup {
    /// Next report instant, µs. First key: the stream is time-ordered.
    t_us: u64,
    /// Tie-breakers make simultaneous wake-ups deterministic.
    tenant: TenantId,
    device: u32,
    /// Messages this session still owes.
    remaining: u32,
    /// Per-session RNG state (advanced with [`seed::derive`]).
    rng: u64,
}

/// The merged session stream; see the [module docs](self).
pub struct SessionGen {
    calendar: BinaryHeap<Reverse<Wakeup>>,
    plan: SessionPlan,
    sessions: u64,
    emitted: u64,
}

impl SessionGen {
    /// Schedules one session per device registered in `registry`.
    pub fn new(registry: &DeviceRegistry, plan: SessionPlan, master_seed: u64) -> Self {
        let mut calendar = BinaryHeap::new();
        let mut sessions = 0u64;
        for tenant in registry.tenants() {
            for device in 0..registry.fleet_size(tenant) {
                let sid = ((tenant.0 as u64) << 32) | device as u64;
                let rng = seed::derive(master_seed, sid);
                // Wake at a seeded phase inside the first interval so
                // the fleet doesn't report in lockstep.
                let phase = rng % Self::effective_interval(&plan, tenant).max(1);
                calendar.push(Reverse(Wakeup {
                    t_us: phase,
                    tenant,
                    device,
                    remaining: plan.msgs_per_device,
                    rng,
                }));
                sessions += 1;
            }
        }
        SessionGen {
            calendar,
            plan,
            sessions,
            emitted: 0,
        }
    }

    fn noisy_mult(plan: &SessionPlan, tenant: TenantId) -> u64 {
        match plan.noisy {
            Some((noisy, mult)) if noisy == tenant => mult.max(1) as u64,
            _ => 1,
        }
    }

    fn effective_interval(plan: &SessionPlan, tenant: TenantId) -> u64 {
        plan.interval.as_micros() / Self::noisy_mult(plan, tenant)
    }

    fn effective_jitter(plan: &SessionPlan, tenant: TenantId) -> u64 {
        plan.jitter.as_micros() / Self::noisy_mult(plan, tenant)
    }

    /// Number of scheduled sessions.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Total messages the stream will emit.
    pub fn total_msgs(&self) -> u64 {
        self.sessions * self.plan.msgs_per_device as u64
    }

    /// Messages emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The next uplink in global time order, stamped with the device's
    /// registered credential; `None` when every session has finished.
    pub fn next_msg(&mut self, registry: &DeviceRegistry) -> Option<UplinkMsg> {
        let Reverse(w) = self.calendar.pop()?;
        // Seeded synthetic telemetry in a plausible sensor range.
        let value = 20.0 + (w.rng % 1000) as f64 / 100.0;
        let msg = UplinkMsg {
            tenant: w.tenant,
            device: w.device,
            token: registry.token(w.tenant, w.device).unwrap_or(0),
            value,
            t: SimTime::from_micros(w.t_us),
        };
        if w.remaining > 1 {
            let rng = seed::derive(w.rng, w.remaining as u64);
            let jitter_range = Self::effective_jitter(&self.plan, w.tenant);
            let jitter = if jitter_range == 0 {
                0
            } else {
                rng % jitter_range
            };
            self.calendar.push(Reverse(Wakeup {
                t_us: w.t_us + Self::effective_interval(&self.plan, w.tenant) + jitter,
                tenant: w.tenant,
                device: w.device,
                remaining: w.remaining - 1,
                rng,
            }));
        }
        self.emitted += 1;
        Some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiot_security::Key;

    fn registry(tenants: u16, devices: u32) -> DeviceRegistry {
        let mut r = DeviceRegistry::new();
        for i in 0..tenants {
            let t = r.create_tenant(&format!("t{i}"), Key([i as u8 + 1; 16]));
            r.register_fleet(t, devices);
        }
        r
    }

    fn drain(reg: &DeviceRegistry, plan: SessionPlan, seed: u64) -> Vec<UplinkMsg> {
        let mut g = SessionGen::new(reg, plan, seed);
        let mut out = Vec::new();
        while let Some(m) = g.next_msg(reg) {
            out.push(m);
        }
        out
    }

    #[test]
    fn stream_is_time_ordered_and_complete() {
        let reg = registry(3, 20);
        let msgs = drain(&reg, SessionPlan::default(), 42);
        assert_eq!(msgs.len(), 3 * 20 * 4);
        for w in msgs.windows(2) {
            assert!(w[0].t <= w[1].t, "stream must be nondecreasing in time");
        }
    }

    #[test]
    fn stream_is_a_pure_function_of_plan_and_seed() {
        let reg = registry(2, 30);
        let a = drain(&reg, SessionPlan::default(), 7);
        let b = drain(&reg, SessionPlan::default(), 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.tenant, x.device, x.t, x.token),
                (y.tenant, y.device, y.t, y.token)
            );
        }
        let c = drain(&reg, SessionPlan::default(), 8);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.t != y.t),
            "different seed must move the schedule"
        );
    }

    #[test]
    fn noisy_tenant_reports_faster() {
        let reg = registry(2, 50);
        let plan = SessionPlan {
            msgs_per_device: 8,
            noisy: Some((TenantId(0), 8)),
            ..SessionPlan::default()
        };
        let msgs = drain(&reg, plan, 42);
        let horizon = |t: TenantId| {
            msgs.iter()
                .filter(|m| m.tenant == t)
                .map(|m| m.t.as_micros())
                .max()
                .unwrap()
        };
        assert!(
            horizon(TenantId(0)) * 4 < horizon(TenantId(1)),
            "noisy tenant must compress its schedule"
        );
    }

    #[test]
    fn generated_msgs_authenticate() {
        let reg = registry(2, 10);
        for m in drain(&reg, SessionPlan::default(), 42) {
            assert!(reg.authenticate(m.tenant, m.device, m.token).is_ok());
        }
    }
}
