//! The cloud tier's stream plane: write-ahead uplink logging, replay,
//! and the uplink wire codec.
//!
//! # Write-ahead ordering and replay fidelity
//!
//! When a [`StreamConfig`] attaches an event log to the
//! [`IngestPipeline`], the front door appends every offered uplink to
//! the log **before** admission control, authentication or enqueueing.
//! The log therefore captures the complete offer sequence — including
//! messages that were subsequently rate-limited, rejected for bad
//! credentials, or shed to backpressure. [`replay`] rebuilds a fresh
//! pipeline under the same configuration and re-offers the logged
//! sequence through the same drive loop (`drain_until(msg.t)`, then
//! `offer(msg)`, then `drain_remaining()`, then flush the windows).
//! Because every statistic the pipeline reports is a pure function of
//! the offer sequence and configuration, the replayed run reproduces
//! the live run's per-tenant stats, emitted trace events, closed
//! windows, and even its own write-ahead log bytes, exactly.
//!
//! # Wire format
//!
//! Uplinks persist as fixed [`UPLINK_FRAME`]-byte little-endian
//! records: tenant (u16), device (u32), token (u64), value (f64 bits),
//! arrival time (u64 µs). The event log wraps each in its own
//! CRC-checked frame, so a torn or corrupted tail is detected and
//! truncated on recovery rather than replayed as garbage.

use crate::ingest::{IngestConfig, IngestPipeline, UplinkMsg};
use crate::registry::DeviceRegistry;
use crate::tenant::TenantId;
use iiot_sim::obs::Recorder;
use iiot_sim::SimTime;
use iiot_stream::{
    AdmissionControl, EventLog, LogConfig, RateLimit, RecoveryReport, WindowAggregator, WindowSpec,
};

/// Persisted size of one uplink record (see the [module docs](self)).
pub const UPLINK_FRAME: usize = 30;

/// Encodes an uplink into its persisted wire form.
pub fn encode_uplink(msg: &UplinkMsg) -> [u8; UPLINK_FRAME] {
    let mut out = [0u8; UPLINK_FRAME];
    out[0..2].copy_from_slice(&msg.tenant.0.to_le_bytes());
    out[2..6].copy_from_slice(&msg.device.to_le_bytes());
    out[6..14].copy_from_slice(&msg.token.to_le_bytes());
    out[14..22].copy_from_slice(&msg.value.to_bits().to_le_bytes());
    out[22..30].copy_from_slice(&msg.t.as_micros().to_le_bytes());
    out
}

/// Decodes an uplink from its persisted wire form; `None` if `bytes`
/// is not exactly one frame.
pub fn decode_uplink(bytes: &[u8]) -> Option<UplinkMsg> {
    if bytes.len() != UPLINK_FRAME {
        return None;
    }
    let u16le = |i: usize| u16::from_le_bytes([bytes[i], bytes[i + 1]]);
    let u32le = |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
    let u64le = |i: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[i..i + 8]);
        u64::from_le_bytes(b)
    };
    Some(UplinkMsg {
        tenant: TenantId(u16le(0)),
        device: u32le(2),
        token: u64le(6),
        value: f64::from_bits(u64le(14)),
        t: SimTime::from_micros(u64le(22)),
    })
}

/// Which stream-plane features to attach to an [`IngestPipeline`]
/// (each independently optional; the default attaches nothing).
#[derive(Clone, Debug, Default)]
pub struct StreamConfig {
    /// Write every offered uplink through an event log.
    pub log: Option<LogConfig>,
    /// Per-tenant token-bucket admission control ahead of the queues,
    /// with this uniform contract.
    pub admission: Option<RateLimit>,
    /// Per-tenant overrides of the uniform admission contract.
    pub admission_overrides: Vec<(TenantId, RateLimit)>,
    /// Windowed aggregation over accepted uplinks (keyed tenant ×
    /// device), watermarked by arrival virtual time.
    pub windows: Option<WindowSpec>,
}

impl StreamConfig {
    /// Attaches only the write-ahead event log.
    pub fn logged(config: LogConfig) -> Self {
        StreamConfig {
            log: Some(config),
            ..StreamConfig::default()
        }
    }

    /// Adds uniform admission control to this configuration.
    pub fn with_admission(mut self, limit: RateLimit) -> Self {
        self.admission = Some(limit);
        self
    }

    /// Adds windowed aggregation to this configuration.
    pub fn with_windows(mut self, spec: WindowSpec) -> Self {
        self.windows = Some(spec);
        self
    }
}

/// The pipeline-side state behind a [`StreamConfig`]; owned by
/// [`IngestPipeline`], empty unless attached.
#[derive(Default)]
pub(crate) struct StreamAttachment {
    pub(crate) wal: Option<EventLog>,
    pub(crate) admission: Option<AdmissionControl>,
    pub(crate) windows: Option<WindowAggregator>,
    /// Windows closed so far, in watermark order.
    pub(crate) closed: Vec<iiot_stream::WindowResult>,
}

impl StreamAttachment {
    pub(crate) fn build(config: &StreamConfig) -> Self {
        let admission = config.admission.map(|limit| {
            let mut ac = AdmissionControl::uniform(limit);
            for (tenant, over) in &config.admission_overrides {
                ac.set_limit(tenant.0, *over);
            }
            ac
        });
        StreamAttachment {
            wal: config.log.map(EventLog::new),
            admission,
            windows: config.windows.map(WindowAggregator::new),
            closed: Vec::new(),
        }
    }
}

/// Recovers a persisted uplink log and replays it through a fresh
/// pipeline under the same configuration; see the [module docs](self).
/// Returns the drained pipeline and the log recovery report.
///
/// The replayed pipeline runs with its own stream attachment built
/// from the same `stream` config, so its write-ahead log re-persists
/// the offer sequence — byte-identical to the recovered input when the
/// input was not truncated.
pub fn replay(
    bytes: &[u8],
    registry: DeviceRegistry,
    config: IngestConfig,
    stream: StreamConfig,
    recorder: Option<Box<dyn Recorder>>,
) -> (IngestPipeline, RecoveryReport) {
    let log_config = stream.log.unwrap_or_default();
    let (log, report) = EventLog::recover(bytes, log_config);
    let mut pipeline = IngestPipeline::new(registry, config);
    pipeline.attach_stream(StreamConfig {
        log: Some(log_config),
        ..stream
    });
    pipeline.set_recorder(recorder);
    for (_, payload) in log.iter_from(0) {
        if let Some(msg) = decode_uplink(payload) {
            pipeline.drain_until(msg.t);
            pipeline.offer(msg);
        }
    }
    pipeline.drain_remaining();
    pipeline.flush_windows();
    (pipeline, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::TenantStats;
    use iiot_security::Key;
    use iiot_sim::obs::{Event, RingRecorder};
    use iiot_sim::SimDuration;
    use iiot_stream::WindowSpec;

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        for name in ["a", "b"] {
            let t = reg.create_tenant(name, Key([name.as_bytes()[0]; 16]));
            reg.register_fleet(t, 20);
        }
        reg
    }

    /// The canonical drive loop: noisy tenant 0, quiet tenant 1, a bad
    /// credential every 97th message — exercising every shed path.
    fn drive(mut p: IngestPipeline) -> IngestPipeline {
        for i in 0..2000u64 {
            let tenant = TenantId(if i % 5 == 4 { 1 } else { 0 });
            let device = (i % 20) as u32;
            let mut token = p.registry().token(tenant, device).unwrap_or(0);
            if i % 97 == 0 {
                token ^= 1;
            }
            let msg = UplinkMsg {
                tenant,
                device,
                token,
                value: (i % 13) as f64,
                t: SimTime::from_micros(i * 200),
            };
            p.drain_until(msg.t);
            p.offer(msg);
        }
        p.drain_remaining();
        p.flush_windows();
        p
    }

    fn events_of(p: &mut IngestPipeline) -> Vec<Event> {
        let rec = p.take_recorder().expect("recorder installed");
        rec.as_any()
            .downcast_ref::<RingRecorder>()
            .expect("ring recorder")
            .events()
            .copied()
            .collect()
    }

    #[test]
    fn replay_reproduces_live_stats_events_and_log_bytes() {
        let config = IngestConfig {
            queue_cap: 16,
            drain_batch: 4,
            threaded: false,
            ..IngestConfig::default()
        };
        let stream = StreamConfig::logged(iiot_stream::LogConfig {
            segment_bytes: 4096,
        })
        .with_admission(RateLimit::per_sec(3_000, 20))
        .with_windows(WindowSpec::tumbling(SimDuration::from_millis(50)));

        let mut live = IngestPipeline::new(registry(), config);
        live.attach_stream(stream.clone());
        live.set_recorder(Some(Box::new(RingRecorder::new(1 << 16))));
        let mut live = drive(live);
        let live_events = events_of(&mut live);
        let wal = live.wal().expect("wal attached").as_bytes().to_vec();

        let (mut replayed, report) = replay(
            &wal,
            registry(),
            config,
            stream,
            Some(Box::new(RingRecorder::new(1 << 16))),
        );
        assert_eq!(report.truncated_bytes, 0, "pristine log loses nothing");
        assert_eq!(
            report.records, 2000,
            "every offer was logged, sheds included"
        );
        assert_eq!(
            crate::metrics::summarize(&live),
            crate::metrics::summarize(&replayed),
            "per-tenant stats must replay identically"
        );
        assert_eq!(live.closed_windows(), replayed.closed_windows());
        assert_eq!(
            replayed.wal().expect("wal").as_bytes(),
            wal.as_slice(),
            "the replayed pipeline re-persists a byte-identical log"
        );
        assert_eq!(
            events_of(&mut replayed),
            live_events,
            "trace events must match"
        );

        // The workload exercised every shed path, so the equalities
        // above have teeth.
        let tot = |p: &IngestPipeline, f: fn(&TenantStats) -> u64| {
            p.stats().map(|(_, s)| f(s)).sum::<u64>()
        };
        assert!(
            tot(&live, |s| s.shed_ratelimit) > 0,
            "admission shed exercised"
        );
        assert!(tot(&live, |s| s.shed_auth) > 0, "auth shed exercised");
        assert!(tot(&live, |s| s.shed_full) > 0, "queue shed exercised");
        assert!(!live.closed_windows().is_empty(), "windows closed");
        assert!(
            live.wal().expect("wal").sealed_segments() > 0,
            "segments sealed"
        );
    }

    #[test]
    fn replay_after_a_torn_crash_matches_a_live_run_over_the_prefix() {
        let config = IngestConfig {
            queue_cap: 16,
            threaded: false,
            ..IngestConfig::default()
        };
        let stream = StreamConfig::logged(iiot_stream::LogConfig {
            segment_bytes: 1024,
        });

        let mut live = IngestPipeline::new(registry(), config);
        live.attach_stream(stream.clone());
        let live = drive(live);
        let wal = live.wal().expect("wal").as_bytes().to_vec();

        // Crash mid-record: cut 7 bytes into the torn tail.
        let cut = wal.len() - 7;
        let (recovered, report) = replay(&wal[..cut], registry(), config, stream.clone(), None);
        assert_eq!(report.records, 1999, "one torn record dropped");
        assert!(report.truncated_bytes > 0);

        // A fresh live run over just the surviving prefix agrees.
        let mut fresh = IngestPipeline::new(registry(), config);
        fresh.attach_stream(stream);
        let prefix_log = recovered.wal().expect("wal").clone();
        for (_, payload) in prefix_log.iter_from(0) {
            let msg = decode_uplink(payload).expect("intact record");
            fresh.drain_until(msg.t);
            fresh.offer(msg);
        }
        fresh.drain_remaining();
        assert_eq!(
            crate::metrics::summarize(&recovered),
            crate::metrics::summarize(&fresh)
        );
    }

    #[test]
    fn uplink_codec_roundtrip() {
        let msg = UplinkMsg {
            tenant: TenantId(7),
            device: 123_456,
            token: 0xdead_beef_cafe_f00d,
            value: -273.15,
            t: SimTime::from_micros(86_400_000_017),
        };
        let bytes = encode_uplink(&msg);
        let back = decode_uplink(&bytes).expect("full frame decodes");
        assert_eq!(back.tenant, msg.tenant);
        assert_eq!(back.device, msg.device);
        assert_eq!(back.token, msg.token);
        assert_eq!(back.value.to_bits(), msg.value.to_bits());
        assert_eq!(back.t, msg.t);
        assert!(decode_uplink(&bytes[..UPLINK_FRAME - 1]).is_none());
    }
}
