//! Cloud-tier metrics: per-tenant summaries and Jain's fairness index.

use crate::ingest::IngestPipeline;
use crate::tenant::TenantId;

/// One tenant's ingest scorecard, distilled from
/// [`TenantStats`](crate::ingest::TenantStats) for tables and JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSummary {
    /// The tenant.
    pub tenant: TenantId,
    /// Messages presented to the front door.
    pub offered: u64,
    /// Messages admitted.
    pub accepted: u64,
    /// Messages shed, all causes (auth + rate limit + backpressure).
    pub shed: u64,
    /// Messages shed for failing the credential check.
    pub shed_auth: u64,
    /// Messages shed by admission control before any queue.
    pub shed_ratelimit: u64,
    /// Messages shed to queue backpressure.
    pub shed_full: u64,
    /// Median queue latency, µs of virtual time (0 if nothing drained).
    pub p50_us: u64,
    /// 99th-percentile queue latency, µs of virtual time.
    pub p99_us: u64,
}

/// Summarizes every tenant of a pipeline, in tenant-id order.
pub fn summarize(pipeline: &IngestPipeline) -> Vec<TenantSummary> {
    pipeline
        .stats()
        .map(|(tenant, st)| TenantSummary {
            tenant,
            offered: st.offered,
            accepted: st.accepted,
            shed: st.shed(),
            shed_auth: st.shed_auth,
            shed_ratelimit: st.shed_ratelimit,
            shed_full: st.shed_full,
            p50_us: st.latency_us.quantile(0.5).round() as u64,
            p99_us: st.latency_us.quantile(0.99).round() as u64,
        })
        .collect()
}

/// Jain's fairness index over per-tenant allocations:
/// `(Σx)² / (n·Σx²)`. 1.0 is perfectly fair; `1/n` is one tenant
/// taking everything. Empty or all-zero input reports 1.0 (nothing is
/// being divided, so nothing is unfair).
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

/// Fairness of *service*: Jain's index over each tenant's fraction of
/// its offered load that was accepted. A noisy tenant that only hurts
/// itself leaves this at 1.0; cross-tenant damage pulls it down.
pub fn service_fairness(summaries: &[TenantSummary]) -> f64 {
    let rates: Vec<f64> = summaries
        .iter()
        .filter(|s| s.offered > 0)
        .map(|s| s.accepted as f64 / s.offered as f64)
        .collect();
    jain_fairness(&rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let one_hog = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!(
            (one_hog - 0.25).abs() < 1e-12,
            "n=4 floor is 1/4, got {one_hog}"
        );
        assert!((jain_fairness(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn service_fairness_ignores_idle_tenants() {
        let s = |tenant, offered, accepted| TenantSummary {
            tenant: TenantId(tenant),
            offered,
            accepted,
            shed: offered - accepted,
            shed_auth: 0,
            shed_ratelimit: 0,
            shed_full: offered - accepted,
            p50_us: 0,
            p99_us: 0,
        };
        let all_served = [s(0, 100, 100), s(1, 10, 10), s(2, 0, 0)];
        assert!((service_fairness(&all_served) - 1.0).abs() < 1e-12);
        let skewed = [s(0, 100, 100), s(1, 100, 25)];
        assert!(service_fairness(&skewed) < 0.9);
    }
}
