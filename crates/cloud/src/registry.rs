//! The device registry: per-tenant namespaces and ingest credentials.
//!
//! Every simulated device gets a per-device token derived from its
//! tenant's master key with the workspace's XTEA CBC-MAC
//! ([`iiot_security::crypto::cbc_mac`]). Tokens are precomputed at fleet
//! registration into a flat `Vec<u64>`, so the hot-path credential
//! check at ingest is one bounds check and one constant-time compare —
//! the registry stays O(1) per message even at 10^6 devices.

use crate::tenant::TenantId;
use iiot_security::crypto::{cbc_mac, mac_eq};
use iiot_security::Key;
use std::collections::BTreeMap;

/// Why an ingest credential check failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthError {
    /// The tenant id is not registered.
    UnknownTenant,
    /// The device index is outside the tenant's registered fleet.
    UnknownDevice,
    /// The presented token does not match the registered credential.
    BadToken,
}

/// One tenant's registry entry: name, master key, device credentials.
#[derive(Debug)]
struct TenantEntry {
    name: String,
    key: Key,
    /// `tokens[device]` is the device's ingest credential.
    tokens: Vec<u64>,
}

/// Multi-tenant device registry; see the [module docs](self).
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    tenants: BTreeMap<TenantId, TenantEntry>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Creates a tenant namespace with the given display name and
    /// master key. Tenant ids are assigned densely in creation order.
    pub fn create_tenant(&mut self, name: &str, key: Key) -> TenantId {
        let id = TenantId(self.tenants.len() as u16);
        self.tenants.insert(
            id,
            TenantEntry {
                name: name.to_owned(),
                key,
                tokens: Vec::new(),
            },
        );
        id
    }

    /// Registers `n` more devices under `tenant`, precomputing their
    /// ingest tokens. Returns the index of the first new device.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` was not created by this registry.
    pub fn register_fleet(&mut self, tenant: TenantId, n: u32) -> u32 {
        let e = self.tenants.get_mut(&tenant).expect("unknown tenant");
        let first = e.tokens.len() as u32;
        e.tokens.reserve(n as usize);
        for d in first..first + n {
            e.tokens.push(device_token(&e.key, tenant, d));
        }
        first
    }

    /// The ingest credential of `device` under `tenant`, if registered.
    /// Load generators call this to stamp outgoing uplinks.
    pub fn token(&self, tenant: TenantId, device: u32) -> Option<u64> {
        self.tenants
            .get(&tenant)?
            .tokens
            .get(device as usize)
            .copied()
    }

    /// The hot-path credential check at ingest.
    ///
    /// # Errors
    ///
    /// [`AuthError`] naming which check failed; the front door sheds
    /// the message with cause `"auth"` in every case.
    pub fn authenticate(&self, tenant: TenantId, device: u32, token: u64) -> Result<(), AuthError> {
        let e = self.tenants.get(&tenant).ok_or(AuthError::UnknownTenant)?;
        let want = *e
            .tokens
            .get(device as usize)
            .ok_or(AuthError::UnknownDevice)?;
        if mac_eq(&want.to_le_bytes(), &token.to_le_bytes()) {
            Ok(())
        } else {
            Err(AuthError::BadToken)
        }
    }

    /// The tenant's display name.
    pub fn tenant_name(&self, tenant: TenantId) -> Option<&str> {
        self.tenants.get(&tenant).map(|e| e.name.as_str())
    }

    /// Registered tenant ids, in id order.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.tenants.keys().copied()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Number of devices registered under `tenant` (0 if unknown).
    pub fn fleet_size(&self, tenant: TenantId) -> u32 {
        self.tenants
            .get(&tenant)
            .map(|e| e.tokens.len() as u32)
            .unwrap_or(0)
    }

    /// Total devices across all tenants.
    pub fn device_count(&self) -> u64 {
        self.tenants.values().map(|e| e.tokens.len() as u64).sum()
    }
}

/// Derives a device's ingest token: an 8-byte CBC-MAC over the
/// `(tenant, device)` pair under the tenant master key.
fn device_token(key: &Key, tenant: TenantId, device: u32) -> u64 {
    let mut data = [0u8; 6];
    data[..2].copy_from_slice(&tenant.0.to_le_bytes());
    data[2..].copy_from_slice(&device.to_le_bytes());
    let mac = cbc_mac(key, &data, 8);
    u64::from_le_bytes(mac.try_into().expect("cbc_mac returns mic_len bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> (DeviceRegistry, TenantId, TenantId) {
        let mut r = DeviceRegistry::new();
        let a = r.create_tenant("acme", Key([1; 16]));
        let b = r.create_tenant("borg", Key([2; 16]));
        r.register_fleet(a, 100);
        r.register_fleet(b, 10);
        (r, a, b)
    }

    #[test]
    fn registered_devices_authenticate() {
        let (r, a, b) = reg();
        for d in [0u32, 1, 99] {
            let tok = r.token(a, d).expect("registered");
            assert_eq!(r.authenticate(a, d, tok), Ok(()));
        }
        assert_eq!(r.device_count(), 110);
        assert_eq!(r.fleet_size(b), 10);
    }

    #[test]
    fn bad_credentials_are_rejected_with_the_right_cause() {
        let (r, a, b) = reg();
        let tok = r.token(a, 0).expect("registered");
        assert_eq!(
            r.authenticate(TenantId(9), 0, tok),
            Err(AuthError::UnknownTenant)
        );
        assert_eq!(r.authenticate(a, 100, tok), Err(AuthError::UnknownDevice));
        assert_eq!(r.authenticate(a, 0, tok ^ 1), Err(AuthError::BadToken));
        // A token is scoped to its tenant: tenant b's device 0 token
        // does not open tenant a's device 0.
        let tok_b = r.token(b, 0).expect("registered");
        assert_eq!(r.authenticate(a, 0, tok_b), Err(AuthError::BadToken));
    }

    #[test]
    fn default_registry_is_empty_and_rejects_everyone() {
        let r = DeviceRegistry::default();
        assert_eq!(r.tenant_count(), 0);
        assert_eq!(r.device_count(), 0);
        assert_eq!(r.tenants().count(), 0);
        assert_eq!(r.token(TenantId(0), 0), None);
        assert_eq!(
            r.authenticate(TenantId(0), 0, 0),
            Err(AuthError::UnknownTenant)
        );
    }

    #[test]
    fn tokens_minted_under_the_wrong_master_key_are_rejected() {
        // The same tenant/device namespace registered under a different
        // master key mints different tokens; presenting one against the
        // real registry fails the credential check (not the namespace
        // checks).
        let (r, a, _) = reg();
        let mut rogue = DeviceRegistry::new();
        let ra = rogue.create_tenant("acme", Key([0xAA; 16]));
        rogue.register_fleet(ra, 100);
        let forged = rogue.token(ra, 0).expect("registered");
        assert_ne!(
            Some(forged),
            r.token(a, 0),
            "keys must differentiate tokens"
        );
        assert_eq!(r.authenticate(a, 0, forged), Err(AuthError::BadToken));
    }

    #[test]
    fn tokens_are_deterministic_and_distinct() {
        let (r, a, _) = reg();
        let (r2, a2, _) = reg();
        assert_eq!(r.token(a, 7), r2.token(a2, 7), "same key, same token");
        let mut toks: Vec<u64> = (0..100).map(|d| r.token(a, d).unwrap()).collect();
        toks.sort_unstable();
        toks.dedup();
        assert_eq!(toks.len(), 100, "per-device tokens collide");
    }

    #[test]
    fn incremental_fleet_registration_extends_the_namespace() {
        let mut r = DeviceRegistry::new();
        let t = r.create_tenant("acme", Key([3; 16]));
        assert_eq!(r.register_fleet(t, 4), 0);
        let tok4 = r.token(t, 3);
        assert_eq!(r.register_fleet(t, 4), 4);
        assert_eq!(r.token(t, 3), tok4, "existing tokens unchanged");
        assert!(r.token(t, 7).is_some());
    }
}
