//! Multi-tenant northbound cloud tier: device registry, bounded ingest
//! pipeline, and command & control over the gateway's CoAP surface.
//!
//! The paper's Fig. 1 stacks a cloud layer above devices and gateways;
//! this crate is that layer, scoped to the three concerns that give the
//! tier its distributed-systems character:
//!
//! * **tenancy** — [`DeviceRegistry`] keys every device into a
//!   per-tenant namespace and checks an XTEA-CBC-MAC credential on
//!   every uplink, O(1) per message ([`registry`]);
//! * **capacity** — [`IngestPipeline`] runs per-tenant *bounded*
//!   crossbeam queues behind a single-threaded front door, with an
//!   explicit [`ShedPolicy`] for overload and sharded batch-drain
//!   workers behind it ([`ingest`]). No queue ever grows past its cap;
//!   backpressure is a counted, observable event, not an OOM;
//! * **control** — [`CommandRouter`] plays tenant-issued writes back
//!   down through a gateway's northbound CoAP server as confirmable
//!   PUTs ([`command`]);
//! * **durability** — [`StreamConfig`] attaches the stream plane from
//!   `iiot-stream`: a write-ahead event log the front door appends
//!   every offer to (replayable byte-for-byte via [`stream::replay`]),
//!   per-tenant token-bucket admission control ahead of the queues,
//!   and watermark-driven aggregation windows over accepted uplinks
//!   ([`stream`]);
//! * **state** — [`TwinStore`] keeps a CRDT digital twin per device
//!   (reported/desired config, tags, vector-clock provenance) that
//!   converges under partitions and delayed uplinks ([`twin`]); the
//!   fleet plane (`iiot-fleet`) builds drift detection and campaign
//!   gating on top of it.
//!
//! [`SessionGen`] generates the load: deterministic synthetic device
//! sessions merged into one time-ordered stream, cheap enough to drive
//! 10^5–10^6 sessions through the pipeline in one experiment run
//! (`iiot-bench` E16). Every statistic the pipeline reports is measured
//! in virtual time, so results are byte-identical across worker counts
//! and machines — the same determinism contract the rest of the
//! workspace holds.
//!
//! # Quickstart
//!
//! ```
//! use iiot_cloud::{
//!     DeviceRegistry, IngestConfig, IngestPipeline, SessionGen, SessionPlan,
//! };
//! use iiot_security::Key;
//! use iiot_sim::SimTime;
//!
//! // Two tenants, a small fleet each, credentials precomputed.
//! let mut registry = DeviceRegistry::new();
//! let acme = registry.create_tenant("acme", Key([1; 16]));
//! let borg = registry.create_tenant("borg", Key([2; 16]));
//! registry.register_fleet(acme, 40);
//! registry.register_fleet(borg, 40);
//!
//! // Deterministic sessions in, bounded queues inside.
//! let mut gen = SessionGen::new(&registry, SessionPlan::default(), 42);
//! let mut cloud = IngestPipeline::new(registry, IngestConfig::default());
//! while let Some(msg) = gen.next_msg(cloud.registry()) {
//!     cloud.drain_until(msg.t);  // run the drain ticks due before this arrival
//!     cloud.offer(msg);          // auth + enqueue (or shed, explicitly)
//! }
//! cloud.drain_remaining();
//!
//! let (offered, accepted, shed, drained) = cloud.totals();
//! assert_eq!(offered, 2 * 40 * 4);
//! assert_eq!(accepted, drained);
//! assert_eq!(offered, accepted + shed);
//! for summary in iiot_cloud::metrics::summarize(&cloud) {
//!     assert!(summary.p99_us < 50_000, "light load drains within a few ticks");
//! }
//! ```

#![warn(missing_docs)]

pub mod command;
pub mod ingest;
pub mod metrics;
pub mod registry;
pub mod session;
pub mod stream;
pub mod tenant;
pub mod twin;

pub use command::{Command, CommandOutcome, CommandRouter};
pub use ingest::{IngestConfig, IngestPipeline, TenantStats, UplinkMsg};
pub use metrics::{jain_fairness, service_fairness, TenantSummary};
pub use registry::{AuthError, DeviceRegistry};
pub use session::{SessionGen, SessionPlan};
pub use stream::{decode_uplink, encode_uplink, replay, StreamConfig, UPLINK_FRAME};
pub use tenant::{Isolation, ShedPolicy, TenantId};
pub use twin::{DeviceTwin, TwinStore};
