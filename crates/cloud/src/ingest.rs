//! The northbound ingest pipeline: per-tenant bounded queues, sharded
//! batch-drain workers, explicit backpressure.
//!
//! # Architecture
//!
//! ```text
//!   uplinks ──► front door ──► tenant queues (bounded) ──► drain workers
//!              (auth + shed)        shard 0: t0 t2 …          1/shard
//!                                   shard 1: t1 t3 …
//! ```
//!
//! The *front door* ([`IngestPipeline::offer`]) is single-threaded: it
//! authenticates each message against the [`DeviceRegistry`], then
//! `try_send`s it into the owning tenant's bounded crossbeam channel.
//! A full queue triggers the tenant's [`ShedPolicy`] — reject the
//! arrival or evict the oldest — and either way the shed is counted
//! and (when tracing) emitted as a `CloudShed` event. Nothing ever
//! blocks and no queue grows past its cap: backpressure is explicit,
//! observable, and bounded-memory by construction.
//!
//! *Drain* ([`IngestPipeline::drain_until`]) advances virtual time in
//! fixed ticks. Each tick, every shard drains up to `drain_batch`
//! messages per queue — one scoped worker thread per shard when
//! `threaded`, or a plain loop when not. Delivery latency is measured
//! in **virtual time** (drain-tick instant minus arrival instant), so
//! the numbers a run reports are a pure function of workload and
//! configuration: threaded and serial drains, and any `--jobs` value
//! above them, produce byte-identical statistics. Wall-clock throughput
//! is measured by callers and reported separately as informational
//! timing.

use crate::registry::DeviceRegistry;
use crate::stream::{encode_uplink, StreamAttachment, StreamConfig};
use crate::tenant::{Isolation, ShedPolicy, TenantId};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use iiot_sim::obs::{Event, EventKind, Histogram, Recorder, SpanId};
use iiot_sim::{NodeId, SimDuration, SimTime};
use iiot_stream::{AdmissionControl, EventLog, WindowAggregator, WindowKey, WindowResult};
use std::collections::BTreeMap;

/// One northbound uplink message, as the cloud's front door sees it.
#[derive(Clone, Copy, Debug)]
pub struct UplinkMsg {
    /// The claiming tenant.
    pub tenant: TenantId,
    /// Device index inside the tenant's namespace.
    pub device: u32,
    /// Ingest credential (see [`DeviceRegistry::token`]).
    pub token: u64,
    /// Telemetry value.
    pub value: f64,
    /// Arrival instant (virtual time).
    pub t: SimTime,
}

/// Ingest pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Number of drain shards (tenant `i` lives on shard `i % shards`).
    pub shards: usize,
    /// Bounded capacity of each tenant queue, in messages.
    pub queue_cap: usize,
    /// Messages drained per queue per tick.
    pub drain_batch: usize,
    /// Virtual-time length of one drain tick.
    pub tick: SimDuration,
    /// What to do when a queue is full.
    pub policy: ShedPolicy,
    /// Queue-per-tenant or shared-per-shard (E16's fairness control).
    pub isolation: Isolation,
    /// Drain shards on scoped worker threads (`true`) or serially.
    /// Both modes produce identical statistics; this only changes
    /// wall-clock behavior.
    pub threaded: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            shards: 4,
            queue_cap: 1024,
            drain_batch: 256,
            tick: SimDuration::from_millis(10),
            policy: ShedPolicy::RejectNew,
            isolation: Isolation::PerTenant,
            threaded: true,
        }
    }
}

/// Per-tenant ingest statistics, all in virtual time.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Messages presented to the front door.
    pub offered: u64,
    /// Messages admitted to a queue.
    pub accepted: u64,
    /// Messages shed for failing the credential check.
    pub shed_auth: u64,
    /// Messages shed by per-tenant admission control before reaching
    /// any queue (see [`crate::stream::StreamConfig::admission`]).
    pub shed_ratelimit: u64,
    /// Messages shed to backpressure (either policy).
    pub shed_full: u64,
    /// Messages delivered by drain workers.
    pub drained: u64,
    /// Highest queue depth observed after an enqueue.
    pub max_depth: u32,
    /// Queue latency (arrival → drain), microseconds of virtual time.
    pub latency_us: Histogram,
}

impl TenantStats {
    /// Total messages shed, any cause.
    pub fn shed(&self) -> u64 {
        self.shed_auth + self.shed_ratelimit + self.shed_full
    }
}

/// One tenant's bounded queue: the front door holds the sender, the
/// drain side borrows the receiver. Both halves stay in this struct;
/// the pipeline's phase discipline (offer, then drain) makes that safe.
struct TenantQueue {
    tenant: TenantId,
    tx: Sender<UplinkMsg>,
    rx: Receiver<UplinkMsg>,
}

/// The multi-tenant ingest pipeline; see the [module docs](self).
pub struct IngestPipeline {
    registry: DeviceRegistry,
    config: IngestConfig,
    /// `shards[s]` owns the queues of every tenant with `shard() == s`.
    shards: Vec<Vec<TenantQueue>>,
    stats: BTreeMap<TenantId, TenantStats>,
    /// Optional structured-event recorder (see
    /// [`iiot_sim::obs::scope_capture`]); fed only from the
    /// single-threaded front door, so event order is deterministic.
    recorder: Option<Box<dyn Recorder>>,
    /// Stream-plane attachment: write-ahead log, admission control,
    /// aggregation windows (all optional; see [`StreamConfig`]).
    stream: StreamAttachment,
    now: SimTime,
}

impl IngestPipeline {
    /// Builds a pipeline over `registry`: one bounded queue per tenant
    /// (or per shard under [`Isolation::Shared`]), assigned to shards
    /// statically.
    pub fn new(registry: DeviceRegistry, config: IngestConfig) -> Self {
        let shards_n = config.shards.max(1);
        let mut shards: Vec<Vec<TenantQueue>> = (0..shards_n).map(|_| Vec::new()).collect();
        match config.isolation {
            Isolation::PerTenant => {
                for tenant in registry.tenants() {
                    let (tx, rx) = bounded(config.queue_cap);
                    shards[tenant.shard(shards_n)].push(TenantQueue { tenant, tx, rx });
                }
            }
            Isolation::Shared => {
                // One queue per shard; every tenant mapping there
                // shares it. Keyed under the shard's first tenant.
                for (s, shard) in shards.iter_mut().enumerate() {
                    let mut tenants = registry.tenants().filter(|t| t.shard(shards_n) == s);
                    if let Some(first) = tenants.next() {
                        let (tx, rx) = bounded(config.queue_cap);
                        shard.push(TenantQueue {
                            tenant: first,
                            tx,
                            rx,
                        });
                    }
                }
            }
        }
        let stats = registry
            .tenants()
            .map(|t| (t, TenantStats::default()))
            .collect();
        IngestPipeline {
            registry,
            config,
            shards,
            stats,
            recorder: None,
            stream: StreamAttachment::default(),
            now: SimTime::ZERO,
        }
    }

    /// Attaches the stream plane (write-ahead log, admission control,
    /// aggregation windows — whichever `config` enables). Replaces any
    /// previous attachment; attach before offering traffic.
    pub fn attach_stream(&mut self, config: StreamConfig) {
        self.stream = StreamAttachment::build(&config);
    }

    /// The write-ahead event log, when one is attached.
    pub fn wal(&self) -> Option<&EventLog> {
        self.stream.wal.as_ref()
    }

    /// The admission controller, when one is attached.
    pub fn admission(&self) -> Option<&AdmissionControl> {
        self.stream.admission.as_ref()
    }

    /// The window aggregator, when one is attached.
    pub fn windows(&self) -> Option<&WindowAggregator> {
        self.stream.windows.as_ref()
    }

    /// Windows closed so far, in watermark order (then `(start, key)`
    /// within one watermark advance).
    pub fn closed_windows(&self) -> &[WindowResult] {
        &self.stream.closed
    }

    /// The registry the pipeline authenticates against.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Current virtual time (advanced by [`drain_until`](Self::drain_until)).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Installs a structured-event recorder. Pass the result of
    /// [`iiot_sim::obs::scope_capture`] to land `CloudIngest` /
    /// `CloudShed` / `CloudCommand` events in the global trace sink
    /// under the calling trial's scope.
    pub fn set_recorder(&mut self, r: Option<Box<dyn Recorder>>) {
        self.recorder = r;
    }

    /// Takes the recorder back (dropping a scope capture flushes it).
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    fn emit(&mut self, shard: usize, kind: EventKind) {
        if let Some(r) = self.recorder.as_mut() {
            r.record(&Event {
                t: self.now,
                node: NodeId(shard as u32),
                span: SpanId::NONE,
                kind,
            });
        }
    }

    /// Which queue serves `tenant` under the configured isolation.
    fn queue_index(&self, tenant: TenantId) -> (usize, usize) {
        let s = tenant.shard(self.shards.len());
        match self.config.isolation {
            Isolation::PerTenant => {
                let i = self.shards[s]
                    .iter()
                    .position(|q| q.tenant == tenant)
                    .expect("tenant registered after pipeline construction");
                (s, i)
            }
            Isolation::Shared => (s, 0),
        }
    }

    /// The front door: log write-ahead, admit, authenticate, enqueue,
    /// shed on backpressure. Returns `true` when the message was
    /// admitted to a queue.
    ///
    /// When a write-ahead log is attached, the append happens **first**
    /// — before admission control, auth and enqueueing — so the log
    /// captures the complete offer sequence and
    /// [`replay`](crate::stream::replay) reproduces every downstream
    /// decision exactly. Admission control, when attached, runs ahead
    /// of authentication and the queues: a rate-limited message is shed
    /// at the door (`cloud_ratelimit`), untouched by any buffer.
    ///
    /// `offer` never blocks; a full queue invokes the configured
    /// [`ShedPolicy`] instead. Must be called from one thread (the
    /// load generator) — determinism of both statistics and emitted
    /// events depends on arrival order.
    pub fn offer(&mut self, msg: UplinkMsg) -> bool {
        self.now = self.now.max(msg.t);
        let tenant = msg.tenant;
        if let Some(wal) = self.stream.wal.as_mut() {
            let info = wal.append(&encode_uplink(&msg));
            if let Some((segment, records)) = info.sealed {
                let shard = tenant.shard(self.shards.len());
                self.emit(shard, EventKind::StreamSeal { segment, records });
            }
        }
        self.advance_windows();
        if let Some(st) = self.stats.get_mut(&tenant) {
            st.offered += 1;
        } else {
            // Unknown tenant: count nothing per-tenant, shed below.
        }
        let now = self.now;
        let admitted = match self.stream.admission.as_mut() {
            Some(ac) => ac.admit(tenant.0, now),
            None => true,
        };
        if !admitted {
            if let Some(st) = self.stats.get_mut(&tenant) {
                st.shed_ratelimit += 1;
            }
            let shard = tenant.shard(self.shards.len());
            self.emit(
                shard,
                EventKind::CloudRateLimit {
                    tenant: tenant.0 as u32,
                },
            );
            return false;
        }
        if self
            .registry
            .authenticate(tenant, msg.device, msg.token)
            .is_err()
        {
            if let Some(st) = self.stats.get_mut(&tenant) {
                st.shed_auth += 1;
            }
            let shard = tenant.shard(self.shards.len());
            self.emit(
                shard,
                EventKind::CloudShed {
                    tenant: tenant.0 as u32,
                    cause: "auth",
                },
            );
            return false;
        }
        let (s, i) = self.queue_index(tenant);
        let q = &self.shards[s][i];
        match q.tx.try_send(msg) {
            Ok(()) => {
                let depth = q.tx.len() as u32;
                let st = self
                    .stats
                    .get_mut(&tenant)
                    .expect("authenticated tenant has stats");
                st.accepted += 1;
                st.max_depth = st.max_depth.max(depth);
                self.emit(
                    s,
                    EventKind::CloudIngest {
                        tenant: tenant.0 as u32,
                        depth,
                    },
                );
                self.observe_window(&msg);
                true
            }
            Err(TrySendError::Full(msg)) => match self.config.policy {
                ShedPolicy::RejectNew => {
                    let st = self.stats.get_mut(&tenant).expect("stats");
                    st.shed_full += 1;
                    self.emit(
                        s,
                        EventKind::CloudShed {
                            tenant: tenant.0 as u32,
                            cause: "queue_full",
                        },
                    );
                    false
                }
                ShedPolicy::DropOldest => {
                    // Evict the head to admit the tail. The evicted
                    // message's tenant eats the shed (under shared
                    // isolation that may be a different tenant —
                    // exactly the cross-tenant damage E16 measures).
                    let victim = self.shards[s][i].rx.try_recv().ok();
                    let q = &self.shards[s][i];
                    let admitted = q.tx.try_send(msg).is_ok();
                    let victim_tenant = victim.map(|v| v.tenant).unwrap_or(tenant);
                    if let Some(st) = self.stats.get_mut(&victim_tenant) {
                        st.shed_full += 1;
                    }
                    self.emit(
                        s,
                        EventKind::CloudShed {
                            tenant: victim_tenant.0 as u32,
                            cause: "drop_oldest",
                        },
                    );
                    if admitted {
                        let depth = self.shards[s][i].tx.len() as u32;
                        let st = self.stats.get_mut(&tenant).expect("stats");
                        st.accepted += 1;
                        st.max_depth = st.max_depth.max(depth);
                        self.emit(
                            s,
                            EventKind::CloudIngest {
                                tenant: tenant.0 as u32,
                                depth,
                            },
                        );
                        self.observe_window(&msg);
                    }
                    admitted
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("pipeline owns both channel halves")
            }
        }
    }

    /// Advances the window watermark to the current virtual instant,
    /// emitting a `stream_window` event per closed window and retaining
    /// the results (see [`closed_windows`](Self::closed_windows)).
    fn advance_windows(&mut self) {
        let now = self.now;
        let Some(w) = self.stream.windows.as_mut() else {
            return;
        };
        let closed = w.advance_watermark(now);
        self.retire_windows(closed);
    }

    /// Attributes an accepted uplink to its aggregation windows, keyed
    /// tenant × device, at the uplink's own (event) timestamp.
    fn observe_window(&mut self, msg: &UplinkMsg) {
        if let Some(w) = self.stream.windows.as_mut() {
            let key = WindowKey {
                tenant: msg.tenant.0,
                metric: msg.device,
            };
            w.observe(key, msg.value, msg.t);
        }
    }

    /// Closes every still-open window (end of run). Call after
    /// [`drain_remaining`](Self::drain_remaining); the replay helper
    /// does the same, so live and replayed window sets match exactly.
    pub fn flush_windows(&mut self) {
        let Some(w) = self.stream.windows.as_mut() else {
            return;
        };
        let closed = w.flush();
        self.retire_windows(closed);
    }

    fn retire_windows(&mut self, closed: Vec<WindowResult>) {
        for r in &closed {
            let shard = TenantId(r.key.tenant).shard(self.shards.len());
            self.emit(
                shard,
                EventKind::StreamWindow {
                    tenant: r.key.tenant as u32,
                    metric: r.key.metric,
                    count: r.count.min(u32::MAX as u64) as u32,
                },
            );
        }
        self.stream.closed.extend(closed);
    }

    /// Runs every drain tick scheduled up to virtual instant `until`.
    /// Ticks fire at fixed boundaries (`k · tick`); at each, every
    /// shard drains up to `drain_batch` messages per queue and records
    /// their queue latency at the boundary instant. Call this with the
    /// next arrival's timestamp *before* offering it, so the drain
    /// side keeps pace with the front door.
    ///
    /// With `threaded`, shards drain on scoped worker threads; results
    /// are merged in shard order, so statistics are byte-identical to
    /// the serial mode.
    pub fn drain_until(&mut self, until: SimTime) {
        let tick = self.config.tick.as_micros().max(1);
        let mut next = (self.now.as_micros() / tick + 1) * tick;
        while next <= until.as_micros() {
            let t = SimTime::from_micros(next);
            self.now = t;
            self.drain_tick(t);
            next += tick;
        }
        self.now = self.now.max(until);
    }

    /// One drain tick at instant `t`.
    fn drain_tick(&mut self, t: SimTime) {
        if self.shards.iter().flatten().all(|q| q.rx.is_empty()) {
            return;
        }
        let batch = self.config.drain_batch;
        // Per-shard results: (tenant, latencies of drained messages).
        let results: Vec<Vec<(TenantId, Vec<u64>)>> = if self.config.threaded {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| scope.spawn(move |_| drain_shard(shard, t, batch)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("drain worker panicked"))
                    .collect()
            })
            .expect("drain scope")
        } else {
            self.shards
                .iter_mut()
                .map(|shard| drain_shard(shard, t, batch))
                .collect()
        };
        // Merge in shard order — identical regardless of which worker
        // finished first.
        for shard_result in results {
            for (tenant, latencies) in shard_result {
                let st = self.stats.entry(tenant).or_default();
                st.drained += latencies.len() as u64;
                for us in latencies {
                    st.latency_us.observe(us as f64);
                }
            }
        }
    }

    /// Drains everything still queued, ticking forward from the
    /// current instant until every queue is empty.
    pub fn drain_remaining(&mut self) {
        let tick = self.config.tick.as_micros().max(1);
        while self.shards.iter().flatten().any(|q| !q.rx.is_empty()) {
            let next = (self.now.as_micros() / tick + 1) * tick;
            let t = SimTime::from_micros(next);
            self.now = t;
            self.drain_tick(t);
        }
    }

    /// Per-tenant statistics, in tenant-id order.
    pub fn stats(&self) -> impl Iterator<Item = (TenantId, &TenantStats)> + '_ {
        self.stats.iter().map(|(t, s)| (*t, s))
    }

    /// One tenant's statistics.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<&TenantStats> {
        self.stats.get(&tenant)
    }

    /// Totals across tenants: (offered, accepted, shed, drained).
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        self.stats.values().fold((0, 0, 0, 0), |(o, a, s, d), st| {
            (
                o + st.offered,
                a + st.accepted,
                s + st.shed(),
                d + st.drained,
            )
        })
    }

    /// Messages currently queued across all shards.
    pub fn queued(&self) -> usize {
        self.shards.iter().flatten().map(|q| q.rx.len()).sum()
    }
}

/// Drains one shard's queues for one tick; runs on a worker thread in
/// threaded mode. Pure function of queue contents, tick instant and
/// batch budget — no shared mutable state, no ordering races.
fn drain_shard(shard: &mut [TenantQueue], t: SimTime, batch: usize) -> Vec<(TenantId, Vec<u64>)> {
    // Latency is attributed to the drained *message's* tenant — under
    // shared isolation a queue serves several tenants, and the quiet
    // ones must see the queueing delay the noisy one inflicts.
    let mut out: Vec<(TenantId, Vec<u64>)> = Vec::with_capacity(shard.len());
    for q in shard {
        for _ in 0..batch {
            match q.rx.try_recv() {
                Ok(msg) => {
                    let lat = t.as_micros().saturating_sub(msg.t.as_micros());
                    match out.iter_mut().find(|(tid, _)| *tid == msg.tenant) {
                        Some((_, v)) => v.push(lat),
                        None => out.push((msg.tenant, vec![lat])),
                    }
                }
                Err(_) => break,
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiot_security::Key;

    fn pipeline(config: IngestConfig) -> IngestPipeline {
        let mut reg = DeviceRegistry::new();
        for name in ["a", "b", "c", "d"] {
            let t = reg.create_tenant(name, Key([name.as_bytes()[0]; 16]));
            reg.register_fleet(t, 50);
        }
        IngestPipeline::new(reg, config)
    }

    fn msg(p: &IngestPipeline, tenant: u16, device: u32, t_us: u64) -> UplinkMsg {
        let tenant = TenantId(tenant);
        UplinkMsg {
            tenant,
            device,
            token: p.registry().token(tenant, device).unwrap_or(0),
            value: 1.0,
            t: SimTime::from_micros(t_us),
        }
    }

    #[test]
    fn bounded_queues_never_exceed_cap() {
        let mut p = pipeline(IngestConfig {
            queue_cap: 8,
            policy: ShedPolicy::RejectNew,
            ..IngestConfig::default()
        });
        for i in 0..100 {
            let m = msg(&p, 0, i % 50, i as u64);
            p.offer(m);
        }
        let st = p.tenant_stats(TenantId(0)).expect("stats");
        assert_eq!(st.accepted, 8);
        assert_eq!(st.shed_full, 92);
        assert!(st.max_depth as usize <= 8, "depth {} > cap 8", st.max_depth);
        assert_eq!(p.queued(), 8);
    }

    #[test]
    fn drop_oldest_keeps_cap_and_sheds_the_head() {
        let mut p = pipeline(IngestConfig {
            queue_cap: 4,
            drain_batch: 64,
            policy: ShedPolicy::DropOldest,
            ..IngestConfig::default()
        });
        for i in 0..10 {
            let m = msg(&p, 0, i, 1000 + i as u64);
            assert!(p.offer(m), "drop-oldest always admits the arrival");
        }
        let st = p.tenant_stats(TenantId(0)).expect("stats");
        assert_eq!(st.accepted, 10);
        assert_eq!(st.shed_full, 6);
        assert!(st.max_depth <= 4);
        // The survivors are the 4 newest arrivals.
        p.drain_remaining();
        let st = p.tenant_stats(TenantId(0)).expect("stats");
        assert_eq!(st.drained, 4);
    }

    #[test]
    fn bad_credentials_shed_at_the_front_door() {
        let mut p = pipeline(IngestConfig::default());
        let mut m = msg(&p, 1, 3, 5);
        m.token ^= 0xdead;
        assert!(!p.offer(m));
        let st = p.tenant_stats(TenantId(1)).expect("stats");
        assert_eq!((st.offered, st.shed_auth, st.accepted), (1, 1, 0));
    }

    /// (accepted, shed, drained, p50, p99) per tenant.
    type DrainSummary = (u64, u64, u64, f64, f64);

    #[test]
    fn threaded_and_serial_drain_agree_exactly() {
        let runs: Vec<Vec<DrainSummary>> = [false, true]
            .iter()
            .map(|&threaded| {
                let mut p = pipeline(IngestConfig {
                    shards: 4,
                    queue_cap: 64,
                    drain_batch: 16,
                    tick: SimDuration::from_millis(1),
                    threaded,
                    ..IngestConfig::default()
                });
                for i in 0..4000u64 {
                    let m = msg(&p, (i % 4) as u16, (i % 50) as u32, i * 17);
                    p.drain_until(m.t);
                    p.offer(m);
                }
                p.drain_remaining();
                p.stats()
                    .map(|(_, s)| {
                        (
                            s.accepted,
                            s.shed(),
                            s.drained,
                            s.latency_us.quantile(0.5),
                            s.latency_us.quantile(0.99),
                        )
                    })
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "threaded drain must match serial drain");
    }

    #[test]
    fn latency_is_virtual_time_from_arrival_to_drain_tick() {
        let mut p = pipeline(IngestConfig {
            tick: SimDuration::from_millis(10),
            threaded: false,
            ..IngestConfig::default()
        });
        let m = msg(&p, 0, 0, 0);
        p.offer(m);
        p.drain_until(SimTime::from_millis(10));
        let st = p.tenant_stats(TenantId(0)).expect("stats");
        assert_eq!(st.drained, 1);
        assert!((st.latency_us.mean() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn admission_control_sheds_at_the_door_before_any_queue() {
        use iiot_stream::RateLimit;
        let mut p = pipeline(IngestConfig {
            queue_cap: 8,
            ..IngestConfig::default()
        });
        p.attach_stream(StreamConfig::default().with_admission(RateLimit::per_sec(1, 2)));
        for i in 0..10 {
            let m = msg(&p, 0, i, 0);
            p.offer(m);
        }
        let st = p.tenant_stats(TenantId(0)).expect("stats");
        assert_eq!(st.accepted, 2, "burst of 2 admitted at t=0");
        assert_eq!(st.shed_ratelimit, 8);
        assert_eq!(
            st.shed_full, 0,
            "rate-limited messages never reached the queue"
        );
        assert_eq!(st.shed(), 8);
        assert_eq!(p.admission().expect("attached").shed_count(0), 8);
        assert_eq!(p.queued(), 2);
    }

    #[test]
    fn windows_aggregate_accepted_uplinks_per_tenant() {
        use iiot_stream::WindowSpec;
        let mut p = pipeline(IngestConfig {
            threaded: false,
            ..IngestConfig::default()
        });
        p.attach_stream(
            StreamConfig::default()
                .with_windows(WindowSpec::tumbling(SimDuration::from_millis(10))),
        );
        for i in 0..100u64 {
            let m = msg(&p, (i % 2) as u16, 0, i * 1000);
            p.drain_until(m.t);
            p.offer(m);
        }
        p.drain_remaining();
        p.flush_windows();
        let closed = p.closed_windows();
        let total: u64 = closed.iter().map(|w| w.count).sum();
        assert_eq!(
            total, 100,
            "every accepted uplink lands in exactly one window"
        );
        assert_eq!(closed.len(), 20, "10 windows × 2 tenants");
        assert_eq!(p.windows().expect("attached").late_total(), 0);
    }

    #[test]
    fn shared_isolation_lets_one_tenant_starve_another() {
        // Under shared isolation every tenant on the shard funnels into
        // one queue; a flooding tenant fills it and the quiet tenant's
        // arrivals shed. Per-tenant isolation keeps the quiet tenant
        // clean. This asymmetry is the core of E16's fairness story.
        let run = |isolation| {
            let mut p = pipeline(IngestConfig {
                shards: 1,
                queue_cap: 32,
                isolation,
                ..IngestConfig::default()
            });
            for i in 0..200u64 {
                let m = msg(&p, 0, (i % 50) as u32, i); // noisy
                p.offer(m);
            }
            let m = msg(&p, 1, 0, 300); // quiet, shares shard 0
            p.offer(m);
            p.tenant_stats(TenantId(1)).expect("stats").clone()
        };
        let shared = run(Isolation::Shared);
        assert_eq!(
            shared.accepted, 0,
            "shared queue already full of noisy traffic"
        );
        assert_eq!(shared.shed_full, 1);
        let isolated = run(Isolation::PerTenant);
        assert_eq!(isolated.accepted, 1, "own queue, no interference");
    }
}
