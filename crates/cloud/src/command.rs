//! Downlink command & control: cloud-issued writes routed through a
//! gateway's northbound CoAP surface.
//!
//! Tenants submit [`Command`]s into a bounded downlink queue (same
//! explicit-backpressure discipline as ingest: `try_send`, shed on
//! full). [`CommandRouter::flush`] then plays the queue against a
//! gateway CoAP endpoint as confirmable PUTs, shuttling datagrams both
//! ways in virtual time and classifying each response: `2.04 Changed`
//! is an acknowledged command, anything else a failure. The gateway
//! applies accepted writes to its southbound adapters on its next
//! poll — the same path a local CoAP client would take, so the cloud
//! tier adds no second write authority.

use crate::tenant::TenantId;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use iiot_coap::{CoapEndpoint, CoapEvent, Code, EndpointConfig};
use iiot_sim::SimTime;

/// The router's own peer address on the two-endpoint CoAP link.
const CLOUD_PEER: u64 = 0xC10D;
/// The gateway's peer address, from the router's point of view.
const GATEWAY_PEER: u64 = 1;

/// One downlink write: set `point` to `value` on the tenant's behalf.
#[derive(Clone, Debug, PartialEq)]
pub struct Command {
    /// The issuing tenant (for fairness accounting and tracing).
    pub tenant: TenantId,
    /// Gateway point path, e.g. `"plant/boiler/setpoint"`.
    pub point: String,
    /// The value to write.
    pub value: f64,
}

/// Outcome of one flushed command.
#[derive(Clone, Debug, PartialEq)]
pub struct CommandOutcome {
    /// The issuing tenant.
    pub tenant: TenantId,
    /// The targeted point.
    pub point: String,
    /// Whether the gateway acknowledged with `2.04 Changed`.
    pub ok: bool,
}

/// Bounded downlink queue + CoAP client; see the [module docs](self).
pub struct CommandRouter {
    tx: Sender<Command>,
    rx: Receiver<Command>,
    client: CoapEndpoint<u64>,
    shed: u64,
}

impl CommandRouter {
    /// A router whose downlink queue holds at most `cap` pending
    /// commands; `seed` feeds the CoAP endpoint's retransmission
    /// jitter (deterministic per seed).
    pub fn new(cap: usize, seed: u64) -> Self {
        let (tx, rx) = bounded(cap);
        CommandRouter {
            tx,
            rx,
            client: CoapEndpoint::new(EndpointConfig::default(), seed),
            shed: 0,
        }
    }

    /// Enqueues a command; sheds it (returning `false`) when the
    /// downlink queue is full. Never blocks.
    pub fn submit(&mut self, cmd: Command) -> bool {
        match self.tx.try_send(cmd) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.shed += 1;
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("router owns both channel halves")
            }
        }
    }

    /// Commands currently queued for downlink.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Commands shed to downlink backpressure so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Plays every queued command against `gateway` (its northbound
    /// CoAP server — e.g. `Gateway::coap_mut()`) at instant `now`,
    /// returning one outcome per command in submission order.
    pub fn flush(&mut self, gateway: &mut CoapEndpoint<u64>, now: SimTime) -> Vec<CommandOutcome> {
        let mut sent: Vec<(Vec<u8>, Command)> = Vec::new();
        while let Ok(cmd) = self.rx.try_recv() {
            let payload = format!("{}", cmd.value).into_bytes();
            let token = self.client.put(GATEWAY_PEER, &cmd.point, payload, now);
            sent.push((token, cmd));
        }
        if sent.is_empty() {
            return Vec::new();
        }
        // Shuttle datagrams until both sides go quiet (requests, then
        // responses; blockwise transfers may take several rounds).
        loop {
            let out = self.client.take_outbox();
            let back = gateway.take_outbox();
            if out.is_empty() && back.is_empty() {
                break;
            }
            for (_, dgram) in out {
                gateway.handle_datagram(CLOUD_PEER, &dgram, now);
            }
            for (_, dgram) in back {
                self.client.handle_datagram(GATEWAY_PEER, &dgram, now);
            }
        }
        let events = self.client.take_events();
        sent.into_iter()
            .map(|(token, cmd)| {
                let ok = events.iter().any(|e| match e {
                    CoapEvent::Response { token: t, code, .. } => {
                        *t == token && *code == Code::Changed
                    }
                    CoapEvent::RequestFailed { .. } => false,
                });
                CommandOutcome {
                    tenant: cmd.tenant,
                    point: cmd.point,
                    ok,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiot_coap::resource::Response;

    /// A gateway-shaped CoAP server: one writable point, one
    /// read-only point.
    fn server() -> CoapEndpoint<u64> {
        let mut s: CoapEndpoint<u64> = CoapEndpoint::new(EndpointConfig::default(), 7);
        s.add_resource(
            "plant/boiler/setpoint",
            Box::new(|req| match req.method {
                Code::Put => Response::changed(),
                _ => Response::method_not_allowed(),
            }),
        );
        s.add_resource(
            "plant/boiler/temp",
            Box::new(|_| Response::method_not_allowed()),
        );
        s
    }

    fn cmd(point: &str, value: f64) -> Command {
        Command {
            tenant: TenantId(0),
            point: point.to_owned(),
            value,
        }
    }

    #[test]
    fn writable_point_acks_readonly_point_fails() {
        let mut router = CommandRouter::new(16, 42);
        let mut gw = server();
        assert!(router.submit(cmd("plant/boiler/setpoint", 72.5)));
        assert!(router.submit(cmd("plant/boiler/temp", 1.0)));
        let out = router.flush(&mut gw, SimTime::ZERO);
        assert_eq!(out.len(), 2);
        assert!(out[0].ok, "writable point must ack");
        assert!(!out[1].ok, "read-only point must fail");
        assert_eq!(router.pending(), 0);
    }

    #[test]
    fn downlink_queue_is_bounded_and_sheds() {
        let mut router = CommandRouter::new(2, 42);
        assert!(router.submit(cmd("a", 1.0)));
        assert!(router.submit(cmd("b", 2.0)));
        assert!(!router.submit(cmd("c", 3.0)), "third command must shed");
        assert_eq!(router.shed(), 1);
        assert_eq!(router.pending(), 2);
    }

    #[test]
    fn flush_with_empty_queue_is_a_no_op() {
        let mut router = CommandRouter::new(4, 42);
        let mut gw = server();
        assert!(router.flush(&mut gw, SimTime::ZERO).is_empty());
    }
}
