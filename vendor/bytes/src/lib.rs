//! Workspace-local stand-in for `bytes`.
//!
//! The workspace declares this dependency but currently constructs all
//! frames from `Vec<u8>`; this stub keeps the dependency edge alive
//! offline with a minimal `Vec`-backed [`Bytes`]/[`BytesMut`] pair so
//! future code can migrate without touching Cargo metadata.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (cheaply cloneable via `Arc` upstream; a
/// plain `Vec` clone here — correctness over zero-copy).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.0
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_round_trip() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(&[1, 2, 3]);
        let f = b.freeze();
        assert_eq!(&f[..], &[1, 2, 3]);
        assert_eq!(Vec::from(f), vec![1, 2, 3]);
    }
}
