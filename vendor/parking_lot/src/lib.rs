//! Workspace-local stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Offers the poison-free `lock()`/`read()`/`write()` API of
//! parking_lot on top of the standard library primitives: a poisoned
//! std lock simply yields its inner guard (a panicking thread while
//! holding one of these locks does not wedge the rest of the process).

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
