//! Workspace-local stand-in for `serde`.
//!
//! The workspace only *declares* serializability (via derives) and
//! never drives a serde data format, so the traits here are markers,
//! blanket-implemented for every type: `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` compile
//! unchanged, and generic bounds like `T: Serialize` are always
//! satisfiable. Machine-readable output in this workspace goes through
//! hand-rolled JSON writers instead (see `iiot-bench`'s `Table::to_json`).

#![warn(missing_docs)]

/// Marker for types whose values can be serialized. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types whose values can be deserialized. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker for seed-driven deserialization (API parity). Blanket-implemented.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
