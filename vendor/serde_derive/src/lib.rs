//! Marker-only `Serialize`/`Deserialize` derives.
//!
//! The workspace derives serde traits on its data types for downstream
//! consumers, but never invokes a serde data format (the build
//! environment has no crates.io access, so the real `serde_derive` and
//! any format crates are unavailable). These derives accept the same
//! attribute grammar and expand to empty marker impls, keeping every
//! `#[derive(Serialize, Deserialize)]` compiling unchanged.

use proc_macro::TokenStream;

/// Extracts `(name, generics-use)` of the deriving type well enough to
/// emit `impl serde::Serialize for Name { }` for plain types and
/// `impl<T0, ...> serde::Serialize for Name<T0, ...>` is unnecessary:
/// the marker traits are implemented blanket-style in `serde` itself,
/// so the derive only needs to swallow its input.
fn noop(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Serialize` derive: the `serde` stub blanket-implements the
/// marker trait, so nothing needs to be generated.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    noop(item)
}

/// No-op `Deserialize` derive: the `serde` stub blanket-implements the
/// marker trait, so nothing needs to be generated.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    noop(item)
}
