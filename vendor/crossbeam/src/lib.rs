//! Workspace-local stand-in for `crossbeam`, backed by `std`.
//!
//! Two subsets are implemented, matching what the workspace uses:
//!
//! * [`channel`] — multi-producer channels with the crossbeam surface
//!   (`unbounded`, `bounded`, cloneable `Sender`,
//!   `Sender::try_send`, `Receiver::try_recv`/`try_iter`,
//!   `len` on both halves), backed by `std::sync::mpsc`;
//! * [`thread`] — scoped spawning with the crossbeam 0.8 closure shape
//!   (`scope(|s| { s.spawn(|_| ...); })`), backed by
//!   `std::thread::scope`, so borrowed data can cross into workers
//!   without `'static` bounds. This is what `iiot-bench`'s parallel
//!   trial runner fans out on.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer-ish channels (mpsc-backed subset).

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and its buffer is full.
        Full(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// The value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full buffer (backpressure), not a
        /// closed channel.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and buffer drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug)]
    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half; clone freely.
    #[derive(Debug)]
    pub struct Sender<T> {
        tx: Tx<T>,
        len: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
                len: Arc::clone(&self.len),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped. On
        /// a bounded channel this blocks while the buffer is full (use
        /// [`Sender::try_send`] for backpressure-aware producers).
        ///
        /// # Errors
        ///
        /// Returns the value back inside [`SendError`].
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let r = match &self.tx {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            };
            if r.is_ok() {
                self.len.fetch_add(1, Ordering::SeqCst);
            }
            r
        }

        /// Non-blocking send: on a bounded channel a full buffer is
        /// reported as [`TrySendError::Full`] instead of blocking — the
        /// explicit-backpressure primitive bounded pipelines shed on.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when the bounded buffer is at
        /// capacity, [`TrySendError::Disconnected`] when the receiver
        /// is gone; both return the value.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let r = match &self.tx {
                Tx::Unbounded(s) => s
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            };
            if r.is_ok() {
                self.len.fetch_add(1, Ordering::SeqCst);
            }
            r
        }

        /// Number of messages currently buffered in the channel.
        pub fn len(&self) -> usize {
            self.len.load(Ordering::SeqCst)
        }

        /// Whether the channel currently buffers nothing.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        len: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is buffered,
        /// [`TryRecvError::Disconnected`] when the channel is closed.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let r = self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            });
            if r.is_ok() {
                self.len.fetch_sub(1, Ordering::SeqCst);
            }
            r
        }

        /// Blocking receive.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let r = self.rx.recv().map_err(|_| RecvError);
            if r.is_ok() {
                self.len.fetch_sub(1, Ordering::SeqCst);
            }
            r
        }

        /// Iterator over currently-buffered values (non-blocking).
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Blocking iterator until the channel closes.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }

        /// Number of messages currently buffered in the channel.
        pub fn len(&self) -> usize {
            self.len.load(Ordering::SeqCst)
        }

        /// Whether the channel currently buffers nothing.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let len = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx: Tx::Unbounded(tx),
                len: Arc::clone(&len),
            },
            Receiver { rx, len },
        )
    }

    /// Creates a bounded channel buffering at most `cap` messages
    /// (at least 1): [`Sender::try_send`] fails with
    /// [`TrySendError::Full`] instead of growing past the cap.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        let len = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx: Tx::Bounded(tx),
                len: Arc::clone(&len),
            },
            Receiver { rx, len },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(7).expect("open");
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn clone_senders_fan_in() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).expect("open");
            tx2.send(2).expect("open");
            assert_eq!(rx.try_iter().count(), 2);
        }

        #[test]
        fn bounded_sheds_at_capacity() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).expect("room");
            tx.try_send(2).expect("room");
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).expect("room again");
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
            assert!(rx.is_empty());
        }

        #[test]
        fn len_tracks_buffered_messages() {
            let (tx, rx) = bounded(8);
            assert_eq!(rx.len(), 0);
            for i in 0..5 {
                tx.send(i).expect("open");
            }
            assert_eq!((tx.len(), rx.len()), (5, 5));
            rx.try_recv().expect("buffered");
            assert_eq!(rx.len(), 4);
            drop(tx);
            assert_eq!(rx.try_iter().count(), 4);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.len(), 0);
        }

        #[test]
        fn unbounded_try_send_never_full() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.try_send(i).expect("unbounded");
            }
            assert_eq!(rx.len(), 100);
            drop(rx);
            assert!(matches!(tx.try_send(0), Err(TrySendError::Disconnected(0))));
        }
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 API shape.

    use std::marker::PhantomData;

    /// Handle passed to the `scope` closure; spawns scoped workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the worker's panic payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker; the closure receives the scope again (the
        /// crossbeam shape — spawn nested workers through it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
                _marker: PhantomData,
            }
        }
    }

    /// Runs `f` with a scope; all spawned workers are joined before
    /// this returns. Always `Ok` unless a worker panicked (std
    /// propagates worker panics on scope exit, so `Err` is never
    /// actually observed — the `Result` keeps the crossbeam signature).
    ///
    /// # Errors
    ///
    /// Never, in practice; see above.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_borrow() {
            let data = vec![1u64, 2, 3, 4];
            let mut out = vec![0u64; 4];
            super::scope(|s| {
                let mut handles = Vec::new();
                for (i, chunk) in out.chunks_mut(1).enumerate() {
                    let data = &data;
                    handles.push(s.spawn(move |_| chunk[0] = data[i] * 10));
                }
                for h in handles {
                    h.join().expect("worker");
                }
            })
            .expect("scope");
            assert_eq!(out, vec![10, 20, 30, 40]);
        }
    }
}
