//! Workspace-local stand-in for `crossbeam`, backed by `std`.
//!
//! Two subsets are implemented, matching what the workspace uses:
//!
//! * [`channel`] — multi-producer channels with the crossbeam surface
//!   (`unbounded`, cloneable `Sender`, `Receiver::try_recv`/`try_iter`),
//!   backed by `std::sync::mpsc`;
//! * [`thread`] — scoped spawning with the crossbeam 0.8 closure shape
//!   (`scope(|s| { s.spawn(|_| ...); })`), backed by
//!   `std::thread::scope`, so borrowed data can cross into workers
//!   without `'static` bounds. This is what `iiot-bench`'s parallel
//!   trial runner fans out on.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer-ish channels (mpsc-backed subset).

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and buffer drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half; clone freely.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        ///
        /// # Errors
        ///
        /// Returns the value back inside [`SendError`].
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is buffered,
        /// [`TryRecvError::Disconnected`] when the channel is closed.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterator over currently-buffered values (non-blocking).
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }

        /// Blocking iterator until the channel closes.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(7).expect("open");
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn clone_senders_fan_in() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).expect("open");
            tx2.send(2).expect("open");
            assert_eq!(rx.try_iter().count(), 2);
        }
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 API shape.

    use std::marker::PhantomData;

    /// Handle passed to the `scope` closure; spawns scoped workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the worker's panic payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker; the closure receives the scope again (the
        /// crossbeam shape — spawn nested workers through it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
                _marker: PhantomData,
            }
        }
    }

    /// Runs `f` with a scope; all spawned workers are joined before
    /// this returns. Always `Ok` unless a worker panicked (std
    /// propagates worker panics on scope exit, so `Err` is never
    /// actually observed — the `Result` keeps the crossbeam signature).
    ///
    /// # Errors
    ///
    /// Never, in practice; see above.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_borrow() {
            let data = vec![1u64, 2, 3, 4];
            let mut out = vec![0u64; 4];
            super::scope(|s| {
                let mut handles = Vec::new();
                for (i, chunk) in out.chunks_mut(1).enumerate() {
                    let data = &data;
                    handles.push(s.spawn(move |_| chunk[0] = data[i] * 10));
                }
                for h in handles {
                    h.join().expect("worker");
                }
            })
            .expect("scope");
            assert_eq!(out, vec![10, 20, 30, 40]);
        }
    }
}
