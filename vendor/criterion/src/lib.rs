//! Workspace-local stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness with the criterion API
//! shape (`criterion_group!`/`criterion_main!`, `Criterion::
//! bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize`). It
//! reports median ns/iteration over a few short measurement rounds —
//! enough to track regressions in CI logs, with none of upstream's
//! statistics machinery.
//!
//! Like upstream, `cargo bench -- --test` runs every benchmark body
//! exactly once and reports `ok` instead of timing it: a fast,
//! non-flaky smoke that the benchmarks still compile and run, suitable
//! for CI.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How much setup output to batch per measurement (accepted for API
/// parity; the harness always re-runs setup per measured batch).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small routine input: many iterations per batch upstream.
    SmallInput,
    /// Large routine input: few iterations per batch upstream.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Per-function measurement driver.
pub struct Bencher {
    /// Collected per-iteration times of the current measurement.
    samples: Vec<Duration>,
    /// When set, run the routine exactly once and skip timing
    /// (`--test` smoke mode).
    test_mode: bool,
}

const TARGET_TIME: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && started.elapsed() < TARGET_TIME {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            iters += 1;
        }
    }

    /// Measures `routine` on fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && started.elapsed() < TARGET_TIME {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
            iters += 1;
        }
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Builds the driver, honouring a `--test` argument (as passed by
    /// `cargo bench -- --test`): in that mode each benchmark runs its
    /// body once, unmeasured.
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().skip(1).any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its median time (or just
    /// `ok` after a single iteration in `--test` mode).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{id:<44} ok (--test: 1 iteration, unmeasured)");
            return self;
        }
        let mut ns: Vec<u128> = b.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        if ns.is_empty() {
            println!("{id:<44} no samples");
        } else {
            let median = ns[ns.len() / 2];
            let (lo, hi) = (ns[ns.len() / 20], ns[ns.len() - 1 - ns.len() / 20]);
            println!(
                "{id:<44} median {median:>12} ns/iter  (p5 {lo}, p95 {hi}, n={})",
                ns.len()
            );
        }
        self
    }
}

/// Groups benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
