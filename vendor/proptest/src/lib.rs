//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! [`any`], [`Just`], `prop_oneof!`, range strategies, tuple
//! strategies and [`collection::vec`] — on top of deterministic
//! seeded sampling. Differences from upstream, by design:
//!
//! * no shrinking: a failing case panics with the sampled inputs via
//!   the ordinary assertion message;
//! * deterministic case generation: each test's cases derive from a
//!   fixed seed, so failures reproduce without a persistence file;
//! * `prop_assert*` are plain `assert*` (panic instead of `Err`).

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// The RNG driving sampling (one per test case, deterministic).
pub type TestRng = SmallRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for heterogeneous storage (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A boxed sampling function (object-safe strategy form).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives chosen among.
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.choices.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arb_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy over every value of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// Numeric ranges are strategies: `0u8..5`, `1u32..=7`, `-1e6f64..1e6`.
impl<T: rand::distributions::uniform::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::distributions::uniform::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
);

/// Builds the deterministic RNG for one test case. Public for the
/// [`proptest!`] expansion only.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name so distinct tests get distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED))
}

/// The property-test entry macro; same grammar as upstream for the
/// forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $pat = $crate::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )+
    };
}

/// Assertion inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { choices: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// The glob import property tests start from.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u8..5, (a, b) in (1u32..10, any::<bool>())) {
            prop_assert!(x < 5);
            prop_assert!((1..10).contains(&a));
            let _ = b;
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_applies(x in 0u64..1000) {
            let _ = x;
        }
    }

    #[test]
    fn oneof_and_just() {
        let s = prop_oneof![Just(1u8), Just(2u8), (3u8..4).prop_map(|v| v)];
        let mut rng = crate::case_rng("oneof", 0);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        let s = crate::collection::vec(any::<u64>(), 0..8);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
