//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy yielding `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// `vec(elem, 0..64)`: vectors with length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
