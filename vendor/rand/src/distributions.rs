//! Distributions: the [`Standard`] distribution and uniform ranges.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Uniform range sampling (`Rng::gen_range`).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types `gen_range` can sample.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Uniform draw from `[lo, hi)`.
        fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R)
            -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
                fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }
    uniform_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
            assert!(lo < hi, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + unit * (hi - lo)
        }
        fn sample_uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
            assert!(lo <= hi, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            lo + unit * (hi - lo)
        }
    }

    impl SampleUniform for f32 {
        fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
            f64::sample_uniform(lo as f64, hi as f64, rng) as f32
        }
        fn sample_uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
            f64::sample_uniform_inclusive(lo as f64, hi as f64, rng) as f32
        }
    }

    /// Range forms accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform_inclusive(*self.start(), *self.end(), rng)
        }
    }
}
