//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API subset the workspace uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, the [`Standard`]
//! distribution for the primitive types the simulators draw, uniform
//! `gen_range` over integer and float ranges, and
//! [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, the same
//! algorithm upstream `rand 0.8` uses on 64-bit targets, so seeded
//! streams are deterministic, well mixed and cheap.
//!
//! Everything here is deterministic: there is deliberately no
//! `thread_rng`/OS entropy. Simulations must derive all randomness
//! from explicit seeds.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](RngCore::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (upstream-compatible scheme).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele et al.), as used by rand 0.8.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let v: f64 = self.gen();
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5i32..=7);
            assert!((5..=7).contains(&w));
            let f = r.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        use super::RngCore;
        let mut r = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
