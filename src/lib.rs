#![warn(missing_docs)]
//! # iiot — a distributed-systems substrate for industrial IoT
//!
//! Facade crate of the reproduction of *"A Distributed Systems
//! Perspective on Industrial IoT"* (Iwanicki, ICDCS 2018). Everything
//! lives in focused sub-crates, re-exported here:
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`sim`] | `iiot-sim` | §II-B — the deployment substrate (DES kernel) |
//! | [`mac`] | `iiot-mac` | §IV-B/§IV-C — CSMA, LPL, RI-MAC, TDMA, coexistence |
//! | [`routing`] | `iiot-routing` | §IV/§V-D — Trickle, DODAG, RNFD, static trees |
//! | [`coap`] | `iiot-coap` | §III-B — CoAP middleware (RFC 7252/7641/7959) |
//! | [`dissem`] | `iiot-dissem` | §V-D — Deluge-style OTA dissemination, staged reprogramming |
//! | [`icn`] | `iiot-icn` | §V-E — named-data pub/sub, content-object security, in-network caching |
//! | [`crdt`] | `iiot-crdt` | §IV-B/§V-C — eventual consistency |
//! | [`aggregate`] | `iiot-aggregate` | §IV-B — TinyDB-style in-network aggregation |
//! | [`security`] | `iiot-security` | §V-E — frame security, secure join |
//! | [`dependability`] | `iiot-dependability` | §V — faults, redundancy, safety, HVAC |
//! | [`gateway`] | `iiot-gateway` | §III — legacy-protocol integration |
//! | [`cloud`] | `iiot-cloud` | Fig. 1 — multi-tenant northbound platform tier |
//! | [`stream`] | `iiot-stream` | Fig. 1/§V-B — replayable event log, admission control, windowed aggregation |
//! | [`fleet`] | `iiot-fleet` | §V-D/§VI — fleet campaigns, digital twins, config drift |
//! | [`core`] | `iiot-core` | Fig. 1 — layers, deployments, scorecard |
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! DESIGN.md for the experiment index.
//!
//! # Examples
//!
//! A minimal end-to-end run: a simulated deployment self-organizes into
//! a DODAG and collects periodic readings at the border router.
//!
//! ```
//! use iiot::sim::{SimDuration, Topology};
//! use iiot::{Deployment, MacChoice};
//!
//! let mut d = Deployment::builder(Topology::grid(3, 2, 20.0))
//!     .mac(MacChoice::Csma)
//!     .seed(7)
//!     .traffic(SimDuration::from_secs(10), 4, SimDuration::from_secs(15))
//!     .build();
//! d.run_for(SimDuration::from_secs(90));
//! let report = d.report();
//! assert!(report.generated > 0, "nodes emitted readings");
//! assert!(report.delivered > 0, "the root collected some of them");
//! ```

pub use iiot_core::{
    audit, deployment, layer, Actuation, CollectionReport, Deployment, DeploymentBuilder,
    Historian, LayeredSystem, MacChoice, Rule, Scorecard, SensingActuation,
};

pub use iiot_aggregate as aggregate;
pub use iiot_cloud as cloud;
pub use iiot_coap as coap;
pub use iiot_core as core;
pub use iiot_crdt as crdt;
pub use iiot_dependability as dependability;
pub use iiot_dissem as dissem;
pub use iiot_fleet as fleet;
pub use iiot_gateway as gateway;
pub use iiot_icn as icn;
pub use iiot_mac as mac;
pub use iiot_routing as routing;
pub use iiot_security as security;
pub use iiot_sim as sim;
pub use iiot_stream as stream;
