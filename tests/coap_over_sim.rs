//! Integration: the CoAP middleware running over the simulator's
//! backhaul transport — an IP-side client talking to a border-router
//! CoAP server, with injected datagram loss exercising the confirmable
//! retransmission machinery under simulated time.

use iiot::coap::resource::Response;
use iiot::coap::{CoapEndpoint, CoapEvent, Code, EndpointConfig};
use iiot::sim::prelude::*;
use rand::Rng;

const TAG_COAP_TIMER: u64 = 0x700;

/// A sim node hosting a CoAP endpoint over the wire transport.
struct CoapWireNode {
    ep: CoapEndpoint<u64>,
    /// Per-datagram drop probability (injected loss).
    loss: f64,
    /// Events the application observed.
    events: Vec<CoapEvent>,
    /// Script: at (time, peer, path) issue a GET.
    gets: Vec<(SimTime, NodeId, &'static str)>,
    next_get: usize,
}

impl CoapWireNode {
    fn new(seed: u64, loss: f64) -> Self {
        CoapWireNode {
            ep: CoapEndpoint::new(EndpointConfig::default(), seed),
            loss,
            events: Vec::new(),
            gets: Vec::new(),
            next_get: 0,
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for attempt in self.ep.take_retransmissions() {
            ctx.emit(EventKind::CoapRetx { attempt });
        }
        for (peer, dgram) in self.ep.take_outbox() {
            // Injected backhaul loss.
            if ctx.rng().gen::<f64>() < self.loss {
                ctx.count("coap_dgram_dropped", 1.0);
                continue;
            }
            ctx.wire_send(NodeId(peer as u32), dgram);
        }
        self.events.extend(self.ep.take_events());
        if let Some(at) = self.ep.next_wakeup() {
            ctx.set_timer_at(at.max(ctx.now()), TAG_COAP_TIMER);
        }
    }
}

impl Proto for CoapWireNode {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(&(at, _, _)) = self.gets.first() {
            ctx.set_timer_at(at, 0x701);
        }
        self.flush(ctx);
    }

    fn timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer) {
        match timer.tag {
            TAG_COAP_TIMER => {
                self.ep.poll_timers(ctx.now());
                self.flush(ctx);
            }
            0x701 => {
                if let Some(&(_, peer, path)) = self.gets.get(self.next_get) {
                    self.next_get += 1;
                    self.ep.get(peer.0 as u64, path, ctx.now());
                    if let Some(&(at, _, _)) = self.gets.get(self.next_get) {
                        ctx.set_timer_at(at.max(ctx.now()), 0x701);
                    }
                    self.flush(ctx);
                }
            }
            _ => {}
        }
    }

    fn wire(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        self.ep.handle_datagram(from.0 as u64, payload, ctx.now());
        self.flush(ctx);
    }
}

fn run(loss: f64, seed: u64, gets: usize) -> (usize, usize, f64) {
    let server_id = NodeId(0);
    let client_id = NodeId(1);
    let mut w = SimBuilder::new()
        .seed(seed)
        .wire_latency(SimDuration::from_millis(40))
        .nodes(
            std::iter::once(Pos::new(0.0, 0.0)).collect::<Topology>(),
            move |_| {
                let mut server = CoapWireNode::new(1, loss);
                server.ep.add_resource(
                    "plant/temp",
                    Box::new(|_| Response::content(b"21.5".to_vec())),
                );
                Box::new(server)
            },
        )
        .nodes(
            std::iter::once(Pos::new(1000.0, 0.0)).collect::<Topology>(),
            move |_| {
                let mut client = CoapWireNode::new(2, loss);
                for k in 0..gets {
                    client.gets.push((
                        SimTime::from_secs(1 + 5 * k as u64),
                        server_id,
                        "plant/temp",
                    ));
                }
                Box::new(client)
            },
        )
        .build();

    w.run_for(SimDuration::from_secs(gets as u64 * 5 + 120));
    let c = w.proto::<CoapWireNode>(client_id);
    let ok = c
        .events
        .iter()
        .filter(|e| matches!(e, CoapEvent::Response { code: Code::Content, payload, .. } if payload == b"21.5"))
        .count();
    let failed = c
        .events
        .iter()
        .filter(|e| matches!(e, CoapEvent::RequestFailed { .. }))
        .count();
    (ok, failed, w.stats().get("coap_dgram_dropped"))
}

#[test]
fn lossless_backhaul_every_get_succeeds() {
    let (ok, failed, dropped) = run(0.0, 10, 8);
    assert_eq!(ok, 8);
    assert_eq!(failed, 0);
    assert_eq!(dropped, 0.0);
}

#[test]
fn retransmission_masks_moderate_loss() {
    // 20% datagram loss: CON retransmission (up to 4 retries with
    // exponential backoff) should recover essentially every exchange.
    let (ok, failed, dropped) = run(0.2, 11, 10);
    assert!(dropped > 0.0, "loss must actually have been injected");
    assert!(ok >= 9, "only {ok}/10 under 20% loss");
    assert_eq!(ok + failed, 10, "every exchange must terminate");
}

#[test]
fn heavy_loss_reports_failures_not_hangs() {
    // 70% loss: many exchanges will exhaust retransmissions, but every
    // one must end in either a response or a failure event.
    let (ok, failed, _) = run(0.7, 12, 10);
    assert_eq!(ok + failed, 10, "exchanges must not hang");
    assert!(failed > 0, "under 70% loss some requests should fail");
}

#[test]
fn deterministic_per_seed() {
    assert_eq!(run(0.3, 42, 6), run(0.3, 42, 6));
    assert_ne!(run(0.3, 42, 6).0, 0);
}
