//! Integration: Fig. 1 assembled from real parts — gateway (two
//! southbound protocols, one of them secured), rule engine, historian —
//! plus the northbound CoAP surface observing the same points the rules
//! act on.

use iiot::coap::{CoapEndpoint, CoapEvent, Code, EndpointConfig};
use iiot::crdt::ReplicaId;
use iiot::gateway::modbus::{ModbusAdapter, ModbusDevice, RegisterMap};
use iiot::gateway::tlv::{TlvAdapter, TlvSensor};
use iiot::gateway::{Gateway, Unit};
use iiot::security::{Key, SecLevel};
use iiot::sim::SimTime;
use iiot::{Historian, LayeredSystem, Rule};

fn plant_gateway() -> Gateway {
    let mut gw = Gateway::new(ReplicaId(1));
    let mut plc = ModbusDevice::new(1, 8);
    plc.set_register(0, 700); // boiler at 70.0 C
    plc.set_register(1, 100); // valve 100 %
    gw.add_adapter(Box::new(ModbusAdapter::new(
        "plc-1",
        plc,
        vec![
            RegisterMap {
                addr: 0,
                point: "boiler/temp".into(),
                unit: Unit::Celsius,
                scale: 0.1,
                offset: 0.0,
                writable: false,
            },
            RegisterMap {
                addr: 1,
                point: "boiler/valve".into(),
                unit: Unit::Percent,
                scale: 1.0,
                offset: 0.0,
                writable: true,
            },
        ],
    )));
    let mote = TlvSensor::new(9).secure(Key(*b"plant-ntwrk-key!"), SecLevel::EncMic32);
    gw.add_adapter(Box::new(TlvAdapter::new("mote-9", mote, "yard")));
    gw
}

fn purge_rule(threshold: f64) -> Rule {
    Rule {
        name: "purge".into(),
        input: "boiler/temp".into(),
        above: true,
        threshold,
        output: "boiler/valve".into(),
        command: 0.0,
    }
}

#[test]
fn quiescent_rule_never_actuates() {
    let mut sys = LayeredSystem::new(
        plant_gateway(),
        vec![purge_rule(90.0)], // boiler is at 70 C: never fires
        Historian::new(100),
    );
    for c in 0..5u64 {
        sys.cycle(c * 1_000_000);
    }
    assert!(sys.actuations().is_empty());
    assert_eq!(sys.historian.latest("boiler/temp"), Some(70.0));
    assert_eq!(sys.historian.latest("boiler/valve"), Some(100.0));
    // The secured TLV mote's readings also flow through all layers.
    assert_eq!(sys.historian.latest("yard/temp"), Some(20.0));
    assert_eq!(sys.historian.samples("yard/temp").len(), 5);
}

#[test]
fn rule_actuation_lands_on_the_plc() {
    let mut sys = LayeredSystem::new(
        plant_gateway(),
        vec![purge_rule(60.0)], // 70 C violates it immediately
        Historian::new(100),
    );
    sys.cycle(1_000_000);
    assert_eq!(sys.actuations().len(), 1, "rule fired once");
    assert_eq!(sys.actuations()[0].point, "boiler/valve");
    // The write went through the Modbus adapter; the next acquisition
    // observes the physically closed valve.
    sys.cycle(2_000_000);
    assert_eq!(sys.sensing.last("boiler/valve").map(|m| m.value), Some(0.0));
    assert_eq!(sys.historian.latest("boiler/valve"), Some(0.0));
}

#[test]
fn northbound_observer_sees_rule_driven_actuation() {
    let mut sys = LayeredSystem::new(plant_gateway(), vec![purge_rule(60.0)], Historian::new(100));

    // Prime the cache: observe-registration GETs need a reading
    // (before the first poll the resource answers 5.03).
    sys.cycle(500_000);
    sys.sensing.coap_mut().take_outbox();

    // An external SCADA client observes the valve over CoAP.
    let mut scada: CoapEndpoint<u64> = CoapEndpoint::new(EndpointConfig::default(), 77);
    scada.observe(0, "boiler/valve", SimTime::ZERO);
    for (_, d) in scada.take_outbox() {
        sys.sensing.coap_mut().handle_datagram(1, &d, SimTime::ZERO);
    }
    for (_, d) in sys.sensing.coap_mut().take_outbox() {
        scada.handle_datagram(0, &d, SimTime::ZERO);
    }
    scada.take_events(); // registration response

    // Cycle 1 polls (valve 100) and fires the rule; cycle 2 observes
    // the actuated valve and notifies the observer.
    sys.cycle(1_000_000);
    sys.cycle(2_000_000);
    for (_, d) in sys.sensing.coap_mut().take_outbox() {
        scada.handle_datagram(0, &d, SimTime::ZERO);
    }
    let events = scada.take_events();
    assert!(!events.is_empty(), "observer notified");
    match events.last().expect("some") {
        CoapEvent::Response {
            code,
            payload,
            observe,
            ..
        } => {
            assert_eq!(*code, Code::Content);
            assert!(observe.is_some());
            let text = String::from_utf8_lossy(payload);
            assert!(
                text.starts_with("0.000"),
                "SCADA sees the closed valve: {text}"
            );
        }
        other => panic!("unexpected event {other:?}"),
    }

    // The historian kept the full story.
    assert!(sys.historian.samples("boiler/valve").len() >= 2);
    assert_eq!(sys.historian.latest("boiler/valve"), Some(0.0));
}
