//! Integration: the paper's deployment lifecycle (§IV intro) across
//! iiot-core, iiot-routing, iiot-mac, iiot-dependability — a pilot
//! stage, a rollout stage that grows the network 3x, crash-recovery
//! churn, and a final audit.

use iiot::dependability::FaultPlan;
use iiot::sim::prelude::*;
use iiot::{Deployment, MacChoice, Scorecard};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn staged_rollout_with_churn_keeps_collecting() {
    // Stage 1: a pilot of 4 nodes.
    let mut d = Deployment::builder(Topology::line(4, 20.0))
        .mac(MacChoice::Csma)
        .seed(0x5AFE)
        .traffic(SimDuration::from_secs(10), 10, SimDuration::from_secs(15))
        .build();
    d.run_for(SimDuration::from_secs(60));
    let pilot = d.report();
    assert!(
        pilot.delivery_ratio > 0.95,
        "pilot delivery {}",
        pilot.delivery_ratio
    );

    // Stage 2: rollout — the line grows to 12 nodes while running.
    let extra: Topology = (4..12).map(|i| Pos::new(i as f64 * 20.0, 0.0)).collect();
    let added = d.extend(&extra);
    assert_eq!(added.len(), 8);
    d.run_for(SimDuration::from_secs(120));
    for &n in &added {
        assert!(d.has_route(n), "rollout node {n} joined the DODAG");
    }

    // Stage 3: production churn on the middle of the line.
    let victims: Vec<NodeId> = d.nodes[2..10].to_vec();
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let plan = FaultPlan::random_churn(
        &mut rng,
        &victims,
        SimDuration::from_secs(300),
        SimDuration::from_secs(20),
        d.world.now(),
        d.world.now() + SimDuration::from_secs(250),
        &[],
    );
    plan.apply(&mut d.world);
    let before = d.report();
    d.run_for(SimDuration::from_secs(300));
    let after = d.report();

    // New data kept flowing during churn.
    assert!(
        after.delivered > before.delivered + 50,
        "collection stalled under churn: {} -> {}",
        before.delivered,
        after.delivered
    );
    // A line has no alternate routes: every crash partitions the tail
    // for its MTTR and wipes the victim's forwarding buffer, so some
    // loss is physically inevitable. The bar is "keeps collecting".
    assert!(
        after.delivery_ratio > 0.7,
        "delivery {}",
        after.delivery_ratio
    );

    // The audit reflects the deployment's current health.
    let card = Scorecard::from_deployment(&d);
    assert_eq!(card.scalability.nodes, 12);
    assert!(card.dependability.alive_fraction > 0.7);
    let text = card.to_string();
    assert!(text.contains("12 nodes"));
}

#[test]
fn orders_of_magnitude_growth_pilot_to_plant() {
    // §IV-A: "the system has to tolerate a growth even by several
    // orders of magnitude". 3 nodes -> 48 nodes through four rollout
    // stages, same software, no redesign.
    let mut d = Deployment::builder(Topology::grid(3, 1, 20.0))
        .mac(MacChoice::Csma)
        .seed(0x960)
        .traffic(SimDuration::from_secs(20), 8, SimDuration::from_secs(15))
        .build();
    d.run_for(SimDuration::from_secs(40));

    for stage in 1..4 {
        // Each stage adds another block of rows below the existing grid.
        let mut extra = Topology::new();
        for row in 0..4 {
            for col in 0..4 {
                extra.push(Pos::new(
                    col as f64 * 20.0,
                    (stage * 4 + row) as f64 * 20.0 - 60.0,
                ));
            }
        }
        // Positions must be fresh (not colliding with existing nodes).
        d.extend(&extra);
        d.run_for(SimDuration::from_secs(120));
    }
    assert_eq!(d.nodes.len(), 3 + 3 * 16);
    let r = d.report();
    let joined = d.nodes.iter().filter(|&&n| d.has_route(n)).count();
    assert!(
        joined as f64 / d.nodes.len() as f64 > 0.95,
        "only {joined}/{} joined",
        d.nodes.len()
    );
    assert!(r.delivery_ratio > 0.9, "delivery {}", r.delivery_ratio);
}
