//! Integration: end-to-end payload protection across the wireless
//! collection stack — origins protect their readings with the network
//! key (iiot-security) before handing them to the DODAG (iiot-routing)
//! over CSMA (iiot-mac) in the simulator (iiot-sim); the border router
//! verifies, decrypts and replay-checks them.

use iiot::mac::csma::CsmaMac;
use iiot::routing::dodag::{DodagConfig, DodagNode};
use iiot::security::{protect, unprotect, Key, ReplayGuard, SecLevel};
use iiot::sim::prelude::*;

type Node = DodagNode<CsmaMac>;

const NETWORK_KEY: Key = Key(*b"factory-net-key1");
const LEVEL: SecLevel = SecLevel::EncMic64;

fn build(n: usize, seed: u64) -> (Sim, Vec<NodeId>) {
    let w = SimBuilder::new()
        .seed(seed)
        .nodes(Topology::line(n, 20.0), |i| {
            Box::new(DodagNode::new(
                CsmaMac::default(),
                DodagConfig::default(),
                i == 0,
            )) as Box<dyn Proto>
        })
        .build();
    let ids = (0..n as u32).map(NodeId).collect();
    (w, ids)
}

/// Origin `node` sends `reading` protected under the network key.
fn send_secured(w: &mut Sim, node: NodeId, counter: u32, reading: &[u8]) {
    let frame = protect(&NETWORK_KEY, LEVEL, node.0, counter, reading);
    w.with_ctx(node, |p, ctx| {
        let n = p.as_any_mut().downcast_mut::<Node>().expect("dodag node");
        assert!(n.send_datum(ctx, frame), "buffer accepts the datum");
    });
}

#[test]
fn protected_readings_survive_multihop_collection() {
    let (mut w, ids) = build(4, 1);
    w.run_for(SimDuration::from_secs(15)); // DODAG formation

    for (k, &origin) in ids[1..].iter().enumerate() {
        send_secured(&mut w, origin, 1, format!("temp={k}").as_bytes());
    }
    w.run_for(SimDuration::from_secs(10));

    let root = w.proto::<Node>(ids[0]);
    assert_eq!(root.collected().len(), 3, "all origins delivered");

    let mut guard = ReplayGuard::new();
    for c in root.collected() {
        let clear = unprotect(&NETWORK_KEY, LEVEL, c.origin.0, &c.payload, &mut guard)
            .expect("authentic frame decrypts at the border router");
        assert!(clear.starts_with(b"temp="), "payload intact: {clear:?}");
        // Confidentiality: ciphertext on the air differed from cleartext.
        assert_ne!(c.payload, clear);
    }
}

#[test]
fn border_router_rejects_forgeries_and_replays() {
    let (mut w, ids) = build(3, 2);
    w.run_for(SimDuration::from_secs(15));
    send_secured(&mut w, ids[2], 7, b"rpm=1200");
    w.run_for(SimDuration::from_secs(10));

    let root = w.proto::<Node>(ids[0]);
    let c = &root.collected()[0];
    let mut guard = ReplayGuard::new();

    // A forged frame under the wrong key fails authentication.
    let mut forged = c.payload.clone();
    let k = forged.len() - 2;
    forged[k] ^= 0x55;
    assert!(
        unprotect(&NETWORK_KEY, LEVEL, c.origin.0, &forged, &mut guard).is_err(),
        "tampered payload must be rejected"
    );

    // The authentic frame verifies once...
    assert!(unprotect(&NETWORK_KEY, LEVEL, c.origin.0, &c.payload, &mut guard).is_ok());
    // ...and is rejected when replayed.
    assert!(
        unprotect(&NETWORK_KEY, LEVEL, c.origin.0, &c.payload, &mut guard).is_err(),
        "replay must be rejected"
    );
}

#[test]
fn policy_floor_rejects_unprotected_traffic() {
    let (mut w, ids) = build(3, 3);
    w.run_for(SimDuration::from_secs(15));
    // A mis-configured origin sends an unprotected reading.
    let naked = protect(&NETWORK_KEY, SecLevel::None, ids[2].0, 1, b"temp=9");
    w.with_ctx(ids[2], |p, ctx| {
        let n = p.as_any_mut().downcast_mut::<Node>().expect("node");
        n.send_datum(ctx, naked);
    });
    w.run_for(SimDuration::from_secs(10));
    let root = w.proto::<Node>(ids[0]);
    let c = &root.collected()[0];
    let mut guard = ReplayGuard::new();
    // The border router's incoming-security policy floor refuses it.
    assert!(
        unprotect(&NETWORK_KEY, LEVEL, c.origin.0, &c.payload, &mut guard).is_err(),
        "below-policy frames must be rejected at the border"
    );
}
