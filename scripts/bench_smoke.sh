#!/usr/bin/env sh
# Tier-2 smoke checks:
#   1. the parallel trial runner must produce byte-identical E5, E14,
#      E15, E16, E17 and E18 tables (and JSON dumps) at --jobs 1 and
#      --jobs 2 — E18's replay trial additionally proves, over the raw
#      trace, that a pipeline rebuilt from the event log emits exactly
#      the live pipeline's event stream;
#   2. the --trace JSONL event dump must be byte-identical too, and
#      must round-trip through trace_report deterministically;
#   3. a sharded (--shards 2) perf run must produce byte-identical
#      deterministic blocks regardless of worker count — the same
#      contract the tables meet, extended to the parallel kernel;
#   4. the public API docs must build without rustdoc warnings and
#      every doc example must pass;
#   5. clippy must be clean (warnings denied) across every iiot crate
#      and target;
#   6. rustfmt must agree with the committed formatting across every
#      iiot crate (vendored stand-ins are exempt).
# Catches scheduling-dependent output and doc rot before they reach
# EXPERIMENTS.md / the published API.
set -eu

cd "$(dirname "$0")/.."
out="${TMPDIR:-/tmp}/iiot-bench-smoke.$$"
mkdir -p "$out"
trap 'rm -rf "$out"' EXIT

cargo build -p iiot-bench --release --offline --bins
bin=target/release/experiments

"$bin" e5 --jobs 1 --json "$out/e5-j1.json" --trace "$out/e5-j1.jsonl" \
    > "$out/e5-j1.txt" 2> /dev/null
"$bin" e5 --jobs 2 --json "$out/e5-j2.json" --trace "$out/e5-j2.jsonl" \
    > "$out/e5-j2.txt" 2> /dev/null

diff -u "$out/e5-j1.txt" "$out/e5-j2.txt"
diff -u "$out/e5-j1.json" "$out/e5-j2.json"

# The structured event dump is scheduling-independent as well, and the
# summary of identical dumps is identical.
cmp "$out/e5-j1.jsonl" "$out/e5-j2.jsonl"
target/release/trace_report "$out/e5-j1.jsonl" > "$out/report-j1.txt"
target/release/trace_report "$out/e5-j2.jsonl" > "$out/report-j2.txt"
diff -u "$out/report-j1.txt" "$out/report-j2.txt"
grep -q "== drop causes ==" "$out/report-j1.txt"

# The dump must be machine-readable JSON of the expected shape.
python3 - "$out/e5-j1.json" <<'EOF'
import json, sys
tables = json.load(open(sys.argv[1]))
assert isinstance(tables, list) and tables, "no tables in dump"
for t in tables:
    assert set(t) == {"title", "headers", "rows"}, t.keys()
    for row in t["rows"]:
        assert len(row) == len(t["headers"]), (t["title"], row)
EOF

# E14 interleaves world stepping with oracle sampling (mid-campaign
# flash inspection, rollout polling) inside its trials — the dirtiest
# determinism surface the harness has. Same contract: byte-identical
# tables, dumps and traces at any worker count. `--quick` shrinks the
# matrices (full-scale E14 traces run to gigabytes) while driving the
# identical code paths.
"$bin" e14 --quick --jobs 1 --json "$out/e14-j1.json" --trace "$out/e14-j1.jsonl" \
    > "$out/e14-j1.txt" 2> /dev/null
"$bin" e14 --quick --jobs 2 --json "$out/e14-j2.json" --trace "$out/e14-j2.jsonl" \
    > "$out/e14-j2.txt" 2> /dev/null

diff -u "$out/e14-j1.txt" "$out/e14-j2.txt"
diff -u "$out/e14-j1.json" "$out/e14-j2.json"
cmp "$out/e14-j1.jsonl" "$out/e14-j2.jsonl"
target/release/trace_report "$out/e14-j1.jsonl" > "$out/report-e14-j1.txt"
target/release/trace_report "$out/e14-j2.jsonl" > "$out/report-e14-j2.txt"
diff -u "$out/report-e14-j1.txt" "$out/report-e14-j2.txt"
grep -q "== dissemination campaign ==" "$out/report-e14-j1.txt"

# E15 drives duty-cycled LPL radios from per-node poll timers with
# per-round jitter drawn from each node's RNG, then reads energy,
# cache and verification counters back through trial-level asserts —
# RNG-order and float-summation hazards the other smokes don't have.
# Same contract: byte-identical tables, dumps and traces at any worker
# count, and the trace must carry the named-data events.
"$bin" e15 --quick --jobs 1 --json "$out/e15-j1.json" --trace "$out/e15-j1.jsonl" \
    > "$out/e15-j1.txt" 2> /dev/null
"$bin" e15 --quick --jobs 2 --json "$out/e15-j2.json" --trace "$out/e15-j2.jsonl" \
    > "$out/e15-j2.txt" 2> /dev/null

diff -u "$out/e15-j1.txt" "$out/e15-j2.txt"
diff -u "$out/e15-j1.json" "$out/e15-j2.json"
cmp "$out/e15-j1.jsonl" "$out/e15-j2.jsonl"
target/release/trace_report "$out/e15-j1.jsonl" > "$out/report-e15-j1.txt"
target/release/trace_report "$out/e15-j2.jsonl" > "$out/report-e15-j2.txt"
diff -u "$out/report-e15-j1.txt" "$out/report-e15-j2.txt"
grep -q "== icn ==" "$out/report-e15-j1.txt"

# E16 runs the cloud pipeline's threaded per-shard drain *inside*
# runner worker threads — two layers of scheduling freedom. Same
# contract: byte-identical tables, dumps and traces at any worker
# count, and the trace must carry the cloud-tier events.
"$bin" e16 --quick --jobs 1 --json "$out/e16-j1.json" --trace "$out/e16-j1.jsonl" \
    > "$out/e16-j1.txt" 2> /dev/null
"$bin" e16 --quick --jobs 2 --json "$out/e16-j2.json" --trace "$out/e16-j2.jsonl" \
    > "$out/e16-j2.txt" 2> /dev/null

diff -u "$out/e16-j1.txt" "$out/e16-j2.txt"
diff -u "$out/e16-j1.json" "$out/e16-j2.json"
cmp "$out/e16-j1.jsonl" "$out/e16-j2.jsonl"
target/release/trace_report "$out/e16-j1.jsonl" > "$out/report-e16-j1.txt"
target/release/trace_report "$out/e16-j2.jsonl" > "$out/report-e16-j2.txt"
diff -u "$out/report-e16-j1.txt" "$out/report-e16-j2.txt"
grep -q "== cloud tier ==" "$out/report-e16-j1.txt"

# E17 runs many lockstep simulation worlds per trial (one per network
# in the fleet) with fleet-level campaign/drift events recorded outside
# any single world — the broadest world-ordering surface the trace sink
# has. Same contract: byte-identical tables, dumps and traces at any
# worker count, and the trace must carry the fleet-plane events.
"$bin" e17 --quick --jobs 1 --json "$out/e17-j1.json" --trace "$out/e17-j1.jsonl" \
    > "$out/e17-j1.txt" 2> /dev/null
"$bin" e17 --quick --jobs 2 --json "$out/e17-j2.json" --trace "$out/e17-j2.jsonl" \
    > "$out/e17-j2.txt" 2> /dev/null

diff -u "$out/e17-j1.txt" "$out/e17-j2.txt"
diff -u "$out/e17-j1.json" "$out/e17-j2.json"
cmp "$out/e17-j1.jsonl" "$out/e17-j2.jsonl"
target/release/trace_report "$out/e17-j1.jsonl" > "$out/report-e17-j1.txt"
target/release/trace_report "$out/e17-j2.jsonl" > "$out/report-e17-j2.txt"
diff -u "$out/report-e17-j1.txt" "$out/report-e17-j2.txt"
grep -q "== fleet ==" "$out/report-e17-j1.txt"

# E18 appends every offered uplink to an in-memory event log, replays
# the log through a fresh pipeline, and recovers from adversarially
# truncated images — all inside trials that must stay byte-identical at
# any worker count. The trace must carry the stream-tier events, and
# the replay trial's world 1 (the replayed pipeline) must emit exactly
# the event stream of world 0 (the live pipeline).
"$bin" e18 --quick --jobs 1 --json "$out/e18-j1.json" --trace "$out/e18-j1.jsonl" \
    > "$out/e18-j1.txt" 2> /dev/null
"$bin" e18 --quick --jobs 2 --json "$out/e18-j2.json" --trace "$out/e18-j2.jsonl" \
    > "$out/e18-j2.txt" 2> /dev/null

diff -u "$out/e18-j1.txt" "$out/e18-j2.txt"
diff -u "$out/e18-j1.json" "$out/e18-j2.json"
cmp "$out/e18-j1.jsonl" "$out/e18-j2.jsonl"
target/release/trace_report "$out/e18-j1.jsonl" > "$out/report-e18-j1.txt"
target/release/trace_report "$out/e18-j2.jsonl" > "$out/report-e18-j2.txt"
diff -u "$out/report-e18-j1.txt" "$out/report-e18-j2.txt"
grep -q "== stream ==" "$out/report-e18-j1.txt"

# Replay-equals-live, checked over the raw trace: within the
# "e18/replay" trial, the live pipeline records under world 0 and the
# replayed pipeline under world 1, and their event streams must match
# line for line.
python3 - "$out/e18-j1.jsonl" <<'EOF'
import json, sys
worlds = {}
with open(sys.argv[1]) as fh:
    lines = iter(fh)
    for line in lines:
        hdr = json.loads(line)
        block = [next(lines) for _ in range(hdr["events"])]
        if hdr["label"] == "e18/replay":
            worlds.setdefault(hdr["world"], []).extend(block)
assert set(worlds) == {0, 1}, f"replay trial worlds: {sorted(worlds)}"
assert worlds[0], "live pipeline recorded no events"
assert worlds[0] == worlds[1], "replayed event stream diverged from live"
print(f"replay-equals-live: {len(worlds[0])} events byte-identical")
EOF

# The sharded kernel's determinism contract, trace-diff style: a tiny
# --shards 2 perf run at --jobs 1 and --jobs 2 must agree byte-for-byte
# on every deterministic block (workload shape + simulated event
# counts). shards=2 is its own deterministic model — counts need not
# match shards=1 — but it must be invariant to how many OS threads
# execute it.
target/release/perf --quick --sides 4 --scale-sides 6 --secs 1 --shards 2 \
    --jobs 1 --json "$out/perf-s2-j1.json" > /dev/null 2> /dev/null
target/release/perf --quick --sides 4 --scale-sides 6 --secs 1 --shards 2 \
    --jobs 2 --json "$out/perf-s2-j2.json" > /dev/null 2> /dev/null
python3 - "$out/perf-s2-j1.json" > "$out/perf-s2-j1.det" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for p in doc["points"] + doc["scaling"]:
    print(json.dumps(p["deterministic"], sort_keys=True))
EOF
python3 - "$out/perf-s2-j2.json" > "$out/perf-s2-j2.det" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for p in doc["points"] + doc["scaling"]:
    print(json.dumps(p["deterministic"], sort_keys=True))
EOF
diff -u "$out/perf-s2-j1.det" "$out/perf-s2-j2.det"
grep -q '"shards": 2' "$out/perf-s2-j1.det"

# The committed perf artifact (regenerated by `cargo run -p iiot-bench
# --release --bin perf -- --json`) must parse under the perf schema:
# deterministic workload/event-count blocks plus informational timing,
# for the index matrix, the shard-scaling curves, the cloud ingest
# load points, the logged-stream points and the named-data points.
python3 - BENCH_perf.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "iiot-bench/perf/v5", doc.get("schema")
assert isinstance(doc["spacing_m"], (int, float))
assert doc["points"], "no points in committed BENCH_perf.json"
assert doc["scaling"], "no scaling curves in committed BENCH_perf.json"
assert doc["cloud"], "no cloud points in committed BENCH_perf.json"
assert doc["stream"], "no stream points in committed BENCH_perf.json"
assert doc["icn"], "no icn points in committed BENCH_perf.json"
for p in doc["points"]:
    d, t = p["deterministic"], p["timing"]
    assert set(d) == {"side", "mac", "nodes", "secs", "events"}, d.keys()
    assert set(t) == {
        "wall_indexed_us", "wall_exhaustive_us", "speedup", "events_per_sec",
    }, t.keys()
    assert d["nodes"] == d["side"] ** 2 and d["events"] > 0, d
for p in doc["scaling"]:
    d, t = p["deterministic"], p["timing"]
    assert set(d) == {"side", "nodes", "shards", "secs", "events"}, d.keys()
    assert set(t) == {"wall_us", "events_per_sec", "mode"}, t.keys()
    assert t["mode"] in {"threaded", "serial"}, t
    assert d["nodes"] == d["side"] ** 2 and d["events"] > 0, d
    assert d["shards"] >= 1, d
shard_counts = {p["deterministic"]["shards"] for p in doc["scaling"]}
assert {1, 2, 4} <= shard_counts, f"scaling must cover shards 1/2/4: {shard_counts}"
for p in doc["cloud"]:
    d, t = p["deterministic"], p["timing"]
    assert set(d) == {
        "sessions", "tenants", "shards", "msgs", "accepted", "shed",
        "p50_us", "p99_us", "fairness_milli",
    }, d.keys()
    assert set(t) == {"wall_us", "msgs_per_sec", "mode"}, t.keys()
    assert d["msgs"] == d["accepted"] + d["shed"] and d["msgs"] > 0, d
assert max(p["deterministic"]["sessions"] for p in doc["cloud"]) >= 100_000, \
    "committed cloud curve must reach 1e5 sessions"
for p in doc["stream"]:
    d, t = p["deterministic"], p["timing"]
    assert set(d) == {
        "sessions", "tenants", "msgs", "accepted", "shed", "log_records",
        "log_bytes", "segments", "windows", "window_obs",
    }, d.keys()
    assert set(t) == {"wall_us", "replay_wall_us", "msgs_per_sec"}, t.keys()
    assert d["msgs"] == d["accepted"] + d["shed"] and d["msgs"] > 0, d
    assert d["log_records"] == d["msgs"], "WAL must hold every offered uplink"
    assert d["log_bytes"] > 0 and d["segments"] > 0 and d["windows"] > 0, d
for p in doc["icn"]:
    d, t = p["deterministic"], p["timing"]
    assert set(d) == {
        "consumers", "nodes", "interests", "data", "cache_hits",
        "verifies", "verify_fails", "delivered",
    }, d.keys()
    assert set(t) == {"wall_us"}, t.keys()
    assert d["nodes"] == d["consumers"] + 2, d
    assert d["verify_fails"] == 0 and d["delivered"] > 0, d
assert max(p["deterministic"]["consumers"] for p in doc["icn"]) >= 16, (
    "committed icn curve must reach 16 consumers")
EOF

# Docs: deny rustdoc warnings, run every crate-level doc example.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
cargo test -q --doc --offline --workspace

# Lints: clippy-clean across the iiot crates (vendored stand-ins are
# exempt — they mirror upstream APIs, warts and all).
# shellcheck disable=SC2046
cargo clippy --offline --all-targets \
    $(for d in vendor/*/; do printf -- '--exclude %s ' "$(basename "$d")"; done) \
    --workspace -- -D warnings

# Formatting: rustfmt must be a no-op on every iiot crate (the
# vendored stand-ins keep their upstream formatting and are exempt).
# shellcheck disable=SC2046
cargo fmt --check \
    $(for f in Cargo.toml crates/*/Cargo.toml; do \
        printf -- '-p %s ' "$(sed -n 's/^name = "\(.*\)"/\1/p' "$f" | head -1)"; done)

echo "bench smoke OK: e5 + e14 + e15 + e16 + e17 + e18 (replay==live) + shards-2 runs byte-identical at --jobs 1/2, docs + lints + fmt clean"
