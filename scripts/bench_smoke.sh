#!/usr/bin/env sh
# Tier-2 smoke checks:
#   1. the parallel trial runner must produce byte-identical E5 and E14
#      tables (and JSON dumps) at --jobs 1 and --jobs 2;
#   2. the --trace JSONL event dump must be byte-identical too, and
#      must round-trip through trace_report deterministically;
#   3. the public API docs must build without rustdoc warnings and
#      every doc example must pass;
#   4. clippy must be clean (warnings denied) across every iiot crate
#      and target.
# Catches scheduling-dependent output and doc rot before they reach
# EXPERIMENTS.md / the published API.
set -eu

cd "$(dirname "$0")/.."
out="${TMPDIR:-/tmp}/iiot-bench-smoke.$$"
mkdir -p "$out"
trap 'rm -rf "$out"' EXIT

cargo build -p iiot-bench --release --offline --bins
bin=target/release/experiments

"$bin" e5 --jobs 1 --json "$out/e5-j1.json" --trace "$out/e5-j1.jsonl" \
    > "$out/e5-j1.txt" 2> /dev/null
"$bin" e5 --jobs 2 --json "$out/e5-j2.json" --trace "$out/e5-j2.jsonl" \
    > "$out/e5-j2.txt" 2> /dev/null

diff -u "$out/e5-j1.txt" "$out/e5-j2.txt"
diff -u "$out/e5-j1.json" "$out/e5-j2.json"

# The structured event dump is scheduling-independent as well, and the
# summary of identical dumps is identical.
cmp "$out/e5-j1.jsonl" "$out/e5-j2.jsonl"
target/release/trace_report "$out/e5-j1.jsonl" > "$out/report-j1.txt"
target/release/trace_report "$out/e5-j2.jsonl" > "$out/report-j2.txt"
diff -u "$out/report-j1.txt" "$out/report-j2.txt"
grep -q "== drop causes ==" "$out/report-j1.txt"

# The dump must be machine-readable JSON of the expected shape.
python3 - "$out/e5-j1.json" <<'EOF'
import json, sys
tables = json.load(open(sys.argv[1]))
assert isinstance(tables, list) and tables, "no tables in dump"
for t in tables:
    assert set(t) == {"title", "headers", "rows"}, t.keys()
    for row in t["rows"]:
        assert len(row) == len(t["headers"]), (t["title"], row)
EOF

# E14 interleaves world stepping with oracle sampling (mid-campaign
# flash inspection, rollout polling) inside its trials — the dirtiest
# determinism surface the harness has. Same contract: byte-identical
# tables, dumps and traces at any worker count.
"$bin" e14 --jobs 1 --json "$out/e14-j1.json" --trace "$out/e14-j1.jsonl" \
    > "$out/e14-j1.txt" 2> /dev/null
"$bin" e14 --jobs 2 --json "$out/e14-j2.json" --trace "$out/e14-j2.jsonl" \
    > "$out/e14-j2.txt" 2> /dev/null

diff -u "$out/e14-j1.txt" "$out/e14-j2.txt"
diff -u "$out/e14-j1.json" "$out/e14-j2.json"
cmp "$out/e14-j1.jsonl" "$out/e14-j2.jsonl"
target/release/trace_report "$out/e14-j1.jsonl" > "$out/report-e14-j1.txt"
target/release/trace_report "$out/e14-j2.jsonl" > "$out/report-e14-j2.txt"
diff -u "$out/report-e14-j1.txt" "$out/report-e14-j2.txt"
grep -q "== dissemination campaign ==" "$out/report-e14-j1.txt"

# Docs: deny rustdoc warnings, run every crate-level doc example.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
cargo test -q --doc --offline --workspace

# Lints: clippy-clean across the iiot crates (vendored stand-ins are
# exempt — they mirror upstream APIs, warts and all).
# shellcheck disable=SC2046
cargo clippy --offline --all-targets \
    $(for d in vendor/*/; do printf -- '--exclude %s ' "$(basename "$d")"; done) \
    --workspace -- -D warnings

echo "bench smoke OK: e5 + e14 tables + traces byte-identical at --jobs 1/2, docs + lints clean"
