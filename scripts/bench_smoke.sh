#!/usr/bin/env sh
# Tier-2 smoke check for the parallel trial runner: the E5 sweep must
# produce byte-identical tables (and JSON dumps) at --jobs 1 and
# --jobs 2. Catches scheduling-dependent output before it reaches
# EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."
out="${TMPDIR:-/tmp}/iiot-bench-smoke.$$"
mkdir -p "$out"
trap 'rm -rf "$out"' EXIT

cargo build -p iiot-bench --release --offline --bin experiments
bin=target/release/experiments

"$bin" e5 --jobs 1 --json "$out/e5-j1.json" > "$out/e5-j1.txt" 2> /dev/null
"$bin" e5 --jobs 2 --json "$out/e5-j2.json" > "$out/e5-j2.txt" 2> /dev/null

diff -u "$out/e5-j1.txt" "$out/e5-j2.txt"
diff -u "$out/e5-j1.json" "$out/e5-j2.json"

# The dump must be machine-readable JSON of the expected shape.
python3 - "$out/e5-j1.json" <<'EOF'
import json, sys
tables = json.load(open(sys.argv[1]))
assert isinstance(tables, list) and tables, "no tables in dump"
for t in tables:
    assert set(t) == {"title", "headers", "rows"}, t.keys()
    for row in t["rows"]:
        assert len(row) == len(t["headers"]), (t["title"], row)
EOF

echo "bench smoke OK: e5 tables byte-identical at --jobs 1 and --jobs 2"
