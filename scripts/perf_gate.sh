#!/usr/bin/env sh
# Timing-free perf gate.
#
# Runs the perf harness's quick matrix twice (--jobs 1 and --jobs 2)
# and requires the *deterministic* blocks of the two BENCH_perf.json
# documents — workload shape and simulated-event counts — to be
# identical. Event counts are a pure function of workload and seed, so
# any drift means the kernel's behaviour changed (e.g. the spatial
# index diverging from the exhaustive scan, which the harness itself
# also asserts per point).
#
# Deliberately NOT gated: wall-clock numbers and speedups. CI machines
# are noisy and shared; timing thresholds make flaky gates. Timings are
# recorded in the JSON for trajectory tracking only.
set -eu

cd "$(dirname "$0")/.."
out="${TMPDIR:-/tmp}/iiot-perf-gate.$$"
mkdir -p "$out"
trap 'rm -rf "$out"' EXIT

cargo build -p iiot-bench --release --offline --bin perf
bin=target/release/perf

"$bin" --quick --jobs 1 --json "$out/perf-j1.json" > /dev/null 2> /dev/null
"$bin" --quick --jobs 2 --json "$out/perf-j2.json" > /dev/null 2> /dev/null

python3 - "$out/perf-j1.json" "$out/perf-j2.json" <<'EOF'
import json, sys

def deterministic(path):
    doc = json.load(open(path))
    assert doc["schema"] == "iiot-bench/perf/v1", doc.get("schema")
    points = doc["points"]
    assert points, "no points measured"
    for p in points:
        d, t = p["deterministic"], p["timing"]
        assert set(d) == {"side", "mac", "nodes", "secs", "events"}, d.keys()
        assert set(t) == {
            "wall_indexed_us", "wall_exhaustive_us", "speedup", "events_per_sec",
        }, t.keys()
        assert d["nodes"] == d["side"] ** 2, d
        assert d["events"] > 0, d
    return [p["deterministic"] for p in points]

j1, j2 = deterministic(sys.argv[1]), deterministic(sys.argv[2])
assert j1 == j2, "simulated-event counts drifted between --jobs 1 and --jobs 2"
print(f"perf gate: {len(j1)} points, event counts identical at --jobs 1/2")
EOF

echo "perf gate OK: deterministic event counts byte-stable across worker counts"
