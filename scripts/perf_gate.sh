#!/usr/bin/env sh
# Timing-free perf gate.
#
# Runs the perf harness's quick matrices twice (--jobs 1 and --jobs 2)
# and requires the *deterministic* blocks of the two BENCH_perf.json
# documents — workload shape and simulated-event counts — to be
# identical. That covers both matrices:
#
#   * index points: event counts are a pure function of workload and
#     seed, so any drift means the kernel's behaviour changed (e.g. the
#     spatial index diverging from the exhaustive scan, which the
#     harness itself also asserts per point);
#   * scaling points (--shards 1/2/4): each shard count is its own
#     deterministic model, so its event count must be byte-stable
#     across worker counts and machines. Counts are NOT comparable
#     across shard counts — the gate checks per-shard-count stability.
#   * cloud points: every gated quantity (message counts, shed,
#     virtual-time p50/p99, fairness) is a pure function of the
#     session plan and seed, so the whole deterministic block must be
#     identical across worker counts.
#   * stream points: the logged-ingest plane — WAL record/byte counts,
#     admission sheds, closed windows — is a pure function of the same
#     inputs, and stream_matrix itself asserts replay equality per
#     point, so a passing gate also certifies crash-replay determinism.
#   * icn points: the named-data star's Interest/Data/cache/verify
#     counts are a pure function of the workload and seed, and
#     icn_matrix asserts consumer convergence per point, so a passing
#     gate also certifies the pub/sub plane's determinism.
#
# Deliberately NOT gated: wall-clock numbers and speedups. CI machines
# are noisy and shared; timing thresholds make flaky gates. Timings are
# recorded in the JSON for trajectory tracking only.
set -eu

cd "$(dirname "$0")/.."
out="${TMPDIR:-/tmp}/iiot-perf-gate.$$"
mkdir -p "$out"
trap 'rm -rf "$out"' EXIT

cargo build -p iiot-bench --release --offline --bin perf
bin=target/release/perf

"$bin" --quick --jobs 1 --json "$out/perf-j1.json" > /dev/null 2> /dev/null
"$bin" --quick --jobs 2 --json "$out/perf-j2.json" > /dev/null 2> /dev/null

python3 - "$out/perf-j1.json" "$out/perf-j2.json" <<'EOF'
import json, sys

def deterministic(path):
    doc = json.load(open(path))
    assert doc["schema"] == "iiot-bench/perf/v5", doc.get("schema")
    points, scaling, cloud = doc["points"], doc["scaling"], doc["cloud"]
    stream, icn = doc["stream"], doc["icn"]
    assert points, "no index points measured"
    assert scaling, "no scaling points measured"
    assert cloud, "no cloud points measured"
    assert stream, "no stream points measured"
    assert icn, "no icn points measured"
    for p in points:
        d, t = p["deterministic"], p["timing"]
        assert set(d) == {"side", "mac", "nodes", "secs", "events"}, d.keys()
        assert set(t) == {
            "wall_indexed_us", "wall_exhaustive_us", "speedup", "events_per_sec",
        }, t.keys()
        assert d["nodes"] == d["side"] ** 2, d
        assert d["events"] > 0, d
    for p in scaling:
        d, t = p["deterministic"], p["timing"]
        assert set(d) == {"side", "nodes", "shards", "secs", "events"}, d.keys()
        assert set(t) == {"wall_us", "events_per_sec", "mode"}, t.keys()
        assert t["mode"] in {"threaded", "serial"}, t
        assert d["nodes"] == d["side"] ** 2, d
        assert d["events"] > 0, d
    shard_counts = {p["deterministic"]["shards"] for p in scaling}
    assert {1, 2, 4} <= shard_counts, f"scaling must cover shards 1/2/4: {shard_counts}"
    for p in cloud:
        d, t = p["deterministic"], p["timing"]
        assert set(d) == {
            "sessions", "tenants", "shards", "msgs", "accepted", "shed",
            "p50_us", "p99_us", "fairness_milli",
        }, d.keys()
        assert set(t) == {"wall_us", "msgs_per_sec", "mode"}, t.keys()
        assert t["mode"] in {"threaded", "serial"}, t
        assert d["msgs"] == d["accepted"] + d["shed"], d
        assert d["msgs"] > 0 and d["sessions"] > 0, d
        assert 0 < d["fairness_milli"] <= 1000, d
    for p in stream:
        d, t = p["deterministic"], p["timing"]
        assert set(d) == {
            "sessions", "tenants", "msgs", "accepted", "shed", "log_records",
            "log_bytes", "segments", "windows", "window_obs",
        }, d.keys()
        assert set(t) == {"wall_us", "replay_wall_us", "msgs_per_sec"}, t.keys()
        assert d["msgs"] == d["accepted"] + d["shed"], d
        assert d["log_records"] == d["msgs"], "WAL must hold every offered uplink"
        assert d["msgs"] > 0 and d["sessions"] > 0, d
        assert d["log_bytes"] > 0 and d["segments"] > 0 and d["windows"] > 0, d
    for p in icn:
        d, t = p["deterministic"], p["timing"]
        assert set(d) == {
            "consumers", "nodes", "interests", "data", "cache_hits",
            "verifies", "verify_fails", "delivered",
        }, d.keys()
        assert set(t) == {"wall_us"}, t.keys()
        assert d["nodes"] == d["consumers"] + 2, d
        assert d["verify_fails"] == 0, "honest workload must verify clean"
        assert d["delivered"] > 0 and d["interests"] > 0 and d["data"] > 0, d
    return (
        [p["deterministic"] for p in points],
        [p["deterministic"] for p in scaling],
        [p["deterministic"] for p in cloud],
        [p["deterministic"] for p in stream],
        [p["deterministic"] for p in icn],
    )

p1, s1, c1, w1, i1 = deterministic(sys.argv[1])
p2, s2, c2, w2, i2 = deterministic(sys.argv[2])
assert p1 == p2, "index event counts drifted between --jobs 1 and --jobs 2"
assert s1 == s2, "per-shard-count event counts drifted between --jobs 1 and --jobs 2"
assert c1 == c2, "cloud deterministic blocks drifted between --jobs 1 and --jobs 2"
assert w1 == w2, "stream deterministic blocks drifted between --jobs 1 and --jobs 2"
assert i1 == i2, "icn deterministic blocks drifted between --jobs 1 and --jobs 2"
print(
    f"perf gate: {len(p1)} index points + {len(s1)} scaling points "
    f"(shards 1/2/4) + {len(c1)} cloud points + {len(w1)} stream points "
    f"(replay asserted in-harness) + {len(i1)} icn points (convergence "
    "asserted in-harness), deterministic blocks identical at --jobs 1/2"
)
EOF

echo "perf gate OK: deterministic blocks byte-stable across worker counts"
